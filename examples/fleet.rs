//! Cluster-mode walkthrough: boots a fleet coordinator (no local
//! execution), joins two in-process worker agents, submits a campaign
//! over HTTP, and shows the lease/heartbeat/result machinery doing its
//! job — finishing with the report and the fleet gauges.
//!
//! ```text
//! cargo run --release --example fleet            # scripted demo, then exits
//! cargo run --release --example fleet -- --stay  # keep the coordinator up
//! ```

use campaign::{ApiConfig, CampaignService, CampaignSpec, EngineConfig, HostRegistry};
use cluster::{FleetConfig, FleetServer, WorkerAgent, WorkerConfig};
use profipy::case_study::etcd_host_factory;
use std::time::{Duration, Instant};

fn registry() -> HostRegistry {
    HostRegistry::with_noop().with("etcd", etcd_host_factory())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let stay = args.iter().any(|a| a == "--stay");
    let addr = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:0".into());

    let service = CampaignService::new(EngineConfig::default(), registry()).expect("service");
    let fleet = FleetServer::serve(
        &addr,
        service,
        ApiConfig::default(),
        FleetConfig {
            lease_ttl: Duration::from_secs(2),
            heartbeat_interval: Duration::from_millis(400),
            ..FleetConfig::default()
        },
    )
    .expect("bind");
    let bound = fleet.addr().to_string();
    let base = format!("http://{bound}");
    println!("fleet coordinator on {base} (no local execution)\n");

    println!("# 1. join two workers (each would normally be its own machine:");
    println!("#    profipy-cli worker --coordinator {bound})");
    let w1 = WorkerAgent::start(
        WorkerConfig {
            parallelism: 2,
            ..WorkerConfig::new(bound.clone())
        },
        registry(),
    )
    .expect("worker 1");
    let w2 = WorkerAgent::start(WorkerConfig::new(bound.clone()), registry()).expect("worker 2");
    println!("joined: {} and {}\n", w1.id(), w2.id());

    let mut client = httpd::Client::new(bound.clone());

    let mut spec = CampaignSpec::new(
        "alice",
        "etcd-fleet-demo",
        "etcd",
        vec![
            ("etcd".into(), targets::CLIENT_SOURCE.into()),
            ("workload".into(), targets::WORKLOAD_BASIC.into()),
        ],
        targets::WORKLOAD_BASIC.into(),
        faultdsl::campaign_a_model(),
    );
    spec.setup = vec![vec!["etcd-start".into()]];
    spec.filter.modules.push("etcd".into());
    spec.filter.sample = 8;

    println!("# 2. submit a campaign; the coordinator leases its experiments out");
    println!("curl -X POST {base}/api/campaigns -d @spec.json");
    let resp = client
        .post_json("/api/campaigns", &spec.to_json())
        .expect("submit");
    let id = jsonlite::parse(&resp.text())
        .unwrap()
        .req("id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    println!("→ {} {id}\n", resp.status);

    println!("# 3. poll status while the workers execute");
    println!("curl {base}/api/campaigns/{id}");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let status = client
            .get(&format!("/api/campaigns/{id}"))
            .expect("status");
        let v = jsonlite::parse(&status.text()).unwrap();
        let state = v.req("state").unwrap().as_str().unwrap().to_string();
        if state == "completed" {
            println!("→ completed\n");
            break;
        }
        assert!(Instant::now() < deadline, "campaign stuck in {state}");
        std::thread::sleep(Duration::from_millis(50));
    }

    println!("# 4. fetch the report (byte-identical to a single-node run)");
    println!("curl {base}/api/campaigns/{id}/report");
    let report = client
        .get(&format!("/api/campaigns/{id}/report"))
        .expect("report");
    println!("{}\n", report.text());

    println!("# 5. the fleet gauges");
    println!("curl {base}/metrics | grep fleet_");
    let metrics = client.get("/metrics").expect("metrics").text();
    for line in metrics.lines().filter(|l| l.contains("fleet_")) {
        println!("{line}");
    }

    let (s1, s2) = (w1.stop(), w2.stop());
    println!(
        "\nworkers executed {} + {} experiments over {} + {} leases",
        s1.executed, s2.executed, s1.leases, s2.leases
    );
    if stay {
        println!("\ncoordinator still serving on {base} — Ctrl-C to stop");
        std::mem::forget(fleet);
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    fleet.shutdown();
}
