//! ProFIPy-as-a-Service walkthrough: boots the REST API, then drives
//! one complete campaign through it with the `httpd` client, printing
//! the equivalent `curl` command for every step.
//!
//! ```text
//! cargo run --release --example serve            # scripted demo, then exits
//! cargo run --release --example serve -- --stay  # keep serving after the demo
//! cargo run --release --example serve -- 127.0.0.1:9000 --stay
//! ```

use campaign::{ApiConfig, ApiServer, CampaignService, CampaignSpec, EngineConfig, HostRegistry};
use profipy::case_study::etcd_host_factory;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let stay = args.iter().any(|a| a == "--stay");
    let addr = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:0".into());

    let registry = HostRegistry::with_noop().with("etcd", etcd_host_factory());
    let service = CampaignService::new(EngineConfig::default(), registry).expect("service");
    let api = ApiServer::serve(&addr, service, ApiConfig::default()).expect("bind");
    let base = format!("http://{}", api.addr());
    println!("serving on {base}\n");

    // --- the walkthrough, as a client would run it -------------------
    let mut client = httpd::Client::new(api.addr().to_string());

    let mut spec = CampaignSpec::new(
        "alice",
        "etcd-demo",
        "etcd",
        vec![
            ("etcd".into(), targets::CLIENT_SOURCE.into()),
            ("workload".into(), targets::WORKLOAD_BASIC.into()),
        ],
        targets::WORKLOAD_BASIC.into(),
        faultdsl::campaign_a_model(),
    );
    spec.setup = vec![vec!["etcd-start".into()]];
    spec.filter.modules.push("etcd".into());
    spec.filter.sample = 6;

    println!("# 1. submit a campaign");
    println!("curl -X POST {base}/api/campaigns -d @spec.json");
    let resp = client
        .post_json("/api/campaigns", &spec.to_json())
        .expect("submit");
    println!("-> {} {}", resp.status, resp.text());
    let id = jsonlite::parse(&resp.text())
        .expect("json")
        .req("id")
        .expect("id")
        .as_str()
        .expect("str")
        .to_string();

    println!("# 2. poll until completed");
    println!("curl {base}/api/campaigns/{id}");
    loop {
        let status = client
            .get(&format!("/api/campaigns/{id}"))
            .expect("poll");
        let v = jsonlite::parse(&status.text()).expect("json");
        let state = v.req("state").expect("state").as_str().expect("str").to_string();
        println!(
            "-> state={state} {}/{} experiments",
            v.req("completed_experiments").unwrap().as_u64().unwrap_or(0),
            v.req("total_experiments")
                .unwrap()
                .as_u64()
                .map(|n| n.to_string())
                .unwrap_or_else(|| "?".into()),
        );
        if state == "completed" || state == "failed" {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    }

    println!("# 3. fetch the report");
    println!("curl {base}/api/campaigns/{id}/report");
    let report = client
        .get(&format!("/api/campaigns/{id}/report"))
        .expect("report");
    println!("{}", report.text());

    println!("# 4. save a fault model into the session");
    println!("curl -X POST {base}/api/models -d '{{\"user\":\"alice\",\"name\":\"mfc\",\"dsl\":...}}'");
    let model_body = jsonlite::Value::obj(vec![
        ("user", jsonlite::Value::str("alice")),
        ("name", jsonlite::Value::str("saved-model")),
        ("model", faultdsl::campaign_a_model().to_value()),
    ]);
    let resp = client
        .post_json("/api/models", &model_body.compact())
        .expect("model upload");
    println!("-> {} {}", resp.status, resp.text());

    println!("# 5. report history + metrics");
    println!("curl {base}/api/sessions/alice/reports");
    let history = client.get("/api/sessions/alice/reports").expect("history");
    let reports = jsonlite::parse(&history.text())
        .expect("json")
        .req("reports")
        .expect("reports")
        .as_arr()
        .expect("arr")
        .len();
    println!("-> {} report(s) in alice's session", reports);
    println!("curl {base}/metrics");
    print!("{}", client.get("/metrics").expect("metrics").text());

    if stay {
        println!("\nserving until Ctrl-C ({base})");
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
    api.shutdown();
    println!("\ndemo complete; pass --stay to keep the server up.");
}
