//! Quickstart: the smallest end-to-end ProFIPy run.
//!
//! 1. Write a bug specification in the DSL.
//! 2. Scan the target for injection points.
//! 3. Execute one two-round experiment per point in a fresh simulated
//!    container.
//! 4. Print the campaign report.
//!
//! Run with: `cargo run --release --example quickstart`

use profipy::analysis::FailureClassifier;
use profipy::case_study::etcd_host_factory;
use profipy::report::CampaignReport;
use profipy::{PlanFilter, Workflow, WorkflowConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A user-defined fault model with a single specification: omit
    // calls to the client's connection-cleanup API (an MFC fault,
    // Fig. 1a style).
    let model = faultdsl::FaultModel {
        name: "quickstart".into(),
        description: "omit connection cleanup calls".into(),
        specs: vec![faultdsl::SpecSource {
            name: "OMIT-CLEANUP".into(),
            description: "missing function call on delete_connection".into(),
            dsl: "change {\n    $CALL{name=self.delete_connection}(...)\n} into {\n    pass\n}"
                .into(),
        }],
    };

    let config = WorkflowConfig {
        seed: 7,
        setup: vec![vec!["etcd-start".into()]],
        ..WorkflowConfig::default()
    };
    let workflow = Workflow::new(
        vec![("etcd".into(), targets::CLIENT_SOURCE.into())],
        targets::WORKLOAD_BASIC.into(),
        model,
        etcd_host_factory(),
        config,
    )?;

    // SCAN: find every match of the specification.
    let points = workflow.scan();
    println!("scan found {} injection point(s):", points.len());
    for p in &points {
        println!("  [{}] {} in {}::{} at {}", p.id, p.spec_name, p.module, p.scope, p.span);
    }

    // EXECUTION + ANALYSIS.
    let outcome = workflow.run_campaign(&PlanFilter::all(), false)?;
    let report = CampaignReport::from_outcome(
        "quickstart",
        &outcome,
        &FailureClassifier::case_study(),
    );
    println!("\n{}", report.render_text());

    for r in outcome.results.iter().filter(|r| r.failed_round1()) {
        println!(
            "experiment #{}: round1={:?}\n             round2={:?}",
            r.point_id, r.round1.status, r.round2.status
        );
    }
    Ok(())
}
