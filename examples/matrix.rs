//! Scenario-catalog matrix walkthrough: the (target × fault model)
//! cross-product as a benchmark suite.
//!
//! Builds the noop-host catalog (replicated kv-store, at-least-once
//! broker, retrying microservice graph), crosses it with the shipped
//! fault-model corpus, runs every applicable cell as an ordinary
//! campaign through an in-process `CampaignService`, and prints the
//! failure-class grid plus the Prometheus exposition the matrix
//! exports (`campaign_failure_class_total{target,model,class}`).
//!
//! Run with: `cargo run --release --example matrix`

use campaign::{CampaignService, EngineConfig, HostRegistry};
use scenarios::{default_corpus, noop_catalog, Matrix};

fn main() {
    let mut matrix = Matrix::new(noop_catalog(), default_corpus());
    matrix.sample_per_cell = 3;

    let cells = matrix.cells();
    println!(
        "{} targets × {} models → {} applicable cells\n",
        matrix.targets.len(),
        matrix.models.len(),
        cells.len()
    );
    for cell in &cells {
        println!(
            "  {:12} × {:22} expecting {}",
            cell.target, cell.model, cell.failure_class
        );
    }

    let mut service = CampaignService::new(EngineConfig::default(), HostRegistry::with_noop())
        .expect("in-memory engine");
    let report = matrix.run_local(&mut service).expect("matrix run");

    println!("\n{}", report.render_text());

    // The same aggregation as a /metrics exposition: this is what a
    // monitoring stack scrapes after a matrix run against the service.
    let registry = obs::Registry::new();
    report.export_metrics(&registry);
    let exposition = registry.render();
    obs::validate_exposition(&exposition).expect("valid exposition");
    for line in exposition.lines() {
        if line.contains("campaign_failure_class_total") {
            println!("{line}");
        }
    }
}
