//! The paper's §V case study: three fault-injection campaigns against
//! the python-etcd-like client (Table I).
//!
//! Regenerates the §V-A/§V-B/§V-C campaign statistics: injection-point
//! counts, coverage, failure counts, and failure-mode distributions.
//!
//! Run with: `cargo run --release --example case_study [A|B|C]`

use profipy::case_study::{campaign_a, campaign_b, campaign_c, Campaign};
use profipy::report::CampaignReport;

fn run(campaign: Campaign) {
    let outcome = campaign
        .workflow
        .run_campaign(&campaign.filter, campaign.prune_by_coverage)
        .expect("campaign configuration is valid");
    let report = CampaignReport::from_outcome(&campaign.name, &outcome, &campaign.classifier);
    println!("{}", report.render_text());

    // Drill-down (paper §IV-C: "The user can drill-down the individual
    // classes of failures").
    let mut shown = 0;
    for r in outcome.results.iter().filter(|r| r.failed_round1()) {
        println!(
            "  #{:<3} {:<22} {:<28} r1={:<60} r2-available={}",
            r.point_id,
            r.spec_name,
            r.scope,
            format!("{:?}", r.round1.status).chars().take(60).collect::<String>(),
            !r.unavailable_round2(),
        );
        shown += 1;
        if shown >= 15 {
            println!("  ... ({} failures total)", report.failures);
            break;
        }
    }
    println!();
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    if which == "all" || which.eq_ignore_ascii_case("a") {
        run(campaign_a());
    }
    if which == "all" || which.eq_ignore_ascii_case("b") {
        run(campaign_b());
    }
    if which == "all" || which.eq_ignore_ascii_case("c") {
        run(campaign_c());
    }
    println!("paper reference (§V): A: 26 points / 13 covered / 12 failures;");
    println!("                      B: 66 points / all covered / 29 failures;");
    println!("                      C: 37 points / all covered / 14 failures");
}
