//! Failure visualization (paper §IV-D): records the target's API
//! invocations during an experiment and renders them as an event
//! timeline (our ASCII stand-in for the Zipkin plots of FailViz).
//!
//! Runs one fault-injected experiment (a dropped connection-cleanup
//! call) and shows the fault-free vs fault-injected timelines.
//!
//! Run with: `cargo run --release --example failure_viz`

use etcdsim::EtcdHost;
use injector::{MutationMode, Mutator, Scanner};
use sandbox::{Container, ContainerImage};
use std::rc::Rc;
use trace::{render_timeline, Span, Timeline};

fn timeline_of(host: &EtcdHost) -> Timeline {
    host.events()
        .into_iter()
        .map(|e| {
            let span = Span::new("etcd-api", &format!("{} {}", e.method, e.path), e.time, e.latency.max(1e-4));
            if (400..=599).contains(&e.status) || e.status == 0 {
                span.err()
            } else {
                span.ok()
            }
        })
        .collect()
}

fn run_once(mutated_client: Option<String>) -> (Timeline, String, String) {
    let client_src = mutated_client.unwrap_or_else(|| targets::CLIENT_SOURCE.to_string());
    let image = ContainerImage::new("viz")
        .source("etcd", &client_src)
        .workload(targets::WORKLOAD_BASIC)
        .setup_cmd(&["etcd-start"]);
    let host = Rc::new(EtcdHost::new(11));
    let mut container = Container::deploy(&image, host.clone(), 11).expect("deploys");
    let r1 = container.run_round(1, true);
    let r2 = container.run_round(2, false);
    let timeline = timeline_of(&host);
    container.teardown();
    (timeline, format!("{:?}", r1.status), format!("{:?}", r2.status))
}

fn main() {
    // Fault-free baseline.
    let (clean, r1, r2) = run_once(None);
    println!("=== fault-free experiment (r1={r1}, r2={r2}) ===");
    println!("{}", render_timeline(&clean, 72));

    // Inject: drop the urllib call that closes connections (the §V-A
    // reconnection-failure substrate).
    let spec = faultdsl::parse_spec(
        "change {\n    $VAR#r = $CALL{name=urllib.request}($STRING{val=DELETE}, ...)\n} into {\n    $VAR#r = None\n}",
        "DROP-CLOSE",
    )
    .expect("valid spec");
    let module = pysrc::parse_module(targets::CLIENT_SOURCE, "etcd").expect("client parses");
    let points = Scanner::new(vec![spec.clone()]).scan(std::slice::from_ref(&module));
    assert!(!points.is_empty(), "expected DELETE urllib sites");
    let mutated = Mutator::new(MutationMode::Triggered)
        .apply(&module, &spec, &points[0])
        .expect("mutation applies");
    let (faulty, r1, r2) = run_once(Some(pysrc::unparse::unparse_module(&mutated)));
    println!("=== fault-injected experiment (r1={r1}, r2={r2}) ===");
    println!("{}", render_timeline(&faulty, 72));
    println!(
        "fault-free: {} spans / {} failed;  fault-injected: {} spans / {} failed",
        clean.len(),
        clean.failures(),
        faulty.len(),
        faulty.failures()
    );
}
