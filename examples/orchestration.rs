//! The campaign orchestration engine end-to-end: submit campaigns from
//! several users into a persistent queue, drive them interleaved with
//! checkpointing, and read the reports back through the session store.
//!
//! ```text
//! cargo run --release --example orchestration                 # in-memory demo
//! cargo run --release --example orchestration -- DIR          # persistent, run all
//! cargo run --release --example orchestration -- DIR BUDGET   # run at most BUDGET
//! ```
//!
//! With a directory, killing the process at any point and re-running
//! resumes from the checkpoints — experiments never run twice.

use campaign::{CampaignEngine, CampaignSpec, CampaignService, EngineConfig, HostRegistry};
use profipy::case_study::etcd_host_factory;

fn etcd_spec(user: &str, name: &str, seed: u64, sample: usize) -> CampaignSpec {
    let mut spec = CampaignSpec::new(
        user,
        name,
        "etcd",
        vec![
            ("etcd".into(), targets::CLIENT_SOURCE.into()),
            ("workload".into(), targets::WORKLOAD_BASIC.into()),
        ],
        targets::WORKLOAD_BASIC.into(),
        faultdsl::campaign_a_model(),
    );
    spec.setup = vec![vec!["etcd-start".into()]];
    spec.seed = seed;
    spec.filter.modules.push("etcd".into());
    spec.filter.sample = sample;
    spec
}

fn registry() -> HostRegistry {
    HostRegistry::with_noop().with("etcd", etcd_host_factory())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let data_dir = args.first().map(std::path::PathBuf::from);
    let budget: Option<usize> = args.get(1).map(|b| b.parse().expect("BUDGET must be a number"));

    match data_dir {
        // Persistent mode: submit-once, then drive (possibly budgeted);
        // re-running resumes.
        Some(dir) => {
            let mut engine = CampaignEngine::new(
                EngineConfig {
                    data_dir: Some(dir),
                    executor: Default::default(),
                },
                registry(),
            )
            .expect("engine opens");
            if engine.completed_ids().is_empty() && engine.poll("job-000001").is_none() {
                let id = engine.submit(etcd_spec("alice", "resumable", 7, 8)).unwrap();
                println!("submitted {id}");
            }
            let summary = engine.drive(budget).expect("drive");
            println!(
                "drive: {} campaigns, {} experiments, {} completed",
                summary.campaigns, summary.experiments, summary.completed
            );
            let status = engine.poll("job-000001").expect("job exists");
            println!(
                "job-000001: {:?} {}/{} experiments",
                status.state,
                status.completed_experiments,
                status
                    .total_experiments
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "?".into())
            );
            if let Some(report) = engine.report("job-000001") {
                println!("\n{}", report.render_text());
            }
            let stats = engine.cache_stats();
            println!(
                "cache: {} scan hits / {} misses",
                stats.scan_hits, stats.scan_misses
            );
        }
        // In-memory demo: three users, interleaved, reports delivered
        // into their sessions.
        None => {
            let mut service = CampaignService::new(EngineConfig::default(), registry())
                .expect("service");
            for (user, seed, sample) in
                [("alice", 1, 5), ("bob", 2, 4), ("carol", 3, 3)]
            {
                let id = service
                    .submit(etcd_spec(user, "demo", seed, sample))
                    .unwrap();
                println!("{user} submitted {id}");
            }
            let summary = service.drive(None).expect("drive");
            println!(
                "\ndrive: {} campaigns, {} experiments, {} completed\n",
                summary.campaigns, summary.experiments, summary.completed
            );
            for user in ["alice", "bob", "carol"] {
                let report = service.sessions.report(user, "demo").expect("delivered");
                println!(
                    "{user:6} demo: {} executed, {} failures, availability {:.0}%",
                    report.executed,
                    report.failures,
                    report.availability * 100.0
                );
            }
            let stats = service.engine().cache_stats();
            println!(
                "\ncache: {} scan hits / {} misses (three campaigns, one target, one scan)",
                stats.scan_hits, stats.scan_misses
            );
        }
    }
}
