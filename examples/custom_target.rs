//! Programmability demo on a *different* target: the paper's pitch is
//! that users adapt the fault model to their own system (§I, §III).
//! Here the target is a small in-memory task-queue library (written in
//! mini-Python, nothing to do with etcd), and the faultload is custom:
//! dropped acknowledgements and injected delays in the dispatch loop.
//!
//! Run with: `cargo run --release --example custom_target`

use profipy::analysis::FailureClassifier;
use profipy::report::CampaignReport;
use profipy::{HostFactory, PlanFilter, Workflow, WorkflowConfig};
use std::rc::Rc;
use std::sync::Arc;

const TASKQUEUE: &str = r#"
import logging

log = logging.getLogger('taskq')


class QueueFull(Exception):
    pass


class TaskQueue:
    def __init__(self, capacity=8):
        self._items = []
        self._capacity = capacity
        self._acked = 0
        self._submitted = 0

    def submit(self, task):
        if len(self._items) >= self._capacity:
            raise QueueFull('queue is full: ' + str(self._capacity))
        self._items.append(task)
        self._submitted = self._submitted + 1

    def ack(self, task):
        self._acked = self._acked + 1
        log.info('acked ' + task)

    def dispatch_all(self, handler):
        done = []
        while len(self._items) > 0:
            task = self._items.pop(0)
            result = handler(task)
            done.append(result)
            self.ack(task)
        return done

    def pending(self):
        return len(self._items)

    def lag(self):
        return self._submitted - self._acked
"#;

const WORKLOAD: &str = r#"
import taskq

queue = taskq.TaskQueue(capacity=16)


def handler(task):
    return task.upper()


def run(round):
    tag = str(round)
    i = 0
    while i < 6:
        queue.submit('job-' + tag + '-' + str(i))
        i = i + 1
    results = queue.dispatch_all(handler)
    assert len(results) == 6, 'all tasks dispatched'
    assert queue.pending() == 0, 'queue drained'
    # Unacknowledged tasks accumulate lag: the workload's consistency
    # check (the fault we inject drops acks).
    assert queue.lag() == 0, 'every dispatched task was acked'
"#;

fn noop_factory() -> HostFactory {
    Arc::new(|_seed| Rc::new(pyrt::NoopHost::new()) as Rc<dyn pyrt::HostApi>)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A custom fault model for *this* system, written the way a
    // task-queue team would: their failure experience is "lost acks"
    // and "slow handlers".
    let model = faultdsl::FaultModel {
        name: "taskq-faults".into(),
        description: "lost acknowledgements and slow dispatch".into(),
        specs: vec![
            faultdsl::SpecSource {
                name: "DROP-ACK".into(),
                description: "omit the ack call in the dispatch loop".into(),
                dsl: "change {\n    $CALL{name=self.ack}(...)\n} into {\n    pass\n}".into(),
            },
            faultdsl::SpecSource {
                name: "SLOW-HANDLER".into(),
                description: "inject a delay before each handler call".into(),
                dsl: concat!(
                    "change {\n",
                    "    $VAR#r = $CALL#c{name=handler}(...)\n",
                    "} into {\n",
                    "    $TIMEOUT{secs=3}\n",
                    "    $VAR#r = $CALL#c(...)\n",
                    "}"
                )
                .into(),
            },
            faultdsl::SpecSource {
                name: "THROW-SUBMIT".into(),
                description: "queue rejects submissions".into(),
                dsl: concat!(
                    "change {\n",
                    "    $CALL{name=queue.submit}(...)\n",
                    "} into {\n",
                    "    raise taskq.QueueFull('injected: queue is full')\n",
                    "}"
                )
                .into(),
            },
        ],
    };

    let workflow = Workflow::new(
        vec![
            ("taskq".into(), TASKQUEUE.into()),
            ("workload".into(), WORKLOAD.into()),
        ],
        WORKLOAD.into(),
        model,
        noop_factory(),
        WorkflowConfig {
            seed: 13,
            round_timeout: 30.0,
            ..WorkflowConfig::default()
        },
    )?;

    let outcome = workflow.run_campaign(&PlanFilter::all(), false)?;
    let classifier = FailureClassifier::new()
        .rule("lost-ack", &["every dispatched task was acked"])
        .rule("queue-full", &["queue is full"]);
    let report = CampaignReport::from_outcome("taskqueue-custom", &outcome, &classifier);
    println!("{}", report.render_text());
    for r in &outcome.results {
        println!(
            "  #{} {} -> r1={:?} (duration {:.1}s virtual)",
            r.point_id, r.spec_name, r.round1.status, r.duration
        );
    }
    Ok(())
}
