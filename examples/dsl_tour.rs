//! A tour of the fault-injection DSL (paper §III, Fig. 1).
//!
//! Parses the three specifications of Fig. 1 (MFC, MIFS, WPF), matches
//! them against OpenStack-flavoured snippets, and prints the mutated
//! code side by side — including the EDFI-style trigger-switchable
//! variant. Also demonstrates fault-model persistence (JSON, §IV-A).
//!
//! Run with: `cargo run --example dsl_tour`

use injector::{MutationMode, Mutator, Scanner};

const FIG1A_MFC: &str = r#"
change {
    $BLOCK{tag=b1; stmts=1,*}
    $CALL{name=delete_*}(...)
    $BLOCK{tag=b2; stmts=1,*}
} into {
    $BLOCK{tag=b1}
    $BLOCK{tag=b2}
}"#;

const FIG1B_MIFS: &str = r#"
change {
    if $EXPR{var=node}:
        $BLOCK{stmts=1,4}
        continue
} into {
}"#;

const FIG1C_WPF: &str = r#"
change {
    $CALL#c{name=utils.execute}(..., $STRING#s{val=*-*}, ...)
} into {
    $CALL#c(..., $CORRUPT($STRING#s), ...)
}"#;

const NEUTRON_SNIPPET: &str = r#"def release_port(context, port):
    subnet = context.lookup(port)
    delete_port(context, port)
    context.commit()
"#;

const NOVA_SNIPPET: &str = r#"def sync_nodes(nodes):
    for node in nodes:
        if not node:
            log_skip(node)
            continue
        provision(node)
"#;

const EXECVP_SNIPPET: &str = r#"def setup_firewall(table):
    utils.execute('iptables', '--append-rule', table)
    return True
"#;

fn demo(title: &str, dsl: &str, snippet: &str) {
    println!("=== {title} ===");
    println!("--- specification ---{dsl}\n");
    println!("--- target ---\n{snippet}");
    let spec = faultdsl::parse_spec(dsl, title).expect("Fig. 1 specs are valid");
    let module = pysrc::parse_module(snippet, "snippet.py").expect("snippets are valid");
    let scanner = Scanner::new(vec![spec.clone()]);
    let points = scanner.scan(std::slice::from_ref(&module));
    println!("--- {} injection point(s) found ---", points.len());
    for (mode, label) in [
        (MutationMode::Direct, "direct mutation"),
        (MutationMode::Triggered, "trigger-switchable mutation (EDFI-style, §IV-B)"),
    ] {
        let mutated = Mutator::new(mode)
            .apply(&module, &spec, &points[0])
            .expect("point located");
        println!("--- {label} ---\n{}", pysrc::unparse::unparse_module(&mutated));
    }
}

fn main() {
    demo("Fig. 1a — Missing Function Call (MFC)", FIG1A_MFC, NEUTRON_SNIPPET);
    demo("Fig. 1b — Missing IF construct + statements (MIFS)", FIG1B_MIFS, NOVA_SNIPPET);
    demo("Fig. 1c — Wrong Parameter in Function Call (WPF)", FIG1C_WPF, EXECVP_SNIPPET);

    // Fault-model persistence (§IV-A).
    let model = faultdsl::predefined_models();
    let json = model.to_json();
    println!("=== predefined fault model ({} specs, {} bytes of JSON) ===", model.specs.len(), json.len());
    let restored = faultdsl::FaultModel::from_json(&json).expect("roundtrip");
    for s in &restored.specs {
        println!("  {:10} {}", s.name, s.description.lines().next().unwrap_or(""));
    }
}
