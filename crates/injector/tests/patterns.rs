//! Extended matcher/mutator coverage: structural strictness, argument
//! wildcards, nested compounds, and mutation window reconstruction.

use injector::scanner::Scanner;
use injector::{match_at, MutationMode, Mutator};

fn spec(dsl: &str) -> faultdsl::BugSpec {
    faultdsl::parse_spec(dsl, "T").expect("spec parses")
}

fn block(src: &str) -> Vec<pysrc::ast::Stmt> {
    pysrc::parse_module(src, "t.py").unwrap().body
}

fn mutate(dsl: &str, src: &str) -> String {
    let s = spec(dsl);
    let m = pysrc::parse_module(src, "t.py").unwrap();
    let points = Scanner::new(vec![s.clone()]).scan(std::slice::from_ref(&m));
    assert!(!points.is_empty(), "no points for:\n{src}");
    let mutated = Mutator::new(MutationMode::Direct)
        .apply(&m, &s, &points[0])
        .expect("applies");
    pysrc::unparse::unparse_module(&mutated)
}

#[test]
fn while_pattern_matches_and_rewrites() {
    let out = mutate(
        "change {\n    while $EXPR#cond:\n        $BLOCK{tag=body; stmts=1,*}\n} into {\n    if $EXPR#cond:\n        $BLOCK{tag=body}\n}",
        "def pump(q):\n    while q.has_items():\n        item = q.pop()\n        handle(item)\n",
    );
    // The loop became a single-shot if — a classic "loop executes once"
    // algorithm bug.
    assert!(out.contains("if q.has_items():"));
    assert!(!out.contains("while"));
    pysrc::parse_module(&out, "check.py").unwrap();
}

#[test]
fn if_with_else_does_not_match_no_else_pattern() {
    let s = spec("change {\n    if $EXPR#c:\n        $BLOCK{stmts=1,4}\n} into {\n}");
    let with_else = block("if a:\n    f()\nelse:\n    g()\n");
    assert!(match_at(&s, &with_else, 0).is_none(), "strict else matching");
    let plain = block("if a:\n    f()\n");
    assert!(match_at(&s, &plain, 0).is_some());
}

#[test]
fn elif_counts_as_branch_structure() {
    let s = spec("change {\n    if $EXPR#c:\n        $BLOCK{stmts=1,4}\n} into {\n}");
    let with_elif = block("if a:\n    f()\nelif b:\n    g()\n");
    assert!(match_at(&s, &with_elif, 0).is_none(), "elif must not match single-branch pattern");
}

#[test]
fn keyword_argument_patterns_match_by_name() {
    let s = spec("change {\n    $CALL#c{name=connect}($EXPR#h, timeout=$NUM#t)\n} into {\n    $CALL#c($EXPR#h, timeout=60)\n}");
    assert!(match_at(&s, &block("connect(host, timeout=5)\n"), 0).is_some());
    assert!(match_at(&s, &block("connect(host, retries=5)\n"), 0).is_none());
    assert!(match_at(&s, &block("connect(host, timeout=n)\n"), 0).is_none(), "$NUM needs a literal");
}

#[test]
fn keyword_rewrite_changes_value() {
    let out = mutate(
        "change {\n    $CALL#c{name=connect}($EXPR#h, timeout=$NUM#t)\n} into {\n    $CALL#c($EXPR#h, timeout=3600)\n}",
        "connect(primary_host, timeout=5)\n",
    );
    assert!(out.contains("connect(primary_host, timeout=3600)"));
}

#[test]
fn ellipsis_matches_empty_argument_run() {
    let s = spec("change {\n    $CALL{name=go}(..., $STRING#s{val=-*}, ...)\n} into {\n    pass\n}");
    // The flag may be first, last, middle, or the only argument.
    for src in [
        "go('-v')\n",
        "go('-v', x)\n",
        "go(x, '-v')\n",
        "go(x, '-v', y)\n",
    ] {
        assert!(match_at(&s, &block(src), 0).is_some(), "{src}");
    }
    assert!(match_at(&s, &block("go(x, y)\n"), 0).is_none());
}

#[test]
fn dotted_name_glob_matches_attribute_chains() {
    let s = spec("change {\n    $CALL{name=self.api.*}(...)\n} into {\n    pass\n}");
    assert!(match_at(&s, &block("self.api.submit(x)\n"), 0).is_some());
    assert!(match_at(&s, &block("self.backup.submit(x)\n"), 0).is_none());
    // Calls whose callee is not a plain dotted path never match.
    assert!(match_at(&s, &block("factories[0].submit(x)\n"), 0).is_none());
}

#[test]
fn var_directive_requires_bare_name() {
    let s = spec("change {\n    $VAR#x = $NUM#n\n} into {\n    $VAR#x = 0\n}");
    assert!(match_at(&s, &block("retries = 3\n"), 0).is_some());
    assert!(match_at(&s, &block("self.retries = 3\n"), 0).is_none());
    assert!(match_at(&s, &block("a, b = 3\n"), 0).is_none());
}

#[test]
fn expr_var_constraint_matches_references_anywhere_in_expr() {
    let s = spec("change {\n    if $EXPR{var=node}:\n        $BLOCK{stmts=1,2}\n} into {\n}");
    assert!(match_at(&s, &block("if node:\n    f()\n"), 0).is_some());
    assert!(match_at(&s, &block("if not node.ready:\n    f()\n"), 0).is_some());
    assert!(match_at(&s, &block("if len(nodes_by_rack[node]) > 0:\n    f()\n"), 0).is_some());
    assert!(match_at(&s, &block("if cfg:\n    f()\n"), 0).is_none());
}

#[test]
fn scanner_dedupes_across_distinct_blocks_only() {
    let s = spec("change {\n    $CALL{name=ping}(...)\n} into {\n    pass\n}");
    let m = pysrc::parse_module(
        "def a():\n    ping()\ndef b():\n    ping()\n",
        "m.py",
    )
    .unwrap();
    let points = Scanner::new(vec![s]).scan(std::slice::from_ref(&m));
    assert_eq!(points.len(), 2, "one per function");
}

#[test]
fn mfc_window_reconstruction_preserves_context() {
    // The b1/b2 blocks around the deleted call must survive verbatim.
    let out = mutate(
        "change {\n    $BLOCK{tag=b1; stmts=1,*}\n    $CALL{name=drop_*}(...)\n    $BLOCK{tag=b2; stmts=1,*}\n} into {\n    $BLOCK{tag=b1}\n    $BLOCK{tag=b2}\n}",
        "def f():\n    a = prepare()\n    b = validate(a)\n    drop_table(b)\n    commit(b)\n    report(b)\n",
    );
    for kept in ["a = prepare()", "b = validate(a)", "commit(b)", "report(b)"] {
        assert!(out.contains(kept), "missing {kept} in:\n{out}");
    }
    assert!(!out.contains("drop_table"));
}

#[test]
fn reordering_blocks_via_tags() {
    // §III: "using the tagging syntax in the change block, to change
    // the order of statements in the into block".
    let out = mutate(
        "change {\n    $VAR#a = $CALL#c1{name=first}(...)\n    $VAR#b = $CALL#c2{name=second}(...)\n} into {\n    $VAR#b = $CALL#c2(...)\n    $VAR#a = $CALL#c1(...)\n}",
        "def f():\n    x = first()\n    y = second()\n    return x + y\n",
    );
    let x_pos = out.find("x = first()").expect("x kept");
    let y_pos = out.find("y = second()").expect("y kept");
    assert!(y_pos < x_pos, "statements must be swapped:\n{out}");
}

#[test]
fn triggered_mode_duplicates_window_into_both_branches() {
    let s = spec("change {\n    $CALL{name=audit}(...)\n} into {\n    pass\n}");
    let m = pysrc::parse_module("def f(x):\n    audit(x)\n    return x\n", "m.py").unwrap();
    let points = Scanner::new(vec![s.clone()]).scan(std::slice::from_ref(&m));
    let out = Mutator::new(MutationMode::Triggered)
        .apply(&m, &s, &points[0])
        .expect("applies");
    let text = pysrc::unparse::unparse_module(&out);
    assert!(text.contains("if profipy_rt.trigger():"));
    assert!(text.contains("audit(x)"), "original kept in else branch");
    // The mutant must execute identically with the trigger off.
    let program = format!("def audit(v):\n    pass\n{text}\nprint(f(21))\n");
    let module = pysrc::parse_module(&program, "check.py").expect("mutant program parses");
    let mut vm = pyrt::Vm::new();
    vm.run_module(&module).expect("mutant runs clean with trigger off");
    assert_eq!(vm.stdout(), "21\n");
}

#[test]
fn corrupt_wraps_numeric_literals() {
    let out = mutate(
        "change {\n    $VAR#x = $NUM#n\n} into {\n    $VAR#x = $CORRUPT($NUM#n)\n}",
        "retries = 3\nuse(retries)\n",
    );
    assert!(out.contains("retries = profipy_rt.corrupt(3)"));
}

#[test]
fn multiple_specs_scan_in_deterministic_order() {
    let s1 = spec("change {\n    $CALL{name=a}(...)\n} into {\n    pass\n}");
    let s2 = spec("change {\n    $CALL{name=b}(...)\n} into {\n    pass\n}");
    let m = pysrc::parse_module("a()\nb()\n", "m.py").unwrap();
    let p1 = Scanner::new(vec![s1.clone(), s2.clone()]).scan(std::slice::from_ref(&m));
    let p2 = Scanner::new(vec![s1, s2]).scan(std::slice::from_ref(&m));
    let ids1: Vec<_> = p1.iter().map(|p| (p.id, p.spec_name.clone())).collect();
    let ids2: Vec<_> = p2.iter().map(|p| (p.id, p.spec_name.clone())).collect();
    assert_eq!(ids1, ids2);
}
