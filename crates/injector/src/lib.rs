//! `injector` — the source-code scanner and mutator of ProFIPy
//! (paper §IV-A/§IV-B).
//!
//! * [`matcher`] interprets a compiled [`faultdsl::BugSpec`] meta-model
//!   against target ASTs: regex-style sequence matching over statement
//!   blocks with variable-length `$BLOCK` elements, argument-list
//!   wildcards (`...`), glob constraints, and tag binding.
//! * [`scanner`] enumerates *fault injection points*: every
//!   deduplicated match of every specification across the target
//!   modules.
//! * [`mutator`] generates *mutated versions*: either direct in-place
//!   mutation, or EDFI-style trigger-switchable mutation
//!   (`if profipy_rt.trigger(): <faulty> else: <original>`, §IV-B),
//!   plus the coverage instrumentation pre-pass of §IV-D.
//!
//! # Example
//!
//! ```
//! use injector::scanner::Scanner;
//!
//! let spec = faultdsl::parse_spec(
//!     "change {\n    $CALL{name=delete_*}(...)\n} into {\n    pass\n}",
//!     "MFC-like",
//! ).unwrap();
//! let module = pysrc::parse_module(
//!     "def f(c):\n    c.prepare()\n    delete_port(c)\n    c.done()\n",
//!     "m.py",
//! ).unwrap();
//! let points = Scanner::new(vec![spec]).scan(&[module]);
//! assert_eq!(points.len(), 1);
//! ```

pub mod matcher;
pub mod mutator;
pub mod persist;
pub mod scanner;

pub use matcher::{match_at, Bindings};
pub use mutator::{MutationMode, Mutator};
pub use persist::{points_from_portable_value, points_to_portable_value};
pub use scanner::{InjectionPoint, Scanner};
