//! The source-code scanner (paper §IV-A): enumerates fault-injection
//! points across the target modules.

use crate::matcher::{match_at, WindowMatch};
use faultdsl::BugSpec;
use pysrc::ast::{Module, NodeId, Stmt};
use pysrc::error::Span;
use pysrc::visit::walk_blocks;
use std::collections::HashSet;

/// One fault-injection point: a deduplicated match of one spec at one
/// program location.
#[derive(Clone, Debug)]
pub struct InjectionPoint {
    /// Stable, scanner-assigned id (also used by coverage probes).
    pub id: u64,
    /// Name of the matching bug specification.
    pub spec_name: String,
    /// Module the point lives in.
    pub module: String,
    /// Enclosing scope (`Class.method` or `<module>`).
    pub scope: String,
    /// Source span of the first core statement.
    pub span: Span,
    /// Id of the first statement of the matched window.
    pub start_stmt_id: NodeId,
    /// Window length in statements.
    pub window_len: usize,
    /// Ids of the statements matched by non-`$BLOCK` elements.
    pub core_ids: Vec<NodeId>,
}

/// The scanner: compiled specs + scan state.
pub struct Scanner {
    specs: Vec<BugSpec>,
}

impl Scanner {
    /// Creates a scanner for the given compiled specifications.
    pub fn new(specs: Vec<BugSpec>) -> Scanner {
        Scanner { specs }
    }

    /// The specs this scanner applies.
    pub fn specs(&self) -> &[BugSpec] {
        &self.specs
    }

    /// Finds the spec with a given name.
    pub fn spec(&self, name: &str) -> Option<&BugSpec> {
        self.specs.iter().find(|s| s.name == name)
    }

    /// Scans the modules, returning every deduplicated injection point
    /// in deterministic order (module, block, position, spec).
    pub fn scan(&self, modules: &[Module]) -> Vec<InjectionPoint> {
        let mut points = Vec::new();
        let mut next_id = 0u64;
        for module in modules {
            walk_blocks(module, &mut |block, ctx| {
                for spec in &self.specs {
                    let mut seen: HashSet<Vec<NodeId>> = HashSet::new();
                    for start in 0..block.len() {
                        if let Some(m) = match_at(spec, block, start) {
                            if seen.insert(m.core_ids.clone()) {
                                points.push(make_point(
                                    &mut next_id,
                                    spec,
                                    module,
                                    ctx.dotted(),
                                    block,
                                    start,
                                    &m,
                                ));
                            }
                        }
                    }
                }
            });
        }
        points
    }
}

fn make_point(
    next_id: &mut u64,
    spec: &BugSpec,
    module: &Module,
    scope: String,
    block: &[Stmt],
    start: usize,
    m: &WindowMatch,
) -> InjectionPoint {
    let id = *next_id;
    *next_id += 1;
    let span = m
        .core_ids
        .first()
        .and_then(|cid| block.iter().find(|s| s.id == *cid))
        .map(|s| s.span)
        .unwrap_or(block[start].span);
    InjectionPoint {
        id,
        spec_name: spec.name.clone(),
        module: module.name.clone(),
        scope,
        span,
        start_stmt_id: block[start].id,
        window_len: m.len,
        core_ids: m.core_ids.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultdsl::parse_spec;

    fn scan_src(dsl: &str, src: &str) -> Vec<InjectionPoint> {
        let spec = parse_spec(dsl, "S").unwrap();
        let module = pysrc::parse_module(src, "m.py").unwrap();
        Scanner::new(vec![spec]).scan(&[module])
    }

    #[test]
    fn finds_all_calls_across_scopes() {
        let points = scan_src(
            "change {\n    $CALL{name=log*}(...)\n} into {\n    pass\n}",
            concat!(
                "log_init()\n",
                "def f():\n",
                "    log_f()\n",
                "class C:\n",
                "    def m(self):\n",
                "        log_m()\n",
            ),
        );
        assert_eq!(points.len(), 3);
        let scopes: Vec<&str> = points.iter().map(|p| p.scope.as_str()).collect();
        assert!(scopes.contains(&"<module>"));
        assert!(scopes.contains(&"f"));
        assert!(scopes.contains(&"C.m"));
    }

    #[test]
    fn dedupes_overlapping_windows() {
        // Both delete calls in one block found exactly once each.
        let points = scan_src(
            "change {\n    $BLOCK{tag=b1; stmts=1,*}\n    $CALL{name=delete_*}(...)\n    $BLOCK{tag=b2; stmts=1,*}\n} into {\n    $BLOCK{tag=b1}\n    $BLOCK{tag=b2}\n}",
            "a = 1\ndelete_a(x)\nmid = 2\ndelete_b(y)\nz = 3\n",
        );
        assert_eq!(points.len(), 2);
    }

    #[test]
    fn points_have_stable_ordering_and_ids() {
        let src = "f(1)\nf(2)\nf(3)\n";
        let p1 = scan_src("change {\n    $CALL{name=f}(...)\n} into {\n    pass\n}", src);
        assert_eq!(p1.len(), 3);
        assert_eq!(p1[0].id, 0);
        assert_eq!(p1[1].id, 1);
        assert!(p1[0].span.lo < p1[1].span.lo);
    }

    #[test]
    fn multiple_specs_multiply_points() {
        let s1 = parse_spec("change {\n    $CALL{name=f}(...)\n} into {\n    pass\n}", "S1")
            .unwrap();
        let s2 = parse_spec(
            "change {\n    $CALL#c{name=f}(...)\n} into {\n    $CALL#c(...)\n    $HOG\n}",
            "S2",
        )
        .unwrap();
        let module = pysrc::parse_module("f(1)\n", "m.py").unwrap();
        let points = Scanner::new(vec![s1, s2]).scan(&[module]);
        assert_eq!(points.len(), 2);
        assert_ne!(points[0].spec_name, points[1].spec_name);
    }

    #[test]
    fn nested_blocks_are_scanned() {
        let points = scan_src(
            "change {\n    $CALL{name=g}(...)\n} into {\n    pass\n}",
            "for i in xs:\n    if i:\n        g(i)\n",
        );
        assert_eq!(points.len(), 1);
    }
}
