//! Serialization and stable hashing for scan results.
//!
//! The campaign layer's cross-campaign cache persists scan results on
//! disk keyed by (source hash, fault-model hash); that requires
//! [`InjectionPoint`]s to round-trip through JSON and to have a
//! process-independent fingerprint (`DefaultHasher` is randomized per
//! process, so it cannot key an on-disk cache).

use crate::scanner::InjectionPoint;
use jsonlite::Value;
use pysrc::ast::NodeId;
use pysrc::error::{Pos, Span};

fn span_to_value(span: &Span) -> Value {
    Value::Arr(vec![
        Value::Int(span.lo.line as i64),
        Value::Int(span.lo.col as i64),
        Value::Int(span.hi.line as i64),
        Value::Int(span.hi.col as i64),
    ])
}

fn span_from_value(v: &Value) -> Result<Span, String> {
    let parts = v.as_arr().ok_or("span must be an array")?;
    if parts.len() != 4 {
        return Err("span must have 4 elements".to_string());
    }
    let num = |i: usize| -> Result<u32, String> {
        parts[i]
            .as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| format!("span element {i} out of range"))
    };
    Ok(Span {
        lo: Pos::new(num(0)?, num(1)?),
        hi: Pos::new(num(2)?, num(3)?),
    })
}

impl InjectionPoint {
    /// The point as a JSON value.
    pub fn to_value(&self) -> Value {
        Value::obj(vec![
            ("id", Value::UInt(self.id)),
            ("spec", Value::str(&self.spec_name)),
            ("module", Value::str(&self.module)),
            ("scope", Value::str(&self.scope)),
            ("span", span_to_value(&self.span)),
            ("start_stmt", Value::UInt(self.start_stmt_id.0 as u64)),
            ("window_len", Value::UInt(self.window_len as u64)),
            (
                "core_ids",
                Value::Arr(
                    self.core_ids
                        .iter()
                        .map(|id| Value::UInt(id.0 as u64))
                        .collect(),
                ),
            ),
        ])
    }

    /// Reads a point back from a JSON value.
    ///
    /// # Errors
    ///
    /// Describes the malformed field.
    pub fn from_value(v: &Value) -> Result<InjectionPoint, String> {
        let text = |key: &str| -> Result<String, String> {
            v.req(key)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("point field '{key}' must be a string"))
        };
        let node_id = |val: &Value, what: &str| -> Result<NodeId, String> {
            val.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .map(NodeId)
                .ok_or_else(|| format!("{what} out of range"))
        };
        Ok(InjectionPoint {
            id: v.req("id")?.as_u64().ok_or("point 'id' must be a u64")?,
            spec_name: text("spec")?,
            module: text("module")?,
            scope: text("scope")?,
            span: span_from_value(v.req("span")?)?,
            start_stmt_id: node_id(v.req("start_stmt")?, "start_stmt")?,
            window_len: v
                .req("window_len")?
                .as_u64()
                .ok_or("point 'window_len' must be a u64")? as usize,
            core_ids: v
                .req("core_ids")?
                .as_arr()
                .ok_or("point 'core_ids' must be an array")?
                .iter()
                .map(|id| node_id(id, "core id"))
                .collect::<Result<Vec<_>, _>>()?,
        })
    }

    /// A stable, process-independent content fingerprint of the point.
    pub fn fingerprint(&self) -> u64 {
        jsonlite::stable_hash64(self.to_value().compact().as_bytes())
    }
}

/// Serializes a whole scan result.
pub fn points_to_value(points: &[InjectionPoint]) -> Value {
    Value::Arr(points.iter().map(InjectionPoint::to_value).collect())
}

/// Reads a whole scan result back.
///
/// # Errors
///
/// Describes the malformed entry.
pub fn points_from_value(v: &Value) -> Result<Vec<InjectionPoint>, String> {
    v.as_arr()
        .ok_or("scan result must be an array")?
        .iter()
        .map(InjectionPoint::from_value)
        .collect()
}

/// Order-sensitive fingerprint of a whole scan result — two scans agree
/// iff they found the same points in the same order.
pub fn points_fingerprint(points: &[InjectionPoint]) -> u64 {
    jsonlite::combine_hash64(
        &points
            .iter()
            .map(InjectionPoint::fingerprint)
            .collect::<Vec<_>>(),
    )
}

// ---------------------------------------------------------------------
// Portable (cross-process) scan serialization.
//
// `NodeId`s are process-local (a global counter), so a scan written by
// one process cannot be resolved against modules parsed by another.
// Statement *spans* are stable for identical source text, though: the
// portable form stores the window's statement spans next to the ids and
// re-binds them against freshly parsed modules at load time.
// ---------------------------------------------------------------------

use pysrc::ast::Module;
use pysrc::visit::walk_blocks;
use std::collections::HashMap;

type SpanToId = HashMap<(String, Span), NodeId>;
type IdToSpan = HashMap<(String, NodeId), Span>;

fn span_indices(modules: &[Module]) -> Result<(SpanToId, IdToSpan), String> {
    let mut by_span = HashMap::new();
    let mut by_id = HashMap::new();
    let mut ambiguous: Option<(String, Span)> = None;
    for module in modules {
        walk_blocks(module, &mut |block, _ctx| {
            for stmt in block {
                if by_span
                    .insert((module.name.clone(), stmt.span), stmt.id)
                    .is_some()
                {
                    ambiguous = Some((module.name.clone(), stmt.span));
                }
                by_id.insert((module.name.clone(), stmt.id), stmt.span);
            }
        });
    }
    match ambiguous {
        Some((module, span)) => Err(format!(
            "module {module} has two statements at span {span}; scan not portable"
        )),
        None => Ok((by_span, by_id)),
    }
}

/// Serializes a scan **portably**: each point carries the source spans
/// of its window statements so another process can re-bind it.
///
/// # Errors
///
/// If a point references a statement id that is not in `modules`, or a
/// span is ambiguous (two statements at the same location).
pub fn points_to_portable_value(
    points: &[InjectionPoint],
    modules: &[Module],
) -> Result<Value, String> {
    let (_, by_id) = span_indices(modules)?;
    let span_of = |module: &str, id: NodeId| -> Result<Span, String> {
        by_id
            .get(&(module.to_string(), id))
            .copied()
            .ok_or_else(|| format!("statement {id} not found in module {module}"))
    };
    let mut out = Vec::with_capacity(points.len());
    for p in points {
        let mut value = p.to_value();
        let Value::Obj(pairs) = &mut value else {
            unreachable!("to_value builds an object")
        };
        pairs.push((
            "start_span".to_string(),
            span_to_value(&span_of(&p.module, p.start_stmt_id)?),
        ));
        pairs.push((
            "core_spans".to_string(),
            Value::Arr(
                p.core_ids
                    .iter()
                    .map(|id| span_of(&p.module, *id).map(|s| span_to_value(&s)))
                    .collect::<Result<Vec<_>, _>>()?,
            ),
        ));
        out.push(value);
    }
    Ok(Value::Arr(out))
}

/// Loads a portable scan, re-binding every point's statement ids
/// against `modules` (which must be parsed from the identical source —
/// the cache key guarantees that).
///
/// # Errors
///
/// If a recorded span no longer resolves (source text changed, or the
/// value was not written by [`points_to_portable_value`]).
pub fn points_from_portable_value(
    v: &Value,
    modules: &[Module],
) -> Result<Vec<InjectionPoint>, String> {
    let (by_span, _) = span_indices(modules)?;
    let id_at = |module: &str, span: Span| -> Result<NodeId, String> {
        by_span
            .get(&(module.to_string(), span))
            .copied()
            .ok_or_else(|| format!("no statement at span {span} in module {module}"))
    };
    v.as_arr()
        .ok_or("portable scan must be an array")?
        .iter()
        .map(|entry| {
            let mut point = InjectionPoint::from_value(entry)?;
            let start_span = span_from_value(entry.req("start_span")?)?;
            point.start_stmt_id = id_at(&point.module, start_span)?;
            point.core_ids = entry
                .req("core_spans")?
                .as_arr()
                .ok_or("'core_spans' must be an array")?
                .iter()
                .map(|s| span_from_value(s).and_then(|s| id_at(&point.module, s)))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(point)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultdsl::parse_spec;
    use crate::scanner::Scanner;

    fn scan_points() -> Vec<InjectionPoint> {
        let spec = parse_spec(
            "change {\n    $CALL{name=log*}(...)\n} into {\n    pass\n}",
            "S",
        )
        .unwrap();
        let module = pysrc::parse_module(
            "log_init()\ndef f():\n    log_f()\nclass C:\n    def m(self):\n        log_m()\n",
            "m.py",
        )
        .unwrap();
        Scanner::new(vec![spec]).scan(&[module])
    }

    #[test]
    fn points_roundtrip_through_json() {
        let points = scan_points();
        assert!(!points.is_empty());
        let json = points_to_value(&points).pretty();
        let back = points_from_value(&jsonlite::parse(&json).unwrap()).unwrap();
        assert_eq!(points.len(), back.len());
        for (a, b) in points.iter().zip(&back) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.spec_name, b.spec_name);
            assert_eq!(a.module, b.module);
            assert_eq!(a.scope, b.scope);
            assert_eq!(a.span, b.span);
            assert_eq!(a.start_stmt_id, b.start_stmt_id);
            assert_eq!(a.window_len, b.window_len);
            assert_eq!(a.core_ids, b.core_ids);
            assert_eq!(a.fingerprint(), b.fingerprint());
        }
    }

    #[test]
    fn fingerprints_differ_between_points() {
        let points = scan_points();
        let mut prints: Vec<u64> = points.iter().map(InjectionPoint::fingerprint).collect();
        prints.sort_unstable();
        prints.dedup();
        assert_eq!(prints.len(), points.len());
    }

    #[test]
    fn scan_fingerprint_is_order_sensitive_and_repeatable() {
        let points = scan_points();
        assert_eq!(points_fingerprint(&points), points_fingerprint(&points));
        let mut reversed = points.clone();
        reversed.reverse();
        assert_ne!(points_fingerprint(&points), points_fingerprint(&reversed));
    }

    #[test]
    fn portable_scan_rebinds_across_simulated_processes() {
        let src = "def f(c):\n    c.prepare()\n    delete_port(c)\n    c.done()\n";
        let spec_dsl = "change {\n    $CALL{name=delete_*}(...)\n} into {\n    pass\n}";
        let spec = parse_spec(spec_dsl, "DEL").unwrap();
        let module = pysrc::parse_module(src, "m.py").unwrap();
        let points = Scanner::new(vec![spec.clone()]).scan(std::slice::from_ref(&module));
        let portable = points_to_portable_value(&points, &[module]).unwrap();
        let json = portable.pretty();

        // "Another process": re-parse the same source — NodeIds differ
        // because the global counter has advanced.
        let module2 = pysrc::parse_module(src, "m.py").unwrap();
        let rebound = points_from_portable_value(
            &jsonlite::parse(&json).unwrap(),
            std::slice::from_ref(&module2),
        )
        .unwrap();
        assert_eq!(rebound.len(), points.len());
        assert_ne!(
            rebound[0].start_stmt_id, points[0].start_stmt_id,
            "re-parse must have different ids for the test to be meaningful"
        );
        // The re-bound point must actually work: mutate through it.
        let mutated = crate::Mutator::new(crate::MutationMode::Direct)
            .apply(&module2, &spec, &rebound[0])
            .expect("re-bound point drives the mutator");
        let text = pysrc::unparse::unparse_module(&mutated);
        assert!(!text.contains("delete_port"), "{text}");

        // A changed source refuses to re-bind instead of mis-binding.
        let changed = pysrc::parse_module(
            "def f(c):\n    c.prepare()\n\n    delete_port(c)\n    c.done()\n",
            "m.py",
        )
        .unwrap();
        assert!(
            points_from_portable_value(&jsonlite::parse(&json).unwrap(), &[changed]).is_err()
        );
    }
}
