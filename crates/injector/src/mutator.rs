//! The source-code mutator (paper §IV-B): generates mutated versions
//! of the target from injection points.
//!
//! Two modes:
//!
//! * [`MutationMode::Direct`] — splice the replacement over the matched
//!   window.
//! * [`MutationMode::Triggered`] — EDFI-style switchable mutation: the
//!   window becomes
//!   `if profipy_rt.trigger(): <replacement> else: <original>`, so the
//!   sandbox can enable/disable the fault between workload rounds by
//!   writing the shared trigger cell (§IV-B).
//!
//! The mutator also provides the coverage instrumentation pre-pass of
//! §IV-D: a fault-free copy of the target with `profipy_rt.cov(id)`
//! probes at every injection point.

use crate::matcher::{match_at, Bindings};
use crate::scanner::InjectionPoint;
use faultdsl::spec::ELLIPSIS;
use faultdsl::{BugSpec, DirectiveKind};
use pysrc::ast::*;
use pysrc::visit::walk_blocks_mut;

/// How the fault is spliced into the target.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MutationMode {
    /// Replace the window outright.
    Direct,
    /// Wrap in `if profipy_rt.trigger(): faulty else: original`.
    #[default]
    Triggered,
}

/// The mutator.
#[derive(Debug, Default)]
pub struct Mutator {
    mode: MutationMode,
}

/// Error applying a mutation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MutateError {
    /// Description.
    pub message: String,
}

impl std::fmt::Display for MutateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mutation error: {}", self.message)
    }
}

impl std::error::Error for MutateError {}

impl Mutator {
    /// Creates a mutator with the given mode.
    pub fn new(mode: MutationMode) -> Mutator {
        Mutator { mode }
    }

    /// Produces the mutated version of `module` for one injection
    /// point. The input module is cloned; node identity of the window
    /// start is used to re-locate the match.
    ///
    /// # Errors
    ///
    /// Fails if the point's window can no longer be located or
    /// re-matched (e.g. the point belongs to a different module).
    pub fn apply(
        &self,
        module: &Module,
        spec: &BugSpec,
        point: &InjectionPoint,
    ) -> Result<Module, MutateError> {
        if module.name != point.module {
            return Err(MutateError {
                message: format!(
                    "point {} targets module {}, got {}",
                    point.id, point.module, module.name
                ),
            });
        }
        let mut mutated = module.clone();
        let mut applied = false;
        let mode = self.mode;
        walk_blocks_mut(&mut mutated, &mut |block| {
            if applied {
                return;
            }
            let Some(start) = block.iter().position(|s| s.id == point.start_stmt_id) else {
                return;
            };
            let Some(m) = match_at(spec, block, start) else {
                return;
            };
            let replacement = instantiate(spec, &spec.replacement, &m.bindings);
            let window: Vec<Stmt> = block.drain(start..start + m.len).collect();
            let spliced = match mode {
                MutationMode::Direct => replacement,
                MutationMode::Triggered => vec![trigger_wrap(replacement, window)],
            };
            for (idx, s) in (start..).zip(spliced) {
                block.insert(idx, s);
            }
            applied = true;
        });
        if !applied {
            return Err(MutateError {
                message: format!(
                    "could not re-locate window for point {} (spec {})",
                    point.id, point.spec_name
                ),
            });
        }
        ensure_profipy_import(&mut mutated);
        Ok(mutated)
    }

    /// Builds the fault-free, coverage-instrumented copy of a module
    /// (paper §IV-D): inserts `profipy_rt.cov(<point id>)` immediately
    /// before the window of every point that lives in this module.
    pub fn instrument_coverage(&self, module: &Module, points: &[InjectionPoint]) -> Module {
        let mut instrumented = module.clone();
        walk_blocks_mut(&mut instrumented, &mut |block| {
            // Gather (index, point id) pairs, then insert back-to-front
            // so indices stay valid.
            let mut inserts: Vec<(usize, u64)> = Vec::new();
            for p in points {
                if p.module != module.name {
                    continue;
                }
                if let Some(idx) = block.iter().position(|s| s.id == p.start_stmt_id) {
                    inserts.push((idx, p.id));
                }
            }
            inserts.sort_by(|a, b| b.cmp(a));
            for (idx, id) in inserts {
                block.insert(idx, cov_probe(id));
            }
        });
        ensure_profipy_import(&mut instrumented);
        instrumented
    }
}

/// `profipy_rt.cov(<id>)` statement.
fn cov_probe(id: u64) -> Stmt {
    Stmt::synth(StmtKind::Expr(rt_call("cov", vec![Expr::int(id as i64)])))
}

/// `profipy_rt.<name>(args)` expression.
fn rt_call(name: &str, args: Vec<Expr>) -> Expr {
    Expr::synth(ExprKind::Call {
        func: Box::new(Expr::synth(ExprKind::Attribute {
            value: Box::new(Expr::name("profipy_rt")),
            attr: name.to_string(),
        })),
        args: args.into_iter().map(Arg::Pos).collect(),
    })
}

/// `if profipy_rt.trigger(): <faulty> else: <original>`.
fn trigger_wrap(mut faulty: Vec<Stmt>, original: Vec<Stmt>) -> Stmt {
    if faulty.is_empty() {
        faulty.push(Stmt::synth(StmtKind::Pass));
    }
    Stmt::synth(StmtKind::If {
        branches: vec![(rt_call("trigger", vec![]), faulty)],
        orelse: original,
    })
}

/// Adds `import profipy_rt` at the top of the module if missing.
fn ensure_profipy_import(module: &mut Module) {
    let has_import = module.body.iter().any(|s| {
        matches!(&s.kind, StmtKind::Import(aliases) if aliases.iter().any(|a| a.name == "profipy_rt"))
    });
    if !has_import {
        module.body.insert(
            0,
            Stmt::synth(StmtKind::Import(vec![ImportAlias {
                name: "profipy_rt".to_string(),
                alias: None,
            }])),
        );
    }
}

/// Instantiates replacement statements against bindings, producing
/// fresh-id AST nodes.
pub fn instantiate(spec: &BugSpec, replacement: &[Stmt], bindings: &Bindings) -> Vec<Stmt> {
    let mut out = Vec::new();
    for stmt in replacement {
        instantiate_stmt(spec, stmt, bindings, &mut out);
    }
    out
}

fn instantiate_stmt(spec: &BugSpec, stmt: &Stmt, bindings: &Bindings, out: &mut Vec<Stmt>) {
    // Placeholder-statement forms: $BLOCK / $HOG / $TIMEOUT / tagged exprs.
    if let StmtKind::Expr(e) = &stmt.kind {
        if let ExprKind::Name(n) = &e.kind {
            if let Some(d) = spec.directive(n) {
                match &d.kind {
                    DirectiveKind::Block { .. } => {
                        if let Some(tag) = &d.tag {
                            if let Some(stmts) = bindings.blocks.get(tag) {
                                out.extend(stmts.iter().map(refresh_stmt));
                            }
                        }
                        return;
                    }
                    DirectiveKind::Hog => {
                        out.push(Stmt::synth(StmtKind::Expr(rt_call("hog", vec![]))));
                        return;
                    }
                    DirectiveKind::Timeout { secs } => {
                        out.push(Stmt::synth(StmtKind::Expr(rt_call(
                            "delay",
                            vec![Expr::synth(ExprKind::Num(Number::Float(*secs)))],
                        ))));
                        return;
                    }
                    _ => {
                        // Tagged expression as a statement.
                        let inst = instantiate_expr(spec, e, bindings);
                        out.push(Stmt::synth(StmtKind::Expr(inst)));
                        return;
                    }
                }
            }
        }
    }
    // Ordinary statement: clone with instantiated expressions and
    // recursively instantiated bodies.
    let kind = match &stmt.kind {
        StmtKind::Expr(e) => StmtKind::Expr(instantiate_expr(spec, e, bindings)),
        StmtKind::Assign { targets, value } => StmtKind::Assign {
            targets: targets
                .iter()
                .map(|t| instantiate_expr(spec, t, bindings))
                .collect(),
            value: instantiate_expr(spec, value, bindings),
        },
        StmtKind::AugAssign { target, op, value } => StmtKind::AugAssign {
            target: instantiate_expr(spec, target, bindings),
            op: *op,
            value: instantiate_expr(spec, value, bindings),
        },
        StmtKind::Return(v) => {
            StmtKind::Return(v.as_ref().map(|e| instantiate_expr(spec, e, bindings)))
        }
        StmtKind::Raise { exc, cause } => StmtKind::Raise {
            exc: exc.as_ref().map(|e| instantiate_expr(spec, e, bindings)),
            cause: cause.as_ref().map(|e| instantiate_expr(spec, e, bindings)),
        },
        StmtKind::If { branches, orelse } => StmtKind::If {
            branches: branches
                .iter()
                .map(|(c, body)| {
                    (
                        instantiate_expr(spec, c, bindings),
                        instantiate(spec, body, bindings),
                    )
                })
                .collect(),
            orelse: instantiate(spec, orelse, bindings),
        },
        StmtKind::While { test, body, orelse } => StmtKind::While {
            test: instantiate_expr(spec, test, bindings),
            body: instantiate(spec, body, bindings),
            orelse: instantiate(spec, orelse, bindings),
        },
        StmtKind::For {
            target,
            iter,
            body,
            orelse,
        } => StmtKind::For {
            target: instantiate_expr(spec, target, bindings),
            iter: instantiate_expr(spec, iter, bindings),
            body: instantiate(spec, body, bindings),
            orelse: instantiate(spec, orelse, bindings),
        },
        other => other.clone(),
    };
    out.push(Stmt::synth(kind));
}

/// Deep-clones a bound statement with fresh node ids (so a statement
/// reused in both trigger branches keeps unique identity).
fn refresh_stmt(stmt: &Stmt) -> Stmt {
    let mut s = stmt.clone();
    s.id = NodeId::fresh();
    s
}

fn instantiate_expr(spec: &BugSpec, expr: &Expr, bindings: &Bindings) -> Expr {
    // Placeholder reference?
    if let ExprKind::Name(n) = &expr.kind {
        if let Some(d) = spec.directive(n) {
            if let Some(tag) = &d.tag {
                if let Some(bound) = bindings.exprs.get(tag) {
                    return bound.clone();
                }
            }
        }
    }
    match &expr.kind {
        ExprKind::Call { func, args } => {
            // `$CORRUPT(x)` → profipy_rt.corrupt(x)
            if let ExprKind::Name(n) = &func.kind {
                if let Some(d) = spec.directive(n) {
                    match &d.kind {
                        DirectiveKind::Corrupt => {
                            let inner = args
                                .first()
                                .map(|a| instantiate_expr(spec, a.value(), bindings))
                                .unwrap_or_else(|| Expr::synth(ExprKind::NoneLit));
                            return rt_call("corrupt", vec![inner]);
                        }
                        DirectiveKind::Call { .. } => {
                            if let Some(tag) = &d.tag {
                                return rebuild_call(spec, tag, args, bindings);
                            }
                        }
                        _ => {}
                    }
                }
            }
            Expr::synth(ExprKind::Call {
                func: Box::new(instantiate_expr(spec, func, bindings)),
                args: args
                    .iter()
                    .map(|a| instantiate_arg(spec, a, bindings))
                    .collect(),
            })
        }
        ExprKind::Attribute { value, attr } => Expr::synth(ExprKind::Attribute {
            value: Box::new(instantiate_expr(spec, value, bindings)),
            attr: attr.clone(),
        }),
        ExprKind::Subscript { value, index } => Expr::synth(ExprKind::Subscript {
            value: Box::new(instantiate_expr(spec, value, bindings)),
            index: Box::new(instantiate_expr(spec, index, bindings)),
        }),
        ExprKind::Unary { op, operand } => Expr::synth(ExprKind::Unary {
            op: *op,
            operand: Box::new(instantiate_expr(spec, operand, bindings)),
        }),
        ExprKind::Binary { left, op, right } => Expr::synth(ExprKind::Binary {
            left: Box::new(instantiate_expr(spec, left, bindings)),
            op: *op,
            right: Box::new(instantiate_expr(spec, right, bindings)),
        }),
        ExprKind::BoolOp { op, values } => Expr::synth(ExprKind::BoolOp {
            op: *op,
            values: values
                .iter()
                .map(|v| instantiate_expr(spec, v, bindings))
                .collect(),
        }),
        ExprKind::Compare {
            left,
            ops,
            comparators,
        } => Expr::synth(ExprKind::Compare {
            left: Box::new(instantiate_expr(spec, left, bindings)),
            ops: ops.clone(),
            comparators: comparators
                .iter()
                .map(|c| instantiate_expr(spec, c, bindings))
                .collect(),
        }),
        ExprKind::Tuple(items) => Expr::synth(ExprKind::Tuple(
            items
                .iter()
                .map(|i| instantiate_expr(spec, i, bindings))
                .collect(),
        )),
        ExprKind::List(items) => Expr::synth(ExprKind::List(
            items
                .iter()
                .map(|i| instantiate_expr(spec, i, bindings))
                .collect(),
        )),
        ExprKind::Set(items) => Expr::synth(ExprKind::Set(
            items
                .iter()
                .map(|i| instantiate_expr(spec, i, bindings))
                .collect(),
        )),
        ExprKind::Dict(pairs) => Expr::synth(ExprKind::Dict(
            pairs
                .iter()
                .map(|(k, v)| {
                    (
                        instantiate_expr(spec, k, bindings),
                        instantiate_expr(spec, v, bindings),
                    )
                })
                .collect(),
        )),
        ExprKind::IfExp { test, body, orelse } => Expr::synth(ExprKind::IfExp {
            test: Box::new(instantiate_expr(spec, test, bindings)),
            body: Box::new(instantiate_expr(spec, body, bindings)),
            orelse: Box::new(instantiate_expr(spec, orelse, bindings)),
        }),
        ExprKind::Starred(inner) => Expr::synth(ExprKind::Starred(Box::new(instantiate_expr(
            spec, inner, bindings,
        )))),
        _ => {
            let mut e = expr.clone();
            e.id = NodeId::fresh();
            e
        }
    }
}

fn instantiate_arg(spec: &BugSpec, arg: &Arg, bindings: &Bindings) -> Arg {
    match arg {
        Arg::Pos(e) => Arg::Pos(instantiate_expr(spec, e, bindings)),
        Arg::Kw(n, e) => Arg::Kw(n.clone(), instantiate_expr(spec, e, bindings)),
        Arg::Star(e) => Arg::Star(instantiate_expr(spec, e, bindings)),
        Arg::DoubleStar(e) => Arg::DoubleStar(instantiate_expr(spec, e, bindings)),
    }
}

/// Rebuilds a tagged call: `$CALL#c(<arg pattern>)` in the replacement
/// takes the *original* matched call and rewrites its arguments.
///
/// * No `...` in the replacement arg pattern → the arguments are
///   exactly the instantiated explicit elements (parameter dropping).
/// * With `...` → original arguments pass through, except that the
///   argument matched by the k-th explicit *pattern* element is
///   replaced by the instantiated k-th explicit *replacement* element.
fn rebuild_call(spec: &BugSpec, tag: &str, rep_args: &[Arg], bindings: &Bindings) -> Expr {
    let Some(original) = bindings.exprs.get(tag) else {
        return Expr::synth(ExprKind::NoneLit);
    };
    let ExprKind::Call {
        func: orig_func,
        args: orig_args,
    } = &original.kind
    else {
        return original.clone();
    };
    let is_ellipsis = |a: &Arg| {
        matches!(a, Arg::Pos(e) if matches!(&e.kind, ExprKind::Name(n) if n == ELLIPSIS))
    };
    let has_ellipsis = rep_args.iter().any(is_ellipsis);
    let new_args: Vec<Arg> = if !has_ellipsis {
        rep_args
            .iter()
            .map(|a| instantiate_arg(spec, a, bindings))
            .collect()
    } else {
        let explicit: Vec<&Arg> = rep_args.iter().filter(|a| !is_ellipsis(a)).collect();
        let map = bindings
            .call_arg_map
            .get(tag)
            .cloned()
            .unwrap_or_default();
        let mut out = Vec::with_capacity(orig_args.len());
        for (i, orig) in orig_args.iter().enumerate() {
            match map.iter().position(|&m| m == i) {
                Some(k) if k < explicit.len() => {
                    out.push(instantiate_arg(spec, explicit[k], bindings));
                }
                _ => out.push(orig.clone()),
            }
        }
        out
    };
    Expr::synth(ExprKind::Call {
        func: orig_func.clone(),
        args: new_args,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::Scanner;
    use faultdsl::parse_spec;
    use pysrc::unparse::unparse_module;

    fn mutate_one(dsl: &str, src: &str, mode: MutationMode) -> String {
        let spec = parse_spec(dsl, "S").unwrap();
        let module = pysrc::parse_module(src, "m.py").unwrap();
        let scanner = Scanner::new(vec![spec.clone()]);
        let points = scanner.scan(std::slice::from_ref(&module));
        assert!(!points.is_empty(), "no injection points found");
        let mutated = Mutator::new(mode)
            .apply(&module, &spec, &points[0])
            .unwrap();
        unparse_module(&mutated)
    }

    #[test]
    fn direct_mfc_removes_call() {
        let out = mutate_one(
            "change {\n    $BLOCK{tag=b1; stmts=1,*}\n    $CALL{name=delete_*}(...)\n    $BLOCK{tag=b2; stmts=1,*}\n} into {\n    $BLOCK{tag=b1}\n    $BLOCK{tag=b2}\n}",
            "def f(x):\n    a = 1\n    delete_port(x)\n    b = 2\n",
            MutationMode::Direct,
        );
        assert!(!out.contains("delete_port"));
        assert!(out.contains("a = 1"));
        assert!(out.contains("b = 2"));
        assert!(out.starts_with("import profipy_rt\n"));
    }

    #[test]
    fn triggered_mutation_keeps_original_in_else() {
        let out = mutate_one(
            "change {\n    $CALL{name=delete_*}(...)\n} into {\n    pass\n}",
            "def f(x):\n    delete_port(x)\n",
            MutationMode::Triggered,
        );
        assert!(out.contains("if profipy_rt.trigger():"));
        assert!(out.contains("pass"));
        assert!(out.contains("else:"));
        assert!(out.contains("delete_port(x)"));
        // The mutated module still parses.
        pysrc::parse_module(&out, "check.py").unwrap();
    }

    #[test]
    fn wpf_corrupts_only_flag_argument() {
        let out = mutate_one(
            "change {\n    $CALL#c{name=utils.execute}(..., $STRING#s{val=*-*}, ...)\n} into {\n    $CALL#c(..., $CORRUPT($STRING#s), ...)\n}",
            "utils.execute('iptables', '--dport 2379', table)\n",
            MutationMode::Direct,
        );
        assert!(out.contains("utils.execute('iptables', profipy_rt.corrupt('--dport 2379'), table)"));
    }

    #[test]
    fn missing_parameter_drops_trailing_args() {
        let out = mutate_one(
            "change {\n    $VAR#r = $CALL#c{name=urllib.request}($EXPR#m, $EXPR#u, ...)\n} into {\n    $VAR#r = $CALL#c($EXPR#m, $EXPR#u)\n}",
            "resp = urllib.request('PUT', url, body, timeout=5)\n",
            MutationMode::Direct,
        );
        assert!(out.contains("resp = urllib.request('PUT', url)\n"));
    }

    #[test]
    fn hog_is_appended_after_call() {
        let out = mutate_one(
            "change {\n    $VAR#r = $CALL#c{name=*}(...)\n} into {\n    $VAR#r = $CALL#c(...)\n    $HOG\n}",
            "r = client.set(k, v)\n",
            MutationMode::Direct,
        );
        assert!(out.contains("r = client.set(k, v)\nprofipy_rt.hog()\n"));
    }

    #[test]
    fn timeout_injects_delay() {
        let out = mutate_one(
            "change {\n    $VAR#r = $CALL#c{name=*}(...)\n} into {\n    $TIMEOUT{secs=5}\n    $VAR#r = $CALL#c(...)\n}",
            "r = get()\n",
            MutationMode::Direct,
        );
        assert!(out.contains("profipy_rt.delay(5.0)\nr = get()\n"));
    }

    #[test]
    fn mifs_deletes_guarded_block() {
        let out = mutate_one(
            "change {\n    if $EXPR{var=node}:\n        $BLOCK{stmts=1,4}\n        continue\n} into {\n}",
            "for node in nodes:\n    if not node:\n        skip(node)\n        continue\n    work(node)\n",
            MutationMode::Direct,
        );
        assert!(!out.contains("skip(node)"));
        assert!(out.contains("work(node)"));
        pysrc::parse_module(&out, "check.py").unwrap();
    }

    #[test]
    fn empty_replacement_under_trigger_becomes_pass() {
        let out = mutate_one(
            "change {\n    if $EXPR{var=node}:\n        $BLOCK{stmts=1,4}\n        continue\n} into {\n}",
            "for node in nodes:\n    if not node:\n        skip(node)\n        continue\n    work(node)\n",
            MutationMode::Triggered,
        );
        assert!(out.contains("if profipy_rt.trigger():\n        pass\n"));
        assert!(out.contains("skip(node)")); // original kept in else
        pysrc::parse_module(&out, "check.py").unwrap();
    }

    #[test]
    fn coverage_instrumentation_inserts_probes() {
        let spec = parse_spec(
            "change {\n    $CALL{name=f}(...)\n} into {\n    pass\n}",
            "S",
        )
        .unwrap();
        let module = pysrc::parse_module("f(1)\nx = 2\nf(3)\n", "m.py").unwrap();
        let scanner = Scanner::new(vec![spec]);
        let points = scanner.scan(std::slice::from_ref(&module));
        assert_eq!(points.len(), 2);
        let instrumented = Mutator::default().instrument_coverage(&module, &points);
        let out = unparse_module(&instrumented);
        assert!(out.contains("profipy_rt.cov(0)\nf(1)\n"));
        assert!(out.contains("profipy_rt.cov(1)\nf(3)\n"));
        pysrc::parse_module(&out, "check.py").unwrap();
    }

    #[test]
    fn mutated_module_roundtrips_through_parser() {
        for mode in [MutationMode::Direct, MutationMode::Triggered] {
            let out = mutate_one(
                "change {\n    $CALL#c{name=self.client.set}($EXPR#k, ...)\n} into {\n    $CALL#c($CORRUPT($EXPR#k), ...)\n}",
                "class W:\n    def go(self):\n        self.client.set(key, val, ttl=30)\n",
                mode,
            );
            pysrc::parse_module(&out, "check.py").unwrap();
        }
    }

    #[test]
    fn apply_rejects_wrong_module() {
        let spec = parse_spec("change {\n    $CALL{name=f}(...)\n} into {\n    pass\n}", "S")
            .unwrap();
        let m1 = pysrc::parse_module("f(1)\n", "a.py").unwrap();
        let m2 = pysrc::parse_module("f(1)\n", "b.py").unwrap();
        let points = Scanner::new(vec![spec.clone()]).scan(std::slice::from_ref(&m1));
        assert!(Mutator::default().apply(&m2, &spec, &points[0]).is_err());
    }
}
