//! The meta-model matcher: interprets a [`BugSpec`] pattern against a
//! window of statements in a target block.
//!
//! Matching semantics:
//!
//! * The pattern's top-level elements match a **contiguous window** of
//!   statements within one block. `$BLOCK{stmts=min,max}` elements are
//!   variable-length and matched **lazily** (shortest first), so every
//!   distinct "core" (the statements matched by non-`$BLOCK` elements)
//!   is discovered exactly once by the scanner.
//! * Nested bodies (the body of a pattern `if`/`for`/`while`) must
//!   match the target body **exactly** (anchored at both ends).
//! * Argument lists match sequence-wise; `...` is a lazy wildcard run.
//! * Tags bind matched statements/expressions for reuse by the
//!   replacement builder.

use faultdsl::spec::{BugSpec, ELLIPSIS};
use faultdsl::{glob_match, DirectiveKind};
use pysrc::ast::*;
use std::collections::HashMap;

/// Everything a successful match binds.
#[derive(Clone, Debug, Default)]
pub struct Bindings {
    /// `$BLOCK` tags → matched statement runs.
    pub blocks: HashMap<String, Vec<Stmt>>,
    /// Expression tags (`$CALL#c`, `$STRING#s`, ...) → matched exprs.
    pub exprs: HashMap<String, Expr>,
    /// For tagged calls with explicit argument patterns: pattern
    /// explicit-element order → matched argument index in the target.
    pub call_arg_map: HashMap<String, Vec<usize>>,
}

/// A successful match of a pattern at a window.
#[derive(Clone, Debug)]
pub struct WindowMatch {
    /// Number of statements the window covers.
    pub len: usize,
    /// Ids of statements matched by non-`$BLOCK` elements (dedupe key).
    pub core_ids: Vec<NodeId>,
    /// Tag bindings.
    pub bindings: Bindings,
}

enum Element<'p> {
    /// `$BLOCK{stmts=min,max}`.
    VarBlock {
        tag: Option<String>,
        min: usize,
        max: Option<usize>,
    },
    /// Any other pattern statement.
    Single(&'p Stmt),
}

fn classify<'p>(spec: &BugSpec, pattern: &'p [Stmt]) -> Vec<Element<'p>> {
    pattern
        .iter()
        .map(|s| {
            if let StmtKind::Expr(e) = &s.kind {
                if let ExprKind::Name(n) = &e.kind {
                    if let Some(d) = spec.directive(n) {
                        if let DirectiveKind::Block { min, max } = d.kind {
                            return Element::VarBlock {
                                tag: d.tag.clone(),
                                min,
                                max,
                            };
                        }
                    }
                }
            }
            Element::Single(s)
        })
        .collect()
}

/// Attempts to match the spec's pattern as a window starting at
/// `block[start]`. Returns the lazily-shortest match.
pub fn match_at(spec: &BugSpec, block: &[Stmt], start: usize) -> Option<WindowMatch> {
    let elements = classify(spec, &spec.pattern);
    let mut bindings = Bindings::default();
    let mut core_ids = Vec::new();
    let end = seq_match(
        spec,
        &elements,
        block,
        start,
        false,
        &mut bindings,
        &mut core_ids,
    )?;
    Some(WindowMatch {
        len: end - start,
        core_ids,
        bindings,
    })
}

/// Matches a full body (anchored at both ends) — used for nested
/// pattern bodies.
fn body_match(
    spec: &BugSpec,
    pattern: &[Stmt],
    body: &[Stmt],
    bindings: &mut Bindings,
    core_ids: &mut Vec<NodeId>,
) -> bool {
    let elements = classify(spec, pattern);
    matches!(
        seq_match(spec, &elements, body, 0, true, bindings, core_ids),
        Some(end) if end == body.len()
    )
}

/// Sequence matcher with lazy variable blocks. When `anchored`, the
/// final element must land exactly at the end of `block` (enforced by
/// the caller re-checking the returned end).
#[allow(clippy::too_many_arguments)]
fn seq_match(
    spec: &BugSpec,
    elements: &[Element<'_>],
    block: &[Stmt],
    pos: usize,
    anchored: bool,
    bindings: &mut Bindings,
    core_ids: &mut Vec<NodeId>,
) -> Option<usize> {
    let Some((first, rest)) = elements.split_first() else {
        return Some(pos);
    };
    match first {
        Element::VarBlock { tag, min, max } => {
            let remaining = block.len().saturating_sub(pos);
            let cap = max.unwrap_or(remaining).min(remaining);
            // Lazy: shortest run first. When this is the LAST element of
            // an anchored body, it must absorb everything left.
            let counts: Vec<usize> = if anchored && rest.is_empty() {
                if remaining >= *min && remaining <= cap {
                    vec![remaining]
                } else {
                    vec![]
                }
            } else {
                (*min..=cap).collect()
            };
            for take in counts {
                let mut trial_bindings = bindings.clone();
                let mut trial_core = core_ids.clone();
                if let Some(tag) = tag {
                    trial_bindings
                        .blocks
                        .insert(tag.clone(), block[pos..pos + take].to_vec());
                }
                if let Some(end) = seq_match(
                    spec,
                    rest,
                    block,
                    pos + take,
                    anchored,
                    &mut trial_bindings,
                    &mut trial_core,
                ) {
                    if anchored && rest.is_empty() && end != block.len() {
                        continue;
                    }
                    *bindings = trial_bindings;
                    *core_ids = trial_core;
                    return Some(end);
                }
            }
            None
        }
        Element::Single(pat) => {
            let prog = block.get(pos)?;
            let mut trial_bindings = bindings.clone();
            let mut trial_core = core_ids.clone();
            if match_stmt(spec, pat, prog, &mut trial_bindings, &mut trial_core) {
                trial_core.push(prog.id);
                if let Some(end) = seq_match(
                    spec,
                    rest,
                    block,
                    pos + 1,
                    anchored,
                    &mut trial_bindings,
                    &mut trial_core,
                ) {
                    *bindings = trial_bindings;
                    *core_ids = trial_core;
                    return Some(end);
                }
            }
            None
        }
    }
}

fn match_stmt(
    spec: &BugSpec,
    pat: &Stmt,
    prog: &Stmt,
    bindings: &mut Bindings,
    core_ids: &mut Vec<NodeId>,
) -> bool {
    match (&pat.kind, &prog.kind) {
        (StmtKind::Expr(pe), StmtKind::Expr(ge)) => match_expr(spec, pe, ge, bindings),
        (
            StmtKind::Assign {
                targets: pt,
                value: pv,
            },
            StmtKind::Assign {
                targets: gt,
                value: gv,
            },
        ) => {
            pt.len() == gt.len()
                && pt
                    .iter()
                    .zip(gt)
                    .all(|(p, g)| match_expr(spec, p, g, bindings))
                && match_expr(spec, pv, gv, bindings)
        }
        (
            StmtKind::AugAssign {
                target: pt,
                op: po,
                value: pv,
            },
            StmtKind::AugAssign {
                target: gt,
                op: go,
                value: gv,
            },
        ) => po == go && match_expr(spec, pt, gt, bindings) && match_expr(spec, pv, gv, bindings),
        (StmtKind::Return(pv), StmtKind::Return(gv)) => match (pv, gv) {
            (None, None) => true,
            (Some(p), Some(g)) => match_expr(spec, p, g, bindings),
            _ => false,
        },
        (StmtKind::Pass, StmtKind::Pass)
        | (StmtKind::Break, StmtKind::Break)
        | (StmtKind::Continue, StmtKind::Continue) => true,
        (
            StmtKind::Raise {
                exc: pe,
                cause: pc,
            },
            StmtKind::Raise {
                exc: ge,
                cause: gc,
            },
        ) => {
            let exc_ok = match (pe, ge) {
                (None, None) => true,
                (Some(p), Some(g)) => match_expr(spec, p, g, bindings),
                _ => false,
            };
            let cause_ok = match (pc, gc) {
                (None, None) => true,
                (Some(p), Some(g)) => match_expr(spec, p, g, bindings),
                _ => false,
            };
            exc_ok && cause_ok
        }
        (
            StmtKind::If {
                branches: pb,
                orelse: po,
            },
            StmtKind::If {
                branches: gb,
                orelse: go,
            },
        ) => {
            // Strict structure: same number of branches, both with or
            // without an else.
            pb.len() == gb.len()
                && po.is_empty() == go.is_empty()
                && pb.iter().zip(gb).all(|((pc, pbody), (gc, gbody))| {
                    match_expr(spec, pc, gc, bindings)
                        && body_match(spec, pbody, gbody, bindings, core_ids)
                })
                && (po.is_empty() || body_match(spec, po, go, bindings, core_ids))
        }
        (
            StmtKind::While {
                test: pt,
                body: pbody,
                orelse: po,
            },
            StmtKind::While {
                test: gt,
                body: gbody,
                orelse: go,
            },
        ) => {
            match_expr(spec, pt, gt, bindings)
                && po.is_empty() == go.is_empty()
                && body_match(spec, pbody, gbody, bindings, core_ids)
                && (po.is_empty() || body_match(spec, po, go, bindings, core_ids))
        }
        (
            StmtKind::For {
                target: ptg,
                iter: pit,
                body: pbody,
                orelse: po,
            },
            StmtKind::For {
                target: gtg,
                iter: git,
                body: gbody,
                orelse: go,
            },
        ) => {
            match_expr(spec, ptg, gtg, bindings)
                && match_expr(spec, pit, git, bindings)
                && po.is_empty() == go.is_empty()
                && body_match(spec, pbody, gbody, bindings, core_ids)
                && (po.is_empty() || body_match(spec, po, go, bindings, core_ids))
        }
        _ => false,
    }
}

/// Does a placeholder directive match this expression? Binds tags.
fn match_placeholder(
    spec: &BugSpec,
    placeholder: &str,
    prog: &Expr,
    bindings: &mut Bindings,
) -> bool {
    let Some(d) = spec.directive(placeholder) else {
        return false;
    };
    let ok = match &d.kind {
        DirectiveKind::Expr { var } => match var {
            None => true,
            Some(glob) => {
                // The expression must reference a variable matching the glob.
                let mut found = false;
                pysrc::visit::walk_expr(prog, &mut |e| {
                    if let ExprKind::Name(n) = &e.kind {
                        if glob_match(glob, n) {
                            found = true;
                        }
                    }
                });
                found
            }
        },
        DirectiveKind::Var { name } => match &prog.kind {
            ExprKind::Name(n) => name.as_deref().is_none_or(|g| glob_match(g, n)),
            _ => false,
        },
        DirectiveKind::Str { val } => match &prog.kind {
            ExprKind::Str(s) => val.as_deref().is_none_or(|g| glob_match(g, s)),
            _ => false,
        },
        DirectiveKind::Num => matches!(prog.kind, ExprKind::Num(_)),
        DirectiveKind::Call { name } => match &prog.kind {
            ExprKind::Call { func, .. } => func
                .dotted_path()
                .is_some_and(|p| name.as_deref().is_none_or(|g| glob_match(g, &p))),
            _ => false,
        },
        // Replacement-side directives never match.
        DirectiveKind::Block { .. }
        | DirectiveKind::Corrupt
        | DirectiveKind::Hog
        | DirectiveKind::Timeout { .. } => false,
    };
    if ok {
        if let Some(tag) = &d.tag {
            bindings.exprs.insert(tag.clone(), prog.clone());
        }
    }
    ok
}

/// Expression matching (pattern may contain placeholders anywhere).
pub fn match_expr(spec: &BugSpec, pat: &Expr, prog: &Expr, bindings: &mut Bindings) -> bool {
    // Placeholder name?
    if let ExprKind::Name(n) = &pat.kind {
        if spec.directive(n).is_some() {
            return match_placeholder(spec, n, prog, bindings);
        }
    }
    // `$CALL{..}(args)` — placeholder in callee position.
    if let ExprKind::Call {
        func: pfunc,
        args: pargs,
    } = &pat.kind
    {
        if let ExprKind::Name(n) = &pfunc.kind {
            if let Some(d) = spec.directive(n) {
                if let DirectiveKind::Call { name } = &d.kind {
                    let ExprKind::Call {
                        func: gfunc,
                        args: gargs,
                    } = &prog.kind
                    else {
                        return false;
                    };
                    let callee_ok = gfunc
                        .dotted_path()
                        .is_some_and(|p| name.as_deref().is_none_or(|g| glob_match(g, &p)));
                    if !callee_ok {
                        return false;
                    }
                    let mut arg_map = Vec::new();
                    if !match_args(spec, pargs, gargs, bindings, &mut arg_map) {
                        return false;
                    }
                    if let Some(tag) = &d.tag {
                        bindings.exprs.insert(tag.clone(), prog.clone());
                        bindings.call_arg_map.insert(tag.clone(), arg_map);
                    }
                    return true;
                }
            }
        }
    }
    match (&pat.kind, &prog.kind) {
        (ExprKind::Num(a), ExprKind::Num(b)) => match (a, b) {
            (Number::Int(x), Number::Int(y)) => x == y,
            (Number::Float(x), Number::Float(y)) => x == y,
            _ => false,
        },
        (ExprKind::Str(a), ExprKind::Str(b)) => a == b,
        (ExprKind::Bool(a), ExprKind::Bool(b)) => a == b,
        (ExprKind::NoneLit, ExprKind::NoneLit) => true,
        (ExprKind::Name(a), ExprKind::Name(b)) => a == b,
        (
            ExprKind::Attribute {
                value: pv,
                attr: pa,
            },
            ExprKind::Attribute {
                value: gv,
                attr: ga,
            },
        ) => pa == ga && match_expr(spec, pv, gv, bindings),
        (
            ExprKind::Subscript {
                value: pv,
                index: pi,
            },
            ExprKind::Subscript {
                value: gv,
                index: gi,
            },
        ) => match_expr(spec, pv, gv, bindings) && match_expr(spec, pi, gi, bindings),
        (
            ExprKind::Call {
                func: pf,
                args: pa,
            },
            ExprKind::Call {
                func: gf,
                args: ga,
            },
        ) => {
            let mut ignored = Vec::new();
            match_expr(spec, pf, gf, bindings) && match_args(spec, pa, ga, bindings, &mut ignored)
        }
        (
            ExprKind::Unary {
                op: po,
                operand: pv,
            },
            ExprKind::Unary {
                op: go,
                operand: gv,
            },
        ) => po == go && match_expr(spec, pv, gv, bindings),
        (
            ExprKind::Binary {
                left: pl,
                op: po,
                right: pr,
            },
            ExprKind::Binary {
                left: gl,
                op: go,
                right: gr,
            },
        ) => po == go && match_expr(spec, pl, gl, bindings) && match_expr(spec, pr, gr, bindings),
        (
            ExprKind::BoolOp {
                op: po,
                values: pv,
            },
            ExprKind::BoolOp {
                op: go,
                values: gv,
            },
        ) => {
            po == go
                && pv.len() == gv.len()
                && pv
                    .iter()
                    .zip(gv)
                    .all(|(p, g)| match_expr(spec, p, g, bindings))
        }
        (
            ExprKind::Compare {
                left: pl,
                ops: po,
                comparators: pc,
            },
            ExprKind::Compare {
                left: gl,
                ops: go,
                comparators: gc,
            },
        ) => {
            po == go
                && match_expr(spec, pl, gl, bindings)
                && pc.len() == gc.len()
                && pc
                    .iter()
                    .zip(gc)
                    .all(|(p, g)| match_expr(spec, p, g, bindings))
        }
        (ExprKind::Tuple(pa), ExprKind::Tuple(ga))
        | (ExprKind::List(pa), ExprKind::List(ga))
        | (ExprKind::Set(pa), ExprKind::Set(ga)) => {
            pa.len() == ga.len()
                && pa
                    .iter()
                    .zip(ga)
                    .all(|(p, g)| match_expr(spec, p, g, bindings))
        }
        (ExprKind::Dict(pp), ExprKind::Dict(gp)) => {
            pp.len() == gp.len()
                && pp.iter().zip(gp).all(|((pk, pv), (gk, gv))| {
                    match_expr(spec, pk, gk, bindings) && match_expr(spec, pv, gv, bindings)
                })
        }
        (
            ExprKind::IfExp {
                test: pt,
                body: pb,
                orelse: po,
            },
            ExprKind::IfExp {
                test: gt,
                body: gb,
                orelse: go,
            },
        ) => {
            match_expr(spec, pt, gt, bindings)
                && match_expr(spec, pb, gb, bindings)
                && match_expr(spec, po, go, bindings)
        }
        (ExprKind::Starred(p), ExprKind::Starred(g)) => match_expr(spec, p, g, bindings),
        _ => false,
    }
}

fn is_ellipsis_arg(arg: &Arg) -> bool {
    matches!(arg, Arg::Pos(e) if matches!(&e.kind, ExprKind::Name(n) if n == ELLIPSIS))
}

/// Argument-list matching with lazy `...` wildcards. `arg_map` records,
/// for each explicit pattern element in order, the index of the target
/// argument it matched.
fn match_args(
    spec: &BugSpec,
    pattern: &[Arg],
    prog: &[Arg],
    bindings: &mut Bindings,
    arg_map: &mut Vec<usize>,
) -> bool {
    fn rec(
        spec: &BugSpec,
        pattern: &[Arg],
        prog: &[Arg],
        pi: usize,
        gi: usize,
        bindings: &mut Bindings,
        arg_map: &mut Vec<usize>,
    ) -> bool {
        if pi == pattern.len() {
            return gi == prog.len();
        }
        let pat = &pattern[pi];
        if is_ellipsis_arg(pat) {
            // Lazy wildcard: try consuming 0..rest.
            for take in 0..=(prog.len() - gi) {
                let mut trial = bindings.clone();
                let mut trial_map = arg_map.clone();
                if rec(spec, pattern, prog, pi + 1, gi + take, &mut trial, &mut trial_map) {
                    *bindings = trial;
                    *arg_map = trial_map;
                    return true;
                }
            }
            return false;
        }
        let Some(g) = prog.get(gi) else { return false };
        let element_ok = match (pat, g) {
            (Arg::Pos(p), Arg::Pos(v)) => match_expr(spec, p, v, bindings),
            (Arg::Kw(pn, p), Arg::Kw(gn, v)) => pn == gn && match_expr(spec, p, v, bindings),
            (Arg::Star(p), Arg::Star(v)) | (Arg::DoubleStar(p), Arg::DoubleStar(v)) => {
                match_expr(spec, p, v, bindings)
            }
            _ => false,
        };
        if !element_ok {
            return false;
        }
        arg_map.push(gi);
        rec(spec, pattern, prog, pi + 1, gi + 1, bindings, arg_map)
    }
    rec(spec, pattern, prog, 0, 0, bindings, arg_map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultdsl::parse_spec;

    fn block_of(src: &str) -> Vec<Stmt> {
        pysrc::parse_module(src, "t.py").unwrap().body
    }

    #[test]
    fn mfc_matches_surrounded_call() {
        let spec = parse_spec(
            "change {\n    $BLOCK{tag=b1; stmts=1,*}\n    $CALL{name=delete_*}(...)\n    $BLOCK{tag=b2; stmts=1,*}\n} into {\n    $BLOCK{tag=b1}\n    $BLOCK{tag=b2}\n}",
            "MFC",
        )
        .unwrap();
        let block = block_of("a = 1\ndelete_port(x)\nb = 2\n");
        let m = match_at(&spec, &block, 0).expect("should match");
        assert_eq!(m.len, 3);
        assert_eq!(m.bindings.blocks["b1"].len(), 1);
        assert_eq!(m.bindings.blocks["b2"].len(), 1);
        // A call that is the only statement must NOT match (paper: the
        // call must be surrounded).
        let lonely = block_of("delete_port(x)\n");
        assert!(match_at(&spec, &lonely, 0).is_none());
        // Wrong name must not match.
        let wrong = block_of("a = 1\ncreate_port(x)\nb = 2\n");
        assert!(match_at(&spec, &wrong, 0).is_none());
    }

    #[test]
    fn mifs_matches_if_with_continue() {
        let spec = parse_spec(
            "change {\n    if $EXPR{var=node}:\n        $BLOCK{stmts=1,4}\n        continue\n} into {\n}",
            "MIFS",
        )
        .unwrap();
        let block = block_of(
            "for node in nodes:\n    if not node:\n        log(node)\n        continue\n",
        );
        // The if is nested in the for body.
        let StmtKind::For { body, .. } = &block[0].kind else {
            panic!()
        };
        let m = match_at(&spec, body, 0).expect("if should match");
        assert_eq!(m.len, 1);
        // A different variable name must not match.
        let other = block_of("if not cfg:\n    log(cfg)\n    continue\n");
        assert!(match_at(&spec, &other, 0).is_none());
        // Body without continue must not match.
        let nocont = block_of("if not node:\n    log(node)\n");
        assert!(match_at(&spec, &nocont, 0).is_none());
    }

    #[test]
    fn wpf_matches_flag_string_argument() {
        let spec = parse_spec(
            "change {\n    $CALL#c{name=utils.execute}(..., $STRING#s{val=*-*}, ...)\n} into {\n    $CALL#c(..., $CORRUPT($STRING#s), ...)\n}",
            "WPF",
        )
        .unwrap();
        let block = block_of("utils.execute('iptables', '--dport 2379', key)\n");
        let m = match_at(&spec, &block, 0).expect("should match");
        assert!(m.bindings.exprs.contains_key("c"));
        assert!(m.bindings.exprs.contains_key("s"));
        // The string arg index is recorded (position 1).
        assert_eq!(m.bindings.call_arg_map["c"], vec![1]);
        // No flag-looking string → no match.
        let plain = block_of("utils.execute('iptables', 'oops', key)\n");
        assert!(match_at(&spec, &plain, 0).is_none());
    }

    #[test]
    fn assignment_call_pattern() {
        let spec = parse_spec(
            "change {\n    $VAR#r = $CALL#c{name=urllib.request}(...)\n} into {\n    $VAR#r = None\n}",
            "NONE",
        )
        .unwrap();
        let block = block_of("resp = urllib.request('GET', url)\n");
        let m = match_at(&spec, &block, 0).unwrap();
        assert!(m.bindings.exprs.contains_key("r"));
        // Statement-level call (no assignment) must not match.
        let stmt = block_of("urllib.request('GET', url)\n");
        assert!(match_at(&spec, &stmt, 0).is_none());
    }

    #[test]
    fn kwarg_and_method_chains_match() {
        let spec = parse_spec(
            "change {\n    $CALL#c{name=self.client.set}($EXPR#k, ...)\n} into {\n    $CALL#c($CORRUPT($EXPR#k), ...)\n}",
            "X",
        )
        .unwrap();
        let block = block_of("self.client.set(key, value, ttl=30)\n");
        let m = match_at(&spec, &block, 0).unwrap();
        assert_eq!(m.bindings.call_arg_map["c"], vec![0]);
    }

    #[test]
    fn boolean_clause_pattern() {
        let spec = parse_spec(
            "change {\n    if $EXPR#a and $EXPR#b:\n        $BLOCK{tag=body; stmts=1,*}\n} into {\n    if $EXPR#a:\n        $BLOCK{tag=body}\n}",
            "MBCA",
        )
        .unwrap();
        let block = block_of("if ready and node is not None:\n    go(node)\n");
        let m = match_at(&spec, &block, 0).unwrap();
        assert!(m.bindings.exprs.contains_key("a"));
        assert!(m.bindings.exprs.contains_key("b"));
        // `or` must not match an `and` pattern.
        let or_block = block_of("if ready or node:\n    go(node)\n");
        assert!(match_at(&spec, &or_block, 0).is_none());
    }

    #[test]
    fn lazy_blocks_find_first_call() {
        let spec = parse_spec(
            "change {\n    $BLOCK{tag=b1; stmts=1,*}\n    $CALL{name=delete_*}(...)\n    $BLOCK{tag=b2; stmts=1,*}\n} into {\n    $BLOCK{tag=b1}\n    $BLOCK{tag=b2}\n}",
            "MFC",
        )
        .unwrap();
        let block = block_of("a = 1\ndelete_a(x)\nmid = 2\ndelete_b(y)\nz = 3\n");
        let m = match_at(&spec, &block, 0).unwrap();
        // Lazy matching finds the first call with minimal b1/b2.
        assert_eq!(m.core_ids.len(), 1);
        assert_eq!(m.core_ids[0], block[1].id);
    }

    #[test]
    fn num_and_string_placeholders() {
        let spec = parse_spec(
            "change {\n    $VAR#x = $NUM#n\n} into {\n    $VAR#x = $CORRUPT($NUM#n)\n}",
            "WVAV",
        )
        .unwrap();
        assert!(match_at(&spec, &block_of("retries = 3\n"), 0).is_some());
        assert!(match_at(&spec, &block_of("retries = get()\n"), 0).is_none());
        assert!(match_at(&spec, &block_of("self.x = 3\n"), 0).is_none());
    }

    #[test]
    fn dict_literal_pattern() {
        let spec = parse_spec(
            "change {\n    $VAR#d = {$STRING#k: $EXPR#v}\n} into {\n    $VAR#d = {$CORRUPT($STRING#k): $EXPR#v}\n}",
            "CDI",
        )
        .unwrap();
        assert!(match_at(&spec, &block_of("opts = {'ttl': 30}\n"), 0).is_some());
        assert!(match_at(&spec, &block_of("opts = {'a': 1, 'b': 2}\n"), 0).is_none());
    }
}
