//! Loopback throughput of the as-a-Service HTTP surface.
//!
//! Three measurements:
//!
//! * **status_poll** — `GET /api/campaigns/:id` over one keep-alive
//!   connection: the hot read path every dashboard and CI poller hits.
//!   The acceptance bar is ≥ 10k requests/sec on loopback; the bench
//!   prints the measured rate explicitly.
//! * **concurrent_poll_burst** — the event-loop scaling number: many
//!   keep-alive clients polling at once against a small handler pool
//!   (64 clients over 8 workers; the old worker-per-connection model
//!   served at most `workers` clients no matter the load).
//! * **submit_to_report** — the full cycle: submit a small noop-host
//!   campaign, poll to completion, fetch the report.

use campaign::{ApiConfig, ApiServer, CampaignService, CampaignSpec, EngineConfig, HostRegistry};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn quick_mode() -> bool {
    std::env::var("PROFIPY_BENCH_QUICK").is_ok_and(|v| v == "1")
}

fn service() -> CampaignService {
    CampaignService::new(EngineConfig::default(), HostRegistry::with_noop()).expect("service")
}

fn noop_spec(user: &str, name: &str, seed: u64) -> CampaignSpec {
    let mut spec = CampaignSpec::new(
        user,
        name,
        "noop",
        vec![(
            "target".into(),
            "def f():\n    x = 1\n    log_event()\n    return x\n".into(),
        )],
        "import target\ndef run(round):\n    target.f()\n".into(),
        faultdsl::predefined_models(),
    );
    spec.seed = seed;
    spec
}

fn submit_and_wait(client: &mut httpd::Client, spec: &CampaignSpec) -> String {
    let resp = client
        .post_json("/api/campaigns", &spec.to_json())
        .expect("submit");
    assert_eq!(resp.status, 201, "{}", resp.text());
    let id = jsonlite::parse(&resp.text())
        .expect("json")
        .req("id")
        .expect("id")
        .as_str()
        .expect("str")
        .to_string();
    loop {
        let status = client.get(&format!("/api/campaigns/{id}")).expect("poll");
        let state = jsonlite::parse(&status.text())
            .expect("json")
            .req("state")
            .expect("state")
            .as_str()
            .expect("str")
            .to_string();
        if state == "completed" {
            return id;
        }
        assert_ne!(state, "failed", "campaign failed");
    }
}

fn bench_http_throughput(c: &mut Criterion) {
    // A deliberately small handler pool: the concurrent burst below
    // runs 8× more keep-alive clients than workers (single-connection
    // numbers are pool-size independent).
    let config = ApiConfig {
        http: httpd::ServerConfig {
            workers: 8,
            queue_depth: 256,
            ..httpd::ServerConfig::default()
        },
        drive_batch: 8,
        local_drive: true,
    };
    let api = ApiServer::serve("127.0.0.1:0", service(), config).expect("bind");
    let addr = api.addr().to_string();
    let mut client = httpd::Client::new(&addr);
    let id = submit_and_wait(&mut client, &noop_spec("bench", "warmup", 1));
    let poll_path = format!("/api/campaigns/{id}");

    // Explicit requests/sec burst (the acceptance number).
    let burst = if quick_mode() { 200 } else { 20_000 };
    let t0 = std::time::Instant::now();
    for _ in 0..burst {
        let resp = client.get(&poll_path).expect("poll");
        assert_eq!(resp.status, 200);
    }
    let elapsed = t0.elapsed();
    let rate = burst as f64 / elapsed.as_secs_f64();
    println!(
        "http_throughput/status_poll_burst      {burst} requests in {elapsed:?} = {rate:.0} req/s"
    );

    // Aggregate throughput with keep-alive clients well past the
    // handler pool — the event loop's reason to exist. Every client
    // holds its connection open for the whole burst.
    let clients_n = if quick_mode() { 8 } else { 64 };
    let per_client = if quick_mode() { 25 } else { 400 };
    let ready = std::sync::Arc::new(std::sync::Barrier::new(clients_n + 1));
    let handles: Vec<_> = (0..clients_n)
        .map(|_| {
            let addr = addr.clone();
            let path = poll_path.clone();
            let ready = ready.clone();
            std::thread::spawn(move || {
                let mut client = httpd::Client::new(&addr);
                assert_eq!(client.get(&path).expect("warm").status, 200);
                ready.wait(); // all connections open before timing
                ready.wait(); // go
                for _ in 0..per_client {
                    assert_eq!(client.get(&path).expect("poll").status, 200);
                }
            })
        })
        .collect();
    ready.wait();
    let t0 = std::time::Instant::now();
    ready.wait();
    for handle in handles {
        handle.join().expect("client thread");
    }
    let elapsed = t0.elapsed();
    let total = clients_n * per_client;
    let rate = total as f64 / elapsed.as_secs_f64();
    println!(
        "http_throughput/concurrent_poll_burst  {clients_n} keep-alive clients x {per_client} \
         = {total} requests in {elapsed:?} = {rate:.0} req/s"
    );

    let mut group = c.benchmark_group("http_throughput");
    group.sample_size(20);
    group.bench_function("status_poll", |b| {
        b.iter(|| {
            let resp = client.get(black_box(&poll_path)).expect("poll");
            assert_eq!(resp.status, 200);
            black_box(resp.body.len())
        });
    });

    let mut seed = 100u64;
    group.bench_function("submit_to_report", |b| {
        b.iter(|| {
            seed += 1;
            // A fresh seed defeats nothing (the scan cache is the
            // point), but a fresh name keeps job history readable.
            let spec = noop_spec("bench", &format!("run-{seed}"), seed);
            let id = submit_and_wait(&mut client, &spec);
            let report = client
                .get(&format!("/api/campaigns/{id}/report"))
                .expect("report");
            assert_eq!(report.status, 200);
            black_box(report.body.len())
        });
    });
    group.finish();
    api.shutdown();
}

criterion_group!(benches, bench_http_throughput);
criterion_main!(benches);
