//! Interpreter fast-path microbenchmarks.
//!
//! Three microworkloads stress the paths the prepare/resolve refactor
//! targets:
//!
//! * **name-lookup-heavy** — a tight loop over many locals and a few
//!   globals: slot-indexed reads/writes vs. the old linear string scan.
//! * **call-heavy** — deep/naive recursion plus many small calls: frame
//!   setup cost (no more per-call `Vec<String>` clones).
//! * **dict-heavy** — string-keyed dict churn: the hash index vs. the
//!   old O(n) probe.
//!
//! A fourth benchmark measures the prepared-program reuse: executing an
//! already-prepared module versus parse+prepare+run from source, the
//! per-experiment saving the campaign layer banks for every unchanged
//! module.

use criterion::{criterion_group, criterion_main, Criterion};
use pyrt::vm::{Engine, Vm};
use std::hint::black_box;
use std::sync::Arc;

const NAME_LOOKUP_HEAVY: &str = concat!(
    "BASE = 3\n",
    "SCALE = 2\n",
    "def churn(count):\n",
    "    v0 = 0\n",
    "    v1 = 1\n",
    "    v2 = 2\n",
    "    v3 = 3\n",
    "    v4 = 4\n",
    "    v5 = 5\n",
    "    v6 = 6\n",
    "    v7 = 7\n",
    "    v8 = 8\n",
    "    v9 = 9\n",
    "    v10 = 10\n",
    "    v11 = 11\n",
    "    v12 = 12\n",
    "    v13 = 13\n",
    "    v14 = 14\n",
    "    v15 = 15\n",
    "    total = 0\n",
    "    idx = 0\n",
    "    while idx < count:\n",
    "        total = total + v0 + v1 + v2 + v3 + v4 + v5 + v6 + v7 + v8 + v9 + v10 + v11 + v12 + v13 + v14 + v15 + BASE\n",
    "        v0 = v1\n",
    "        v1 = v2\n",
    "        v2 = v3\n",
    "        v3 = v4\n",
    "        v4 = v5\n",
    "        v5 = v6\n",
    "        v6 = v7\n",
    "        v7 = v8\n",
    "        v8 = v9\n",
    "        v9 = v10\n",
    "        v10 = v11\n",
    "        v11 = v12\n",
    "        v12 = v13\n",
    "        v13 = v14\n",
    "        v14 = v15\n",
    "        v15 = total % 97\n",
    "        idx = idx + SCALE - 1\n",
    "    return total\n",
    "print(churn(2000))\n",
);

const CALL_HEAVY: &str = concat!(
    "def add(x, y):\n",
    "    return x + y\n",
    "def fib(n):\n",
    "    if n < 2:\n",
    "        return n\n",
    "    return add(fib(n - 1), fib(n - 2))\n",
    "def drive():\n",
    "    total = 0\n",
    "    for i in range(4):\n",
    "        total = add(total, fib(13))\n",
    "    return total\n",
    "print(drive())\n",
);

const DICT_HEAVY: &str = concat!(
    "def build(n):\n",
    "    d = {}\n",
    "    i = 0\n",
    "    while i < n:\n",
    "        d['key_' + str(i)] = i\n",
    "        i = i + 1\n",
    "    return d\n",
    "def probe(d, n, rounds):\n",
    "    total = 0\n",
    "    r = 0\n",
    "    while r < rounds:\n",
    "        i = 0\n",
    "        while i < n:\n",
    "            total = total + d['key_' + str(i)]\n",
    "            if 'key_' + str(i) in d:\n",
    "                total = total + 1\n",
    "            i = i + 7\n",
    "        r = r + 1\n",
    "    return total\n",
    "d = build(200)\n",
    "print(probe(d, 200, 40))\n",
);

fn run_source(src: &str) -> String {
    let module = pysrc::parse_module(src, "bench.py").expect("bench source parses");
    let mut vm = Vm::new();
    vm.run_module(&module).expect("bench source runs");
    vm.stdout()
}

fn bench_interp_hotpath(c: &mut Criterion) {
    let mut group = c.benchmark_group("interp_hotpath");
    group.sample_size(20);

    for (name, src) in [
        ("name_lookup_heavy", NAME_LOOKUP_HEAVY),
        ("call_heavy", CALL_HEAVY),
        ("dict_heavy", DICT_HEAVY),
    ] {
        // Sanity: the workload actually computes something, and both
        // engines agree on it.
        assert!(!run_source(src).is_empty(), "{name} produced no output");
        let prepared = pyrt::prepare::prepare(Arc::new(
            pysrc::parse_module(src, "bench.py").expect("parses"),
        ));
        // Engine comparison points: `<name>_bytecode` is the default
        // production path (flat-IR dispatch, code objects cached on the
        // shared prepared module); `<name>_treewalk` is the oracle.
        for (engine_name, engine) in [
            ("bytecode", Engine::Bytecode),
            ("treewalk", Engine::TreeWalk),
        ] {
            group.bench_function(format!("{name}_{engine_name}"), |b| {
                b.iter(|| {
                    let mut vm = Vm::new();
                    vm.set_engine(engine);
                    vm.run_prepared(black_box(&prepared)).expect("runs");
                    black_box(vm.stdout())
                });
            });
        }
    }
    group.finish();

    // Prepared-program reuse: the per-experiment delta between
    // cold (parse + prepare + run) and warm (run a shared artifact).
    let mut group = c.benchmark_group("prepared_reuse");
    group.sample_size(20);
    let prepared = pyrt::prepare::prepare(Arc::new(
        pysrc::parse_module(NAME_LOOKUP_HEAVY, "bench.py").expect("parses"),
    ));
    group.bench_function("cold_parse_prepare_run", |b| {
        b.iter(|| {
            let module =
                pysrc::parse_module(black_box(NAME_LOOKUP_HEAVY), "bench.py").expect("parses");
            let mut vm = Vm::new();
            vm.run_module(&module).expect("runs");
            black_box(vm.stdout())
        });
    });
    group.bench_function("warm_run_prepared", |b| {
        b.iter(|| {
            let mut vm = Vm::new();
            vm.run_prepared(black_box(&prepared)).expect("runs");
            black_box(vm.stdout())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_interp_hotpath);
criterion_main!(benches);
