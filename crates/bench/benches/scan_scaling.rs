//! P-2 (§V-D): large-project scan scaling.
//!
//! Paper: "ProFIPy takes about 20 min to identify 17488 injectable
//! locations using 120 different DSL patterns" on ~400 kLoC of
//! OpenStack. We scan synthetic corpora (DESIGN.md substitution) with
//! a ~120-pattern model and report how the injectable-location count
//! and scan time scale with corpus size — the claim being *linear*
//! scaling in LoC × patterns ("embarrassingly parallel" per §V-D).
//!
//! Output to compare with the paper: the one-shot table printed before
//! the Criterion groups (points found and wall time per corpus size,
//! plus the projected 400 kLoC time).

use bench::{corpus_loc, large_pattern_model};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use injector::Scanner;
use std::hint::black_box;
use std::time::Instant;

fn one_shot_table(scanner: &Scanner) {
    eprintln!("P-2 scan-scaling table (paper: 400 kLoC / 120 patterns -> 17488 points, ~20 min):");
    let mut last_rate = None;
    for target_loc in [5_000usize, 20_000, 60_000] {
        let corpus = targets::generate_corpus(42, target_loc);
        let loc = corpus_loc(&corpus);
        let modules: Vec<pysrc::Module> = corpus
            .iter()
            .map(|(name, text)| pysrc::parse_module(text, name).expect("synth parses"))
            .collect();
        let t0 = Instant::now();
        let points = scanner.scan(&modules);
        let elapsed = t0.elapsed().as_secs_f64();
        let rate = elapsed / loc as f64;
        eprintln!(
            "  {loc:>7} LoC -> {:>6} points in {elapsed:>7.2}s ({:.1} us/LoC){}",
            points.len(),
            rate * 1e6,
            match last_rate {
                Some(prev) => format!(
                    "  [rate ratio vs previous: {:.2} — ~1.0 = linear]",
                    rate / prev
                ),
                None => String::new(),
            }
        );
        last_rate = Some(rate);
        if loc >= 60_000 {
            eprintln!(
                "  projected 400 kLoC scan: ~{:.1} min (paper: ~20 min on an 8-core Xeon)",
                rate * 400_000.0 / 60.0
            );
        }
    }
}

fn bench_scan_scaling(c: &mut Criterion) {
    let model = large_pattern_model();
    let specs = model.compile().expect("model compiles");
    eprintln!("P-2: {} DSL patterns (paper: 120)", specs.len());
    let scanner = Scanner::new(specs.clone());
    one_shot_table(&scanner);

    let mut group = c.benchmark_group("scan_scaling");
    group.sample_size(10);
    for target_loc in [2_000usize, 6_000] {
        let corpus = targets::generate_corpus(42, target_loc);
        let loc = corpus_loc(&corpus);
        let modules: Vec<pysrc::Module> = corpus
            .iter()
            .map(|(name, text)| pysrc::parse_module(text, name).expect("synth parses"))
            .collect();
        group.throughput(Throughput::Elements(loc as u64));
        group.bench_with_input(BenchmarkId::from_parameter(loc), &modules, |b, modules| {
            b.iter(|| black_box(scanner.scan(black_box(modules))));
        });
    }
    group.finish();

    // Parse throughput feeds the same pipeline (the AST box of Fig. 2).
    let corpus = targets::generate_corpus(7, 20_000);
    let loc = corpus_loc(&corpus);
    let mut parse_group = c.benchmark_group("parse_corpus");
    parse_group.sample_size(10);
    parse_group.throughput(Throughput::Elements(loc as u64));
    parse_group.bench_function("20k_loc", |b| {
        b.iter(|| {
            for (name, text) in &corpus {
                black_box(pysrc::parse_module(text, name).expect("parses"));
            }
        });
    });
    parse_group.finish();
}

criterion_group!(benches, bench_scan_scaling);
criterion_main!(benches);
