//! Fleet overhead: a campaign distributed to in-process worker agents
//! over real loopback HTTP (register/lease/execute/upload) versus the
//! same campaign driven through the single-node engine. The delta is
//! the coordination tax — wire serialization, portable point
//! re-binding, worker-side re-parse/re-prepare, and lease bookkeeping —
//! which horizontal scale has to amortize.

use campaign::{ApiConfig, CampaignService, CampaignSpec, EngineConfig, HostRegistry};
use cluster::{FleetConfig, FleetServer, WorkerAgent, WorkerConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use profipy::case_study::etcd_host_factory;
use std::time::{Duration, Instant};

const SAMPLE: usize = 8;

fn registry() -> HostRegistry {
    HostRegistry::with_noop().with("etcd", etcd_host_factory())
}

fn spec(seed: u64) -> CampaignSpec {
    let mut spec = CampaignSpec::new(
        "bench",
        "fleet-bench",
        "etcd",
        vec![
            ("etcd".into(), targets::CLIENT_SOURCE.into()),
            ("workload".into(), targets::WORKLOAD_BASIC.into()),
        ],
        targets::WORKLOAD_BASIC.into(),
        faultdsl::campaign_a_model(),
    );
    spec.setup = vec![vec!["etcd-start".into()]];
    spec.seed = seed;
    spec.filter.modules.push("etcd".into());
    spec.filter.sample = SAMPLE;
    spec
}

fn run_distributed(workers: usize) {
    let service = CampaignService::new(EngineConfig::default(), registry()).unwrap();
    let fleet = FleetServer::serve(
        "127.0.0.1:0",
        service,
        ApiConfig::default(),
        FleetConfig {
            lease_ttl: Duration::from_secs(10),
            heartbeat_interval: Duration::from_millis(500),
            tick_interval: Duration::from_millis(100),
            ..FleetConfig::default()
        },
    )
    .unwrap();
    let addr = fleet.addr().to_string();
    let mut client = httpd::Client::new(&addr);
    let resp = client
        .post_json("/api/campaigns", &spec(3).to_json())
        .unwrap();
    assert_eq!(resp.status, 201);
    let id = jsonlite::parse(&resp.text())
        .unwrap()
        .req("id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let agents: Vec<_> = (0..workers)
        .map(|_| {
            WorkerAgent::start(
                WorkerConfig {
                    parallelism: 2,
                    idle_backoff: Duration::from_millis(5),
                    idle_backoff_max: Duration::from_millis(20),
                    ..WorkerConfig::new(addr.clone())
                },
                registry(),
            )
            .unwrap()
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let status = client.get(&format!("/api/campaigns/{id}")).unwrap();
        let v = jsonlite::parse(&status.text()).unwrap();
        match v.req("state").unwrap().as_str().unwrap() {
            "completed" => break,
            "failed" => panic!("campaign failed"),
            _ => assert!(Instant::now() < deadline, "campaign stuck"),
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    for agent in agents {
        agent.stop();
    }
    fleet.shutdown();
}

fn run_single_node() {
    let mut service = CampaignService::new(EngineConfig::default(), registry()).unwrap();
    let id = service.submit(spec(3)).unwrap();
    service.drive(None).unwrap();
    assert!(service.engine().report(&id).is_some());
}

fn bench_fleet(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(SAMPLE as u64));
    group.bench_function("single_node", |b| b.iter(run_single_node));
    group.bench_function("fleet_2_workers", |b| b.iter(|| run_distributed(2)));
    group.finish();
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
