//! Matrix throughput: cells per minute for a scenario-catalog slice,
//! in-process versus a 2-worker fleet over loopback HTTP. A matrix run
//! is many small campaigns, so the fleet's per-campaign coordination
//! tax (wire serialization, lease bookkeeping, worker-side re-prepare)
//! hits it harder than one large campaign — this measures how much.

use campaign::{ApiConfig, CampaignService, EngineConfig, HostRegistry};
use cluster::{FleetConfig, FleetServer, WorkerAgent, WorkerConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use scenarios::{default_corpus, noop_catalog, Matrix};
use std::time::Duration;

const SAMPLE_PER_CELL: usize = 2;

/// A representative slice: every noop target × two universal models
/// plus each target's surface-specific model — small enough to iterate,
/// wide enough to exercise all three simulated targets.
fn matrix() -> Matrix {
    let models = default_corpus()
        .into_iter()
        .filter(|m| {
            matches!(
                m.model.name.as_str(),
                "exception-storm"
                    | "value-corruption"
                    | "stale-read-amplifier"
                    | "redelivery-storm"
                    | "retry-starvation"
            )
        })
        .collect();
    let mut matrix = Matrix::new(noop_catalog(), models);
    matrix.sample_per_cell = SAMPLE_PER_CELL;
    matrix
}

fn run_single_node(matrix: &Matrix) {
    let mut service =
        CampaignService::new(EngineConfig::default(), HostRegistry::with_noop()).unwrap();
    let report = matrix.run_local(&mut service).unwrap();
    assert_eq!(report.cells.len(), matrix.cells().len());
}

fn run_fleet(matrix: &Matrix, workers: usize) {
    let service = CampaignService::new(EngineConfig::default(), HostRegistry::with_noop()).unwrap();
    let fleet = FleetServer::serve(
        "127.0.0.1:0",
        service,
        ApiConfig::default(),
        FleetConfig {
            lease_ttl: Duration::from_secs(10),
            heartbeat_interval: Duration::from_millis(500),
            tick_interval: Duration::from_millis(50),
            ..FleetConfig::default()
        },
    )
    .unwrap();
    let addr = fleet.addr().to_string();
    let agents: Vec<_> = (0..workers)
        .map(|_| {
            WorkerAgent::start(
                WorkerConfig {
                    parallelism: 2,
                    idle_backoff: Duration::from_millis(5),
                    idle_backoff_max: Duration::from_millis(20),
                    ..WorkerConfig::new(addr.clone())
                },
                HostRegistry::with_noop(),
            )
            .unwrap()
        })
        .collect();
    let report = matrix.run_http(&addr, Duration::from_secs(120)).unwrap();
    assert_eq!(report.cells.len(), matrix.cells().len());
    for agent in agents {
        agent.stop();
    }
    fleet.shutdown();
}

fn bench_matrix(c: &mut Criterion) {
    let matrix = matrix();
    let cells = matrix.cells().len() as u64;
    let mut group = c.benchmark_group("matrix_throughput");
    group.sample_size(10);
    // Throughput in cells: criterion reports elements/second; multiply
    // by 60 for the cells-per-minute figure the README quotes.
    group.throughput(Throughput::Elements(cells));
    group.bench_function("single_node", |b| b.iter(|| run_single_node(&matrix)));
    group.bench_function("fleet_2_workers", |b| b.iter(|| run_fleet(&matrix, 2)));
    group.finish();
}

criterion_group!(benches, bench_matrix);
criterion_main!(benches);
