//! E-A / E-B / E-C + T1: regenerates the §V campaign tables.
//!
//! On first run each campaign executes once and prints its report —
//! the reproduction of the paper's §V-A/§V-B/§V-C statistics — then
//! Criterion benchmarks single-experiment execution per campaign.

use criterion::{criterion_group, criterion_main, Criterion};
use profipy::case_study::{campaign_a, campaign_b, campaign_c, Campaign};
use profipy::report::CampaignReport;
use std::hint::black_box;

fn print_campaign_table(campaign: &Campaign) {
    let outcome = campaign
        .workflow
        .run_campaign(&campaign.filter, campaign.prune_by_coverage)
        .expect("campaign runs");
    let report = CampaignReport::from_outcome(&campaign.name, &outcome, &campaign.classifier);
    eprintln!("{}", report.render_text());
}

fn bench_campaigns(c: &mut Criterion) {
    eprintln!("\n################ Table I / §V campaign reproduction ################");
    eprintln!("paper: A: 26 points / 13 covered / 12 failures");
    eprintln!("       B: 66 points / all covered / 29 failures");
    eprintln!("       C: 37 points / all covered / 14 failures\n");
    for campaign in [campaign_a(), campaign_b(), campaign_c()] {
        print_campaign_table(&campaign);
    }

    // Ablation (DESIGN.md §8): coverage pruning on vs off for campaign A.
    {
        let a = campaign_a();
        let points = a.workflow.scan();
        let plan = a.workflow.plan(&points, &a.filter);
        let covered = a.workflow.coverage_run(&points).expect("fault-free run");
        let pruned = plan.prune_by_coverage(&covered);
        eprintln!(
            "ablation: coverage pruning reduces campaign A from {} to {} experiments ({}% saved)\n",
            plan.len(),
            pruned.len(),
            100 * (plan.len() - pruned.len()) / plan.len().max(1)
        );
    }

    let mut group = c.benchmark_group("campaign_experiment");
    group.sample_size(10);
    for campaign in [campaign_a(), campaign_b(), campaign_c()] {
        let points = campaign.workflow.scan();
        let plan = campaign.workflow.plan(&points, &campaign.filter);
        let point = plan.entries[plan.len() / 2].clone();
        group.bench_function(campaign.name.clone(), |b| {
            b.iter(|| black_box(campaign.workflow.run_experiment(&point)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_campaigns);
criterion_main!(benches);
