//! Scheduler throughput: the campaign orchestration engine feeding one
//! worker pool from several queued campaigns at once, versus running
//! the same campaigns back-to-back through the classic single-campaign
//! path — plus the cross-campaign cache effect on resubmission.
//!
//! The interleaved engine should at least match sequential execution
//! (same experiment count, one pool kept busy across campaign
//! boundaries) and the warm-cache resubmission should beat the first
//! submission by skipping parse + scan + mutant rendering.

use campaign::{CampaignEngine, CampaignSpec, EngineConfig, HostRegistry};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use profipy::case_study::etcd_host_factory;
use profipy::PlanFilter;
use std::hint::black_box;

const CAMPAIGNS: usize = 3;
const SAMPLE: usize = 6;

fn registry() -> HostRegistry {
    HostRegistry::with_noop().with("etcd", etcd_host_factory())
}

fn spec(user: &str, name: &str, seed: u64) -> CampaignSpec {
    let mut spec = CampaignSpec::new(
        user,
        name,
        "etcd",
        vec![
            ("etcd".into(), targets::CLIENT_SOURCE.into()),
            ("workload".into(), targets::WORKLOAD_BASIC.into()),
        ],
        targets::WORKLOAD_BASIC.into(),
        faultdsl::campaign_a_model(),
    );
    spec.setup = vec![vec!["etcd-start".into()]];
    spec.seed = seed;
    spec.filter.modules.push("etcd".into());
    spec.filter.sample = SAMPLE;
    spec
}

fn bench_scheduler_throughput(c: &mut Criterion) {
    let total = (CAMPAIGNS * SAMPLE) as u64;
    let mut group = c.benchmark_group("scheduler_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total));

    // Engine path: one pool drains all campaigns interleaved.
    group.bench_function("engine_interleaved", |b| {
        b.iter(|| {
            let mut engine =
                CampaignEngine::new(EngineConfig::default(), registry()).unwrap();
            for i in 0..CAMPAIGNS {
                engine
                    .submit(spec(&format!("user{i}"), "bench", i as u64))
                    .unwrap();
            }
            let summary = engine.drive(None).unwrap();
            assert_eq!(summary.experiments, CAMPAIGNS * SAMPLE);
            black_box(summary.experiments)
        });
    });

    // Baseline: the classic path, campaigns strictly one after another.
    group.bench_function("sequential_workflows", |b| {
        b.iter(|| {
            let mut executed = 0;
            for i in 0..CAMPAIGNS {
                let s = spec(&format!("user{i}"), "bench", i as u64);
                let workflow = s
                    .build_workflow(etcd_host_factory(), Default::default())
                    .unwrap();
                let filter = PlanFilter {
                    modules: s.filter.modules.clone(),
                    scopes: vec![],
                    specs: vec![],
                    sample: s.filter.sample,
                };
                let outcome = workflow.run_campaign(&filter, false).unwrap();
                executed += outcome.results.len();
            }
            assert_eq!(executed, CAMPAIGNS * SAMPLE);
            black_box(executed)
        });
    });

    // Cache effect: one engine, resubmitting the same target — parse,
    // scan, and mutants all come from the cross-campaign cache.
    group.bench_function("engine_warm_cache_resubmit", |b| {
        let mut engine = CampaignEngine::new(EngineConfig::default(), registry()).unwrap();
        // Warm the cache once.
        engine.submit(spec("warmup", "bench", 0)).unwrap();
        engine.drive(None).unwrap();
        let mut round = 0u64;
        b.iter(|| {
            round += 1;
            engine.submit(spec("steady", "bench", round)).unwrap();
            let summary = engine.drive(None).unwrap();
            black_box(summary.experiments)
        });
        let stats = engine.cache_stats();
        assert_eq!(stats.scan_misses, 1, "resubmissions must never re-scan");
        eprintln!(
            "cache after warm resubmits: {} scan hits / {} misses, {} mutant hits / {} misses",
            stats.scan_hits, stats.scan_misses, stats.mutant_hits, stats.mutant_misses
        );
    });
    group.finish();
}

criterion_group!(benches, bench_scheduler_throughput);
criterion_main!(benches);
