//! P-1 (§V-D): scan + mutate latency on the python-etcd-sized target.
//!
//! Paper: "It took less than one minute to scan and mutate Python-etcd
//! on an 8-core Intel Xeon." Our target is the same order of size; the
//! bench verifies scan+mutate completes orders of magnitude inside
//! that budget and reports throughput.
//!
//! Also benches the DESIGN.md §8 ablation: direct vs trigger-wrapped
//! (EDFI-style) mutation cost.

use criterion::{criterion_group, criterion_main, Criterion};
use injector::{MutationMode, Mutator, Scanner};
use std::hint::black_box;

fn bench_scan_perf(c: &mut Criterion) {
    let model = faultdsl::predefined_models();
    let specs = model.compile().expect("predefined model compiles");
    let module = pysrc::parse_module(targets::CLIENT_SOURCE, "etcd").expect("client parses");
    let modules = vec![module.clone()];

    let scanner = Scanner::new(specs.clone());
    let points = scanner.scan(&modules);
    eprintln!(
        "P-1: python-etcd-like target: {} LoC, {} predefined specs, {} injection points",
        targets::CLIENT_SOURCE.lines().count(),
        specs.len(),
        points.len()
    );

    c.bench_function("scan_python_etcd_predefined_model", |b| {
        b.iter(|| black_box(scanner.scan(black_box(&modules))));
    });

    // Mutate every point (the paper's "scan and mutate" combination).
    let mut group = c.benchmark_group("mutate_all_points");
    for (mode, label) in [
        (MutationMode::Direct, "direct"),
        (MutationMode::Triggered, "triggered_edfi"),
    ] {
        let mutator = Mutator::new(mode);
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut produced = 0usize;
                for p in &points {
                    let spec = scanner.spec(&p.spec_name).expect("spec exists");
                    if let Ok(m) = mutator.apply(&module, spec, p) {
                        produced += pysrc::unparse::unparse_module(&m).len();
                    }
                }
                black_box(produced)
            });
        });
    }
    group.finish();

    // DSL compilation itself (the "DSL compiler" box of Fig. 2).
    c.bench_function("compile_predefined_fault_model", |b| {
        b.iter(|| black_box(model.compile().expect("compiles")));
    });
}

criterion_group!(benches, bench_scan_perf);
criterion_main!(benches);
