//! P-4 (§IV-B / §V-D): parallel experiment execution.
//!
//! Paper: experiments run in up to N−1 parallel containers on an
//! N-core host (following "No PAIN, no gain?" [52]), backing off under
//! memory/IO pressure; the scan itself is "embarrassingly parallel".
//!
//! The bench measures campaign throughput at several worker counts —
//! the shape to reproduce is near-linear speedup up to the N−1 cap —
//! plus the DESIGN.md §8 ablation of the memory back-off threshold.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use profipy::case_study::campaign_c;
use sandbox::ParallelExecutor;
use std::hint::black_box;

fn bench_parallel_speedup(c: &mut Criterion) {
    let campaign = campaign_c();
    let points = campaign.workflow.scan();
    let plan = campaign
        .workflow
        .plan(&points, &campaign.filter.clone().sample(16));
    let entries = plan.entries.clone();
    eprintln!("P-4: {} experiments per batch", entries.len());

    let mut group = c.benchmark_group("campaign_batch");
    group.sample_size(10);
    for cores in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("cores", cores),
            &cores,
            |b, &cores| {
                let executor = ParallelExecutor::new(cores);
                b.iter(|| {
                    let results = executor.run(entries.len(), |i| {
                        campaign.workflow.run_experiment(&entries[i])
                    });
                    black_box(results.len())
                });
            },
        );
    }
    group.finish();

    // Ablation: memory back-off reduces effective workers.
    let mut constrained = ParallelExecutor::new(16);
    constrained.mem_mb_total = 1024;
    constrained.mem_mb_per_container = 512;
    eprintln!(
        "P-4 ablation: 16-core host, unconstrained workers = {}, with 1 GB memory cap = {}",
        ParallelExecutor::new(16).effective_workers(64),
        constrained.effective_workers(64)
    );
    let mut group = c.benchmark_group("memory_backoff_ablation");
    group.sample_size(10);
    for (label, executor) in [
        ("unconstrained", ParallelExecutor::new(16)),
        ("memory_capped", constrained),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let results = executor.run(entries.len(), |i| {
                    campaign.workflow.run_experiment(&entries[i])
                });
                black_box(results.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_speedup);
criterion_main!(benches);
