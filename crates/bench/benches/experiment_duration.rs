//! P-3 (§V-D): per-experiment duration.
//!
//! Paper: "It took between 10s and 120s (worst case of a 'hang'
//! failure) to run a single experiment on Python-etcd, and about 30
//! min to run all of the tests of this section."
//!
//! Our substrate runs on virtual time, so the *shape* to reproduce is:
//! ordinary experiments cluster at a short duration, hang/timeout
//! experiments are dominated by the round budget (the worst case), and
//! the total campaign cost is the sum. The bench prints the virtual
//! duration distribution per campaign and benchmarks wall-clock cost
//! of a representative experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use profipy::case_study::{campaign_a, campaign_b, campaign_c};
use std::hint::black_box;
use std::time::Instant;

fn summarize(name: &str, durations: &mut [f64]) {
    durations.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    if durations.is_empty() {
        return;
    }
    let total: f64 = durations.iter().sum();
    let p = |q: f64| durations[((durations.len() - 1) as f64 * q) as usize];
    eprintln!(
        "P-3 {name}: n={} min={:.2}s p50={:.2}s p90={:.2}s max={:.2}s total={:.1}s (virtual)",
        durations.len(),
        durations[0],
        p(0.5),
        p(0.9),
        durations[durations.len() - 1],
        total
    );
}

fn bench_experiment_duration(c: &mut Criterion) {
    // Campaigns are interpreter-bound (mutate + deploy + two workload
    // rounds per experiment), so per-experiment wall time tracks the
    // execution engine. Run every campaign under both engines; the
    // virtual-duration distribution must be identical (the engines are
    // bit-compatible) while wall time shows the bytecode speedup.
    for make_campaign in [campaign_a, campaign_b, campaign_c] {
        for (engine_name, engine) in [
            ("bytecode", pyrt::Engine::Bytecode),
            ("treewalk", pyrt::Engine::TreeWalk),
        ] {
            pyrt::set_default_engine(engine);
            let campaign = make_campaign();
            // Warmup run: fills the mutant/prepare/compile caches and
            // the process-level caches, so the measured runs reflect
            // steady-state per-experiment execution cost.
            campaign
                .workflow
                .run_campaign(&campaign.filter, campaign.prune_by_coverage)
                .expect("campaign warmup runs");
            // Best of three measured runs: a campaign run is a single
            // shot (no criterion sampling), so the minimum is the
            // noise-resistant statistic.
            let mut wall = std::time::Duration::MAX;
            let mut outcome = None;
            for _ in 0..3 {
                let wall_start = Instant::now();
                let o = campaign
                    .workflow
                    .run_campaign(&campaign.filter, campaign.prune_by_coverage)
                    .expect("campaign runs");
                wall = wall.min(wall_start.elapsed());
                outcome = Some(o);
            }
            let outcome = outcome.expect("three runs happened");
            let mut durations: Vec<f64> = outcome.results.iter().map(|r| r.duration).collect();
            summarize(&campaign.name, &mut durations);
            if !outcome.results.is_empty() {
                eprintln!(
                    "P-3 {} [{engine_name}]: interpreter wall time {:?} total, {:?} per \
                     experiment (n={})",
                    campaign.name,
                    wall,
                    wall / outcome.results.len() as u32,
                    outcome.results.len()
                );
            }
        }
    }
    pyrt::set_default_engine(pyrt::Engine::Bytecode);

    // Wall-clock cost of one experiment (deploy + 2 rounds + teardown).
    let campaign = campaign_b();
    let points = campaign.workflow.scan();
    let plan = campaign.workflow.plan(&points, &campaign.filter);
    let point = plan.entries[0].clone();
    c.bench_function("single_experiment_wall_clock", |b| {
        b.iter(|| black_box(campaign.workflow.run_experiment(&point)));
    });

    // The timeout worst case: a mutant that hangs burns the full fuel
    // budget (the paper's 120 s "hang" ceiling).
    let hang_model = faultdsl::FaultModel {
        name: "hang".into(),
        description: "replace a call with an infinite retry loop".into(),
        specs: vec![faultdsl::SpecSource {
            name: "HANG".into(),
            description: String::new(),
            dsl: concat!(
                "change {\n",
                "    $VAR#r = $CALL{name=urllib.request}($STRING{val=GET}, ...)\n",
                "} into {\n",
                "    $VAR#r = None\n",
                "    while True:\n",
                "        $VAR#r = None\n",
                "}"
            )
            .into(),
        }],
    };
    let wf = profipy::case_study::case_study_workflow(hang_model, 9);
    let points = wf.scan();
    assert!(!points.is_empty());
    let hang_point = points[0].clone();
    let result = wf.run_experiment(&hang_point);
    eprintln!(
        "P-3 hang worst case: round1={:?} virtual duration={:.1}s (round budget dominates)",
        result.round1.status, result.duration
    );
    let mut group = c.benchmark_group("hang_experiment");
    group.sample_size(10);
    group.bench_function("wall_clock", |b| {
        b.iter(|| black_box(wf.run_experiment(&hang_point)));
    });
    group.finish();
}

criterion_group!(benches, bench_experiment_duration);
criterion_main!(benches);
