//! Shared helpers for the benchmark harness (paper §V evaluation).

use faultdsl::{FaultModel, SpecSource};

/// Builds a ~120-pattern fault model for the §V-D large-project scan
/// (the paper uses "120 different DSL patterns" on OpenStack).
///
/// The model combines the predefined G-SWFIT-style specs with
/// name-specialized variants over the verb×noun API surface the
/// synthetic corpus generator emits.
pub fn large_pattern_model() -> FaultModel {
    let mut specs = faultdsl::predefined_models().specs;
    let verbs = ["create", "delete", "update", "attach", "detach", "sync"];
    let nouns = ["port", "server", "subnet", "snapshot", "flavor", "quota"];
    for verb in verbs {
        for noun in nouns {
            let name = format!("{verb}_{noun}");
            specs.push(SpecSource {
                name: format!("OMIT-{name}"),
                description: format!("omit calls to {name}"),
                dsl: format!(
                    "change {{\n    $CALL{{name=*{name}}}(...)\n}} into {{\n    pass\n}}"
                ),
            });
            specs.push(SpecSource {
                name: format!("EXC-{name}"),
                description: format!("raise at {name} call sites"),
                dsl: format!(
                    "change {{\n    $VAR#r = $CALL{{name=*.{verb}}}($VAR#i, $EXPR#s)\n}} into {{\n    raise RuntimeError('injected {noun} fault')\n}}"
                ),
            });
            specs.push(SpecSource {
                name: format!("HOG-{name}"),
                description: format!("hog after {name}"),
                dsl: format!(
                    "change {{\n    $VAR#r = $CALL#c{{name=*{name}}}(...)\n}} into {{\n    $VAR#r = $CALL#c(...)\n    $HOG\n}}"
                ),
            });
        }
    }
    FaultModel {
        name: "large-scan-model".into(),
        description: format!("{} patterns for the scan-scaling benchmark", specs.len()),
        specs,
    }
}

/// Counts lines of a corpus.
pub fn corpus_loc(corpus: &[(String, String)]) -> usize {
    corpus.iter().map(|(_, s)| s.lines().count()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_model_has_about_120_patterns() {
        let model = large_pattern_model();
        assert!(
            (110..=135).contains(&model.specs.len()),
            "got {}",
            model.specs.len()
        );
        model.compile().expect("every generated pattern compiles");
    }
}
