//! Property tests for the lease WAL: under any coordinator-shaped
//! event history, any byte truncation of the log, and any trailing
//! garbage, `LeaseLog::open` still loads; the recovered state equals an
//! independent line-by-line replay of the surviving bytes (so a
//! recovering coordinator requeues exactly the unresulted jobs the
//! surviving prefix granted); and no truncation can fabricate a state
//! where two leases hold the same job (never double-grants).

use cluster::LeaseLog;
use jsonlite::Value;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

type Leases = BTreeMap<String, Vec<(String, u64)>>;

fn temp_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "walog-props-{tag}-{}-{}.jsonl",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::SeqCst)
    ))
}

/// An independent oracle for the load rule: parse line by line, stop at
/// the first unparseable or malformed event — the valid prefix is the
/// truth. Deliberately re-implemented here (not calling into `walog`)
/// so the two can disagree.
fn replay(bytes: &[u8]) -> (u64, Leases) {
    let mut epoch = 0u64;
    let mut leases: Leases = BTreeMap::new();
    let Ok(text) = std::str::from_utf8(bytes) else {
        // The real loader reads the file as a string; invalid UTF-8
        // fails the read and recovers to the empty state.
        return (0, BTreeMap::new());
    };
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(v) = jsonlite::parse(line) else { break };
        let ev = v.get("ev").and_then(Value::as_str);
        let worker = || v.get("worker").and_then(Value::as_str);
        let jobs = |v: &Value| -> Option<Vec<(String, u64)>> {
            v.as_arr()?
                .iter()
                .map(|pair| {
                    let pair = pair.as_arr().filter(|p| p.len() == 2)?;
                    Some((pair[0].as_str()?.to_string(), pair[1].as_u64()?))
                })
                .collect()
        };
        match ev {
            Some("epoch") => match v.get("n").and_then(Value::as_u64) {
                Some(n) => epoch = n,
                None => break,
            },
            Some("grant") => match (worker(), v.get("jobs").and_then(&jobs)) {
                (Some(w), Some(j)) => {
                    leases.insert(w.to_string(), j);
                }
                _ => break,
            },
            Some("extend") => {
                if worker().is_none() {
                    break;
                }
            }
            Some("expire") | Some("supersede") => match worker() {
                Some(w) => {
                    leases.remove(w);
                }
                None => break,
            },
            Some("result") => match (
                v.get("campaign").and_then(Value::as_str),
                v.get("point").and_then(Value::as_u64),
            ) {
                (Some(c), Some(p)) => {
                    for j in leases.values_mut() {
                        j.retain(|(jc, jp)| !(jc == c && *jp == p));
                    }
                    leases.retain(|_, j| !j.is_empty());
                }
                _ => break,
            },
            Some("snapshot") => {
                let (Some(n), Some(entries)) = (
                    v.get("epoch").and_then(Value::as_u64),
                    v.get("leases").and_then(Value::as_arr),
                ) else {
                    break;
                };
                let mut snap: Leases = BTreeMap::new();
                let mut ok = true;
                for e in entries {
                    match (
                        e.get("worker").and_then(Value::as_str),
                        e.get("jobs").and_then(&jobs),
                    ) {
                        (Some(w), Some(j)) => {
                            snap.insert(w.to_string(), j);
                        }
                        _ => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    break;
                }
                epoch = n;
                leases = snap;
            }
            _ => break,
        }
    }
    (epoch, leases)
}

/// Drives a coordinator-shaped op sequence through a real `LeaseLog`,
/// mirroring the call discipline: a point is only granted while free
/// (never double-granted), supersede precedes a re-grant, results
/// retire points for good. Returns the mirror state the log should
/// recover to.
fn drive(log: &mut LeaseLog, ops: &[(u8, u8, u8)]) -> (u64, Leases) {
    const WORKERS: [&str; 3] = ["worker-000001", "worker-000002", "worker-000003"];
    let mut free: Vec<u64> = (0..16).collect();
    let mut epoch = 7u64;
    log.record_epoch(epoch).unwrap();
    for &(kind, wsel, psel) in ops {
        let worker = WORKERS[wsel as usize % WORKERS.len()];
        match kind % 5 {
            0 => {
                // Re-lease: supersede frees the old batch, the grant
                // takes fresh points.
                if let Some(old) = log.state().leases.get(worker).cloned() {
                    free.extend(old.iter().map(|(_, p)| *p));
                    log.record_supersede(worker).unwrap();
                }
                let n = (psel as usize % 3 + 1).min(free.len());
                let jobs: Vec<(String, u64)> = free
                    .drain(..n)
                    .map(|p| ("job-000001".to_string(), p))
                    .collect();
                if jobs.is_empty() {
                    continue;
                }
                log.record_grant(worker, &jobs).unwrap();
            }
            1 => {
                if let Some(old) = log.state().leases.get(worker).cloned() {
                    free.extend(old.iter().map(|(_, p)| *p));
                }
                log.record_expire(worker).unwrap();
            }
            2 => {
                // Result one of the worker's leased points: retired,
                // never back in the pool.
                let Some(&(_, point)) = log
                    .state()
                    .leases
                    .get(worker)
                    .and_then(|j| j.get(psel as usize % j.len().max(1)))
                else {
                    continue;
                };
                log.record_result("job-000001", point).unwrap();
            }
            3 => log.record_extend(worker).unwrap(),
            _ => {
                epoch += 1;
                log.record_epoch(epoch).unwrap();
            }
        }
    }
    (log.state().epoch, log.state().leases.clone())
}

fn assert_no_double_grant(leases: &Leases) {
    let mut seen = std::collections::BTreeSet::new();
    for (worker, jobs) in leases {
        for job in jobs {
            assert!(
                seen.insert(job.clone()),
                "job {job:?} held by two leases (one of them {worker})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_truncation_or_garbage_recovers_the_surviving_prefix(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..48),
        cut in any::<u16>(),
        garbage in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        let expected = {
            let mut log = LeaseLog::open(&path).unwrap();
            drive(&mut log, &ops)
        };
        let bytes = std::fs::read(&path).unwrap();

        // Round trip: reopening the intact log recovers the mirror
        // exactly, and the mirror never double-grants.
        {
            let log = LeaseLog::open(&path).unwrap();
            prop_assert_eq!(log.state().epoch, expected.0);
            prop_assert_eq!(&log.state().leases, &expected.1);
            assert_no_double_grant(&log.state().leases);
        }

        // Torn tail: cut the original event bytes anywhere. The
        // surviving prefix is a state some crash could have left, so
        // it must load, match the oracle replay, and still never hold
        // a job twice.
        let cut = cut as usize % (bytes.len() + 1);
        let torn = &bytes[..cut];
        let torn_path = temp_path("cut");
        std::fs::write(&torn_path, torn).unwrap();
        {
            let log = LeaseLog::open(&torn_path).unwrap();
            let (epoch, leases) = replay(torn);
            prop_assert_eq!(log.state().epoch, epoch);
            prop_assert_eq!(&log.state().leases, &leases);
            assert_no_double_grant(&log.state().leases);
        }

        // Crash garbage: arbitrary bytes after the cut. Still loads;
        // still agrees with the oracle on the exact same bytes.
        let mut garbled = torn.to_vec();
        garbled.extend_from_slice(&garbage);
        std::fs::write(&torn_path, &garbled).unwrap();
        {
            let log = LeaseLog::open(&torn_path).unwrap();
            let (epoch, leases) = replay(&garbled);
            prop_assert_eq!(log.state().epoch, epoch);
            prop_assert_eq!(&log.state().leases, &leases);
        }

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&torn_path);
    }
}
