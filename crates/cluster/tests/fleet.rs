//! The cluster acceptance test (the PR's hard invariant): a campaign
//! distributed over 3 workers — one killed mid-lease — completes with a
//! report **byte-identical** to the same campaign run single-node, and
//! the killed worker's jobs are each executed exactly once more
//! (requeue counter checked). Runs in CI as the cluster smoke step.

use campaign::{
    report_to_value, ApiConfig, CampaignService, CampaignSpec, EngineConfig, HostRegistry,
};
use cluster::{FleetConfig, FleetServer, WorkerAgent, WorkerConfig};
use std::time::{Duration, Instant};

const TARGET: &str = "def transfer(amount):
    checked = validate(amount)
    log_event()
    return checked

def validate(amount):
    if amount > 0:
        return amount
    return 0
";

const WORKLOAD: &str = "import target

def run(round):
    total = 0
    for i in range(3):
        total = total + target.transfer(i)
    return total
";

fn spec_for(user: &str, name: &str, seed: u64) -> CampaignSpec {
    let mut spec = CampaignSpec::new(
        user,
        name,
        "noop",
        vec![("target".into(), TARGET.into())],
        WORKLOAD.into(),
        faultdsl::predefined_models(),
    );
    spec.seed = seed;
    spec
}

fn service() -> CampaignService {
    CampaignService::new(EngineConfig::default(), HostRegistry::with_noop()).unwrap()
}

/// The reference bytes: the same spec run through the in-process
/// single-node service.
fn single_node_report(spec: CampaignSpec) -> String {
    let mut service = service();
    let id = service.submit(spec).unwrap();
    service.drive(None).unwrap();
    let report = service.engine().report(&id).expect("campaign completed");
    report_to_value(&report).pretty()
}

fn gauge(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("gauge {name} missing from:\n{metrics}"))
        .trim()
        .parse()
        .unwrap()
}

#[test]
fn distributed_campaign_with_killed_worker_is_byte_identical_to_single_node() {
    let spec = spec_for("fleet-user", "distributed", 1234);
    let reference = single_node_report(spec.clone());

    // Short lease so the killed worker's jobs requeue quickly; the
    // real agents heartbeat faster than that.
    let fleet_config = FleetConfig {
        lease_ttl: Duration::from_millis(600),
        heartbeat_interval: Duration::from_millis(150),
        tick_interval: Duration::from_millis(50),
        lease_batch_max: 16,
        ..FleetConfig::default()
    };
    let fleet = FleetServer::serve(
        "127.0.0.1:0",
        service(),
        ApiConfig::default(),
        fleet_config,
    )
    .unwrap();
    let addr = fleet.addr().to_string();

    // Submit the campaign over the wire.
    let mut client = httpd::Client::new(&addr);
    let resp = client
        .post_json("/api/campaigns", &spec.to_json())
        .unwrap();
    assert_eq!(resp.status, 201, "{}", resp.text());
    let id = jsonlite::parse(&resp.text())
        .unwrap()
        .req("id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();

    // Worker 3 — the victim — speaks the wire protocol directly:
    // register, lease a batch, then go silent mid-lease (killed).
    let killed_batch = {
        let resp = client
            .post_json("/api/workers/register", "{\"parallelism\": 2}")
            .unwrap();
        assert_eq!(resp.status, 201, "{}", resp.text());
        let worker_id = jsonlite::parse(&resp.text())
            .unwrap()
            .req("id")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        let resp = client
            .post_json(
                &format!("/api/workers/{worker_id}/lease"),
                "{\"max_jobs\": 4, \"known\": []}",
            )
            .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        let lease = jsonlite::parse(&resp.text()).unwrap();
        let jobs = lease.req("jobs").unwrap().as_arr().unwrap().len();
        assert!(jobs > 0, "victim leased jobs before dying");
        // The spec came along for the ride.
        assert_eq!(lease.req("campaigns").unwrap().as_arr().unwrap().len(), 1);
        jobs as u64
        // …and the victim never heartbeats, executes, or uploads again.
    };

    // Workers 1 and 2: real agents that do the actual work.
    let registry = || HostRegistry::with_noop();
    let agent_config = |parallelism| WorkerConfig {
        parallelism,
        ..WorkerConfig::new(addr.clone())
    };
    let w1 = WorkerAgent::start(agent_config(2), registry()).unwrap();
    let w2 = WorkerAgent::start(agent_config(1), registry()).unwrap();

    // Poll the ordinary status endpoint until the campaign completes.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let status = client.get(&format!("/api/campaigns/{id}")).unwrap();
        assert_eq!(status.status, 200);
        let v = jsonlite::parse(&status.text()).unwrap();
        match v.req("state").unwrap().as_str().unwrap() {
            "completed" => break,
            "failed" => panic!("campaign failed: {}", status.text()),
            state => assert!(
                Instant::now() < deadline,
                "campaign stuck in state {state}"
            ),
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    // THE invariant: the distributed report — with a worker killed
    // mid-lease — is byte-identical to the single-node run.
    let report = client
        .get(&format!("/api/campaigns/{id}/report"))
        .unwrap();
    assert_eq!(report.status, 200);
    assert_eq!(
        report.text(),
        reference,
        "distributed report diverged from the single-node run"
    );

    // The killed worker's jobs were requeued exactly once each and
    // nothing was double-recorded.
    let metrics = client.get("/metrics").unwrap().text();
    assert_eq!(
        gauge(&metrics, "profipy_fleet_jobs_requeued_total"),
        killed_batch,
        "each killed job requeued exactly once\n{metrics}"
    );
    assert_eq!(
        gauge(&metrics, "profipy_fleet_results_duplicate_total"),
        0,
        "no experiment was recorded twice\n{metrics}"
    );
    assert_eq!(gauge(&metrics, "profipy_fleet_workers_registered"), 3);
    assert_eq!(gauge(&metrics, "profipy_fleet_leases_expired_total"), 1);
    assert_eq!(gauge(&metrics, "profipy_fleet_campaigns_completed_total"), 1);
    // Fleet mode runs no local drive: the drive thread does not exist.
    assert_eq!(gauge(&metrics, "profipy_drive_calls_total"), 0);

    let s1 = w1.stop();
    let s2 = w2.stop();
    assert!(
        s1.executed + s2.executed > 0,
        "agents executed the campaign: {s1:?} {s2:?}"
    );

    // Graceful shutdown hands the service back with the report
    // delivered into the session.
    let service = fleet.shutdown();
    assert_eq!(
        service.sessions.report_names("fleet-user"),
        vec!["distributed".to_string()]
    );
}

#[test]
fn two_agents_split_many_campaigns() {
    // The scale-out sanity check: several campaigns from different
    // users distributed across two agents, every report byte-identical
    // to its single-node twin.
    let users = ["ana", "ben", "cho"];
    let references: Vec<String> = users
        .iter()
        .map(|u| single_node_report(spec_for(u, &format!("{u}-fleet"), 7)))
        .collect();

    let fleet = FleetServer::serve(
        "127.0.0.1:0",
        service(),
        ApiConfig::default(),
        FleetConfig {
            lease_ttl: Duration::from_secs(5),
            heartbeat_interval: Duration::from_millis(200),
            tick_interval: Duration::from_millis(100),
            ..FleetConfig::default()
        },
    )
    .unwrap();
    let addr = fleet.addr().to_string();
    let mut client = httpd::Client::new(&addr);
    let ids: Vec<String> = users
        .iter()
        .map(|u| {
            let resp = client
                .post_json(
                    "/api/campaigns",
                    &spec_for(u, &format!("{u}-fleet"), 7).to_json(),
                )
                .unwrap();
            assert_eq!(resp.status, 201);
            jsonlite::parse(&resp.text())
                .unwrap()
                .req("id")
                .unwrap()
                .as_str()
                .unwrap()
                .to_string()
        })
        .collect();

    let w1 = WorkerAgent::start(WorkerConfig::new(addr.clone()), HostRegistry::with_noop())
        .unwrap();
    let w2 = WorkerAgent::start(WorkerConfig::new(addr.clone()), HostRegistry::with_noop())
        .unwrap();

    let deadline = Instant::now() + Duration::from_secs(120);
    for id in &ids {
        loop {
            let status = client.get(&format!("/api/campaigns/{id}")).unwrap();
            let v = jsonlite::parse(&status.text()).unwrap();
            match v.req("state").unwrap().as_str().unwrap() {
                "completed" => break,
                "failed" => panic!("campaign {id} failed: {}", status.text()),
                _ => assert!(Instant::now() < deadline, "campaign {id} stuck"),
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    for (id, reference) in ids.iter().zip(&references) {
        let report = client.get(&format!("/api/campaigns/{id}/report")).unwrap();
        assert_eq!(report.status, 200);
        assert_eq!(&report.text(), reference, "report {id} diverged");
    }
    let (s1, s2) = (w1.stop(), w2.stop());
    assert!(s1.executed > 0, "both agents worked: {s1:?}");
    assert!(s2.executed > 0, "both agents worked: {s2:?}");
    fleet.shutdown();
}

#[test]
fn unregistered_worker_gets_404_and_connection_stays_reusable() {
    let fleet = FleetServer::serve(
        "127.0.0.1:0",
        service(),
        ApiConfig::default(),
        FleetConfig::default(),
    )
    .unwrap();
    let addr = fleet.addr().to_string();
    let mut client = httpd::Client::new(&addr);

    // Lease, heartbeat, and results from a never-registered id: 404,
    // keep-alive (no Connection: close).
    let resp = client
        .post_json("/api/workers/worker-424242/lease", "{\"max_jobs\": 1}")
        .unwrap();
    assert_eq!(resp.status, 404, "{}", resp.text());
    assert_eq!(resp.header("connection"), None);
    let resp = client
        .post_json("/api/workers/worker-424242/heartbeat", "{}")
        .unwrap();
    assert_eq!(resp.status, 404);
    let resp = client
        .post_json("/api/workers/worker-424242/results", "{\"results\": []}")
        .unwrap();
    assert_eq!(resp.status, 404);
    // Malformed JSON on a fleet route: 400, still keep-alive.
    let resp = client
        .post_json("/api/workers/register", "{oops")
        .unwrap();
    assert_eq!(resp.status, 400);
    assert_eq!(resp.header("connection"), None);

    // The same client connection keeps working — those were responses,
    // not teardowns — and the fleet gauges are live.
    assert_eq!(client.get("/healthz").unwrap().status, 200);
    let metrics = client.get("/metrics").unwrap().text();
    for gauge_name in [
        "profipy_fleet_workers_registered 0",
        "profipy_fleet_workers_live 0",
        "profipy_fleet_jobs_leased 0",
        "profipy_fleet_jobs_requeued_total 0",
    ] {
        assert!(metrics.contains(gauge_name), "{gauge_name}\n{metrics}");
    }
    // A registration shows up in the gauges, with a heartbeat-age
    // sample for the worker.
    let resp = client
        .post_json("/api/workers/register", "{\"parallelism\": 3}")
        .unwrap();
    assert_eq!(resp.status, 201);
    let metrics = client.get("/metrics").unwrap().text();
    assert!(metrics.contains("profipy_fleet_workers_registered 1"), "{metrics}");
    assert!(metrics.contains("profipy_fleet_workers_live 1"), "{metrics}");
    assert!(
        metrics.contains("fleet_worker_heartbeat_age_ms{worker=\"worker-000001\"}"),
        "{metrics}"
    );
    assert!(
        metrics.contains("fleet_worker_parallelism{worker=\"worker-000001\"} 3"),
        "{metrics}"
    );
    fleet.shutdown();
}

#[test]
fn fleet_report_matches_wire_format_of_api_module() {
    // The /api/campaigns/:id/report payload in fleet mode goes through
    // report_to_value, same as single-node mode — guard the codec
    // linkage (a fleet-only serialization fork would silently break
    // the byte-identity contract).
    let spec = spec_for("codec", "codec-check", 9);
    let reference = single_node_report(spec.clone());
    let parsed = jsonlite::parse(&reference).unwrap();
    assert!(parsed.req("executed").unwrap().as_u64().unwrap() > 0);
    assert_eq!(
        parsed.req("name").unwrap().as_str(),
        Some("codec-check"),
        "report codec shape"
    );
    // And the reference itself is stable across runs (determinism of
    // the single-node path, the baseline the fleet is compared to).
    assert_eq!(reference, single_node_report(spec));
}

#[test]
fn agent_survives_idle_fleet_and_stops_cleanly() {
    // An agent on an empty queue must idle at its backoff ceiling (not
    // spin), then stop promptly and report zero executions.
    let fleet = FleetServer::serve(
        "127.0.0.1:0",
        service(),
        ApiConfig::default(),
        FleetConfig::default(),
    )
    .unwrap();
    let addr = fleet.addr().to_string();
    let agent = WorkerAgent::start(WorkerConfig::new(addr), HostRegistry::with_noop()).unwrap();
    assert!(agent.id().starts_with("worker-"));
    std::thread::sleep(Duration::from_millis(300));
    let t0 = Instant::now();
    let stats = agent.stop();
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "stop() joined promptly"
    );
    assert_eq!(stats.executed, 0);
    assert!(stats.leases > 0, "agent was polling: {stats:?}");
    assert_eq!(stats.leases, stats.empty_leases, "{stats:?}");
    fleet.shutdown();
}
