//! The HA acceptance tests (the PR's hard invariant): a campaign
//! distributed over several workers survives the **coordinator** being
//! killed mid-lease — the warm standby takes over within one lease
//! period, late uploads stamped with the dead epoch are absorbed
//! idempotently, the orphaned batch (and only it) is requeued, and the
//! final report is **byte-identical** to the single-node run. Runs in
//! CI as the ha-smoke step.
//!
//! The restart-recovery and pruning tests drive the same machinery
//! deterministically through the `_at(now)` forms — no sleeps.

use campaign::{
    report_to_value, ApiConfig, CampaignService, CampaignSpec, EngineConfig, HostRegistry,
    SharedService,
};
use cluster::{
    wire, Coordinator, FleetConfig, FleetError, FleetServer, StandbyConfig, StandbyServer,
    WorkerAgent, WorkerConfig,
};
use jsonlite::Value;
use profipy::ExperimentResult;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const TARGET: &str = "def transfer(amount):
    checked = validate(amount)
    log_event()
    return checked

def validate(amount):
    if amount > 0:
        return amount
    return 0
";

const WORKLOAD: &str = "import target

def run(round):
    total = 0
    for i in range(3):
        total = total + target.transfer(i)
    return total
";

fn spec_for(user: &str, name: &str, seed: u64) -> CampaignSpec {
    let mut spec = CampaignSpec::new(
        user,
        name,
        "noop",
        vec![("target".into(), TARGET.into())],
        WORKLOAD.into(),
        faultdsl::predefined_models(),
    );
    spec.seed = seed;
    spec
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cluster-ha-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn disk_service(dir: &std::path::Path) -> CampaignService {
    let config = EngineConfig {
        data_dir: Some(dir.to_path_buf()),
        executor: Default::default(),
    };
    CampaignService::new(config, HostRegistry::with_noop()).unwrap()
}

/// The reference bytes: the same spec run through the in-process
/// single-node service.
fn single_node_report(spec: CampaignSpec) -> String {
    let mut service =
        CampaignService::new(EngineConfig::default(), HostRegistry::with_noop()).unwrap();
    let id = service.submit(spec).unwrap();
    service.drive(None).unwrap();
    let report = service.engine().report(&id).expect("campaign completed");
    report_to_value(&report).pretty()
}

fn gauge(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("gauge {name} missing from:\n{metrics}"))
        .trim()
        .parse()
        .unwrap()
}

fn parse_id(body: &str) -> String {
    jsonlite::parse(body)
        .unwrap()
        .req("id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string()
}

#[test]
fn standby_takes_over_mid_lease_and_the_report_is_byte_identical() {
    let spec = spec_for("ha-user", "ha-failover", 1234);
    let reference = single_node_report(spec.clone());

    let primary_dir = temp_dir("primary");
    let standby_dir = temp_dir("standby");
    let lease_ttl = Duration::from_secs(4);
    let fleet_config = FleetConfig {
        lease_ttl,
        heartbeat_interval: Duration::from_millis(500),
        tick_interval: Duration::from_millis(50),
        lease_batch_max: 64,
        data_dir: Some(primary_dir.clone()),
        ..FleetConfig::default()
    };
    let primary = FleetServer::serve(
        "127.0.0.1:0",
        disk_service(&primary_dir),
        ApiConfig::default(),
        fleet_config.clone(),
    )
    .unwrap();
    let primary_addr = primary.addr().to_string();
    let mut client = httpd::Client::new(&primary_addr);

    // A fresh primary is epoch 1.
    let status = client.get("/api/fleet/status").unwrap();
    assert_eq!(status.status, 200, "{}", status.text());
    let status = jsonlite::parse(&status.text()).unwrap();
    assert_eq!(status.req("role").unwrap().as_str(), Some("primary"));
    assert_eq!(status.req("epoch").unwrap().as_u64(), Some(1));

    // Submit the campaign over the wire.
    let resp = client.post_json("/api/campaigns", &spec.to_json()).unwrap();
    assert_eq!(resp.status, 201, "{}", resp.text());
    let id = parse_id(&resp.text());

    // The victim: leases a batch, then goes silent forever. Its jobs
    // are the orphaned batch the takeover must requeue exactly once.
    let resp = client
        .post_json("/api/workers/register", "{\"parallelism\": 2}")
        .unwrap();
    assert_eq!(resp.status, 201, "{}", resp.text());
    let victim_id = parse_id(&resp.text());
    let resp = client
        .post_json(
            &format!("/api/workers/{victim_id}/lease"),
            "{\"max_jobs\": 4, \"known\": []}",
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let victim_n = jsonlite::parse(&resp.text())
        .unwrap()
        .req("jobs")
        .unwrap()
        .as_arr()
        .unwrap()
        .len() as u64;
    assert!(victim_n > 0, "victim leased jobs before dying");

    // The late uploader: leases every remaining job under epoch 1, but
    // will only upload *after* the takeover — stamped with the dead
    // epoch.
    let resp = client
        .post_json("/api/workers/register", "{\"parallelism\": 4}")
        .unwrap();
    assert_eq!(resp.status, 201, "{}", resp.text());
    let uploader_id = parse_id(&resp.text());
    let resp = client
        .post_json(
            &format!("/api/workers/{uploader_id}/lease"),
            "{\"max_jobs\": 64, \"known\": []}",
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let uploader_lease = wire::lease_from_value(&jsonlite::parse(&resp.text()).unwrap()).unwrap();
    assert_eq!(uploader_lease.epoch, 1, "leased under the first epoch");
    let uploader_n = uploader_lease.jobs.len() as u64;
    assert!(uploader_n > 0, "uploader leased the rest of the campaign");
    let (wire_cid, wire_spec) = uploader_lease
        .new_campaigns
        .into_iter()
        .next()
        .expect("spec shipped with the lease");
    assert_eq!(wire_cid, id);

    // Every job is now leased, so the live agents idle until the
    // takeover requeues the victim's batch — which makes the kill
    // moment deterministic: no upload can race it.
    let agent_config = || {
        WorkerConfig {
            parallelism: 2,
            ..WorkerConfig::new(primary_addr.clone())
        }
    };
    let standby = StandbyServer::start(
        {
            let mut cfg = StandbyConfig::new(primary_addr.clone(), standby_dir.clone());
            cfg.probe_interval = Duration::from_millis(150);
            cfg.probe_misses = 2;
            cfg.fleet = FleetConfig {
                data_dir: None, // the standby substitutes its replica dir
                ..fleet_config.clone()
            };
            cfg
        },
        HostRegistry::with_noop(),
    )
    .unwrap();
    let standby_addr = standby.addr().to_string();
    let w1 = WorkerAgent::start(
        agent_config().with_standby(standby_addr.clone()),
        HostRegistry::with_noop(),
    )
    .unwrap();
    let w2 = WorkerAgent::start(
        agent_config().with_standby(standby_addr.clone()),
        HostRegistry::with_noop(),
    )
    .unwrap();

    // Let the standby replicate the leased state (two full cycles past
    // the last mutation), keep the victim's lease fresh, then kill the
    // primary — no drain, exactly as a crash would.
    let synced_at = standby.sync_cycles();
    let deadline = Instant::now() + Duration::from_secs(30);
    while standby.sync_cycles() < synced_at + 2 {
        assert!(Instant::now() < deadline, "standby never synced");
        std::thread::sleep(Duration::from_millis(20));
    }
    let resp = client
        .post_json(&format!("/api/workers/{victim_id}/heartbeat"), "{}")
        .unwrap();
    assert_eq!(resp.status, 200);
    let killed_at = Instant::now();
    primary.kill();

    // Takeover within one lease period.
    assert!(
        standby.wait_promoted(lease_ttl),
        "standby did not promote within a lease period"
    );
    let takeover = killed_at.elapsed();
    assert!(
        takeover < lease_ttl,
        "takeover took {takeover:?}, lease period is {lease_ttl:?}"
    );

    // Execute the uploader's batch exactly as a worker would: rebuild
    // the workflow from the wire spec, rebind the portable points.
    let host = HostRegistry::with_noop().get(&wire_spec.host).unwrap();
    let workflow = wire_spec.build_workflow(host, Default::default()).unwrap();
    let results: Vec<(String, ExperimentResult)> = uploader_lease
        .jobs
        .iter()
        .map(|job| {
            let point = wire::rebind_point(&job.point, workflow.modules()).unwrap();
            (
                job.campaign.clone(),
                workflow.run_experiment_with_sources(&point, &job.sources),
            )
        })
        .collect();

    // The promoted standby serves as primary, epoch 2.
    let mut client = httpd::Client::new(&standby_addr);
    let status = client.get("/api/fleet/status").unwrap();
    assert_eq!(status.status, 200, "{}", status.text());
    let status = jsonlite::parse(&status.text()).unwrap();
    assert_eq!(status.req("role").unwrap().as_str(), Some("primary"));
    assert_eq!(status.req("epoch").unwrap().as_u64(), Some(2));

    // The late upload, stamped with the dead epoch: absorbed, not
    // rejected — every result accepted, none duplicated.
    let body = Value::obj(vec![
        (
            "results",
            wire::results_to_value(&results).req("results").unwrap().clone(),
        ),
        ("epoch", Value::UInt(1)),
    ])
    .compact();
    let resp = client
        .post_json(&format!("/api/workers/{uploader_id}/results"), &body)
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let summary = jsonlite::parse(&resp.text()).unwrap();
    assert_eq!(summary.req("accepted").unwrap().as_u64(), Some(uploader_n));
    assert_eq!(summary.req("duplicates").unwrap().as_u64(), Some(0));

    // The victim's re-armed lease expires on the standby; the agents —
    // failed over by now — execute the requeued batch to completion.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let status = client.get(&format!("/api/campaigns/{id}")).unwrap();
        assert_eq!(status.status, 200);
        let v = jsonlite::parse(&status.text()).unwrap();
        match v.req("state").unwrap().as_str().unwrap() {
            "completed" => break,
            "failed" => panic!("campaign failed: {}", status.text()),
            state => assert!(Instant::now() < deadline, "campaign stuck in state {state}"),
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    // THE invariant: the report survives the coordinator's death
    // byte-for-byte.
    let report = client.get(&format!("/api/campaigns/{id}/report")).unwrap();
    assert_eq!(report.status, 200);
    assert_eq!(
        report.text(),
        reference,
        "post-takeover report diverged from the single-node run"
    );

    // Requeues are exactly the orphaned batch; the dead-epoch upload
    // was absorbed without a single duplicate.
    let metrics = client.get("/metrics").unwrap().text();
    assert_eq!(gauge(&metrics, "profipy_fleet_epoch"), 2);
    assert_eq!(
        gauge(&metrics, "profipy_fleet_jobs_requeued_total"),
        victim_n,
        "each orphaned job requeued exactly once\n{metrics}"
    );
    assert_eq!(gauge(&metrics, "profipy_fleet_results_duplicate_total"), 0);
    assert_eq!(
        gauge(&metrics, "profipy_fleet_results_old_epoch_total"),
        uploader_n
    );
    assert_eq!(gauge(&metrics, "profipy_fleet_leases_recovered_total"), 2);
    assert_eq!(
        gauge(&metrics, "profipy_fleet_jobs_recovered_total"),
        victim_n + uploader_n
    );
    // The registry was replicated: the standby knows all four workers.
    assert_eq!(gauge(&metrics, "profipy_fleet_workers_registered"), 4);
    assert_eq!(gauge(&metrics, "fleet_takeovers_total"), 1);

    // The agents crossed the failover: they rotated coordinators and
    // executed exactly the orphaned batch.
    let (s1, s2) = (w1.stop(), w2.stop());
    assert_eq!(
        s1.executed + s2.executed,
        victim_n,
        "agents executed exactly the requeued jobs: {s1:?} {s2:?}"
    );
    assert!(
        s1.reconnects + s2.reconnects > 0,
        "agents failed over to the standby: {s1:?} {s2:?}"
    );

    // Graceful shutdown of the promoted standby hands the service back
    // with the report delivered into the session.
    let service = standby.shutdown().expect("standby was promoted");
    assert_eq!(
        service.sessions.report_names("ha-user"),
        vec!["ha-failover".to_string()]
    );
    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&standby_dir);
}

/// Executes a leased job locally, exactly as a worker agent would.
fn execute(job: &cluster::LeasedJob, spec: &CampaignSpec) -> ExperimentResult {
    let host = HostRegistry::with_noop().get(&spec.host).unwrap();
    let workflow = spec.build_workflow(host, Default::default()).unwrap();
    workflow.run_experiment_with_sources(&job.point, &job.sources)
}

#[test]
fn restart_recovery_requeues_exactly_the_unresulted_jobs() {
    // The same crash-recovery path the standby takes, driven with
    // synthetic clocks: a coordinator dies mid-lease with part of the
    // batch resulted; its successor replays the WAL, grants the lease
    // one fresh TTL, then requeues exactly the unresulted jobs.
    let dir = temp_dir("restart");
    let spec = spec_for("crash-user", "crash-recovery", 77);
    let reference = single_node_report(spec.clone());
    let config = FleetConfig {
        lease_ttl: Duration::from_millis(500),
        lease_batch_max: 64,
        data_dir: Some(dir.clone()),
        ..FleetConfig::default()
    };

    let (worker, id, leased, done_results): (String, String, Vec<u64>, usize);
    {
        let shared = SharedService::new(disk_service(&dir));
        let coordinator = Coordinator::new(shared.clone(), config.clone()).unwrap();
        assert_eq!(coordinator.epoch(), 1);
        id = shared.lock().submit(spec.clone()).unwrap();
        worker = coordinator.register(2).unwrap();
        let t0 = Instant::now();
        let grant = coordinator
            .lease_at(&worker, 64, &BTreeSet::new(), t0)
            .unwrap();
        assert!(grant.jobs.len() >= 3, "campaign large enough to matter");
        assert_eq!(grant.epoch, 1);
        leased = grant.jobs.iter().map(|j| j.point.id).collect();
        // Two jobs complete and upload; the rest are in flight when the
        // coordinator "crashes" (dropped without drain).
        let results: Vec<(String, ExperimentResult)> = grant.jobs[..2]
            .iter()
            .map(|job| (job.campaign.clone(), execute(job, &spec)))
            .collect();
        done_results = results.len();
        let summary = coordinator
            .report_results_at(&worker, results, t0)
            .unwrap();
        assert_eq!(summary.accepted as usize, done_results);
    }

    // The successor: next epoch, WAL replayed, lease re-armed with one
    // fresh TTL from the instant of recovery.
    let shared = SharedService::new(disk_service(&dir));
    let coordinator = Coordinator::new(shared.clone(), config).unwrap();
    assert_eq!(coordinator.epoch(), 2);
    let t1 = Instant::now();
    let summary = coordinator.recover_at(t1).unwrap();
    assert_eq!(summary.leases, 1);
    assert_eq!(summary.jobs, leased.len() - done_results);

    // Within the grace TTL nothing expires; past it, exactly the
    // unresulted jobs requeue — once.
    assert_eq!(coordinator.tick_at(t1 + Duration::from_millis(400)), 0);
    assert_eq!(
        coordinator.tick_at(t1 + Duration::from_millis(600)),
        leased.len() - done_results
    );
    assert_eq!(coordinator.tick_at(t1 + Duration::from_millis(700)), 0);

    // The worker id survived (registry log); a re-lease hands back
    // exactly the unresulted set.
    let grant = coordinator
        .lease_at(
            &worker,
            64,
            &[id.clone()].into_iter().collect(),
            t1 + Duration::from_millis(700),
        )
        .unwrap();
    assert_eq!(grant.epoch, 2);
    let mut regranted: Vec<u64> = grant.jobs.iter().map(|j| j.point.id).collect();
    regranted.sort_unstable();
    let mut expected: Vec<u64> = leased[done_results..].to_vec();
    expected.sort_unstable();
    assert_eq!(regranted, expected, "exactly the unresulted jobs");

    // A late duplicate of the old epoch's upload: absorbed, counted,
    // not double-recorded.
    let results: Vec<(String, ExperimentResult)> = grant.jobs[..1]
        .iter()
        .map(|job| (job.campaign.clone(), execute(job, &spec)))
        .collect();
    let dup = results.clone();
    let summary = coordinator
        .report_results_stamped_at(&worker, Some(1), results, t1 + Duration::from_millis(800))
        .unwrap();
    assert_eq!(summary.accepted, 1);
    let summary = coordinator
        .report_results_stamped_at(&worker, Some(1), dup, t1 + Duration::from_millis(900))
        .unwrap();
    assert_eq!(summary.accepted, 0);
    assert_eq!(summary.duplicates, 1);
    let mut metrics = Vec::new();
    coordinator.append_metrics_at(&mut metrics, t1 + Duration::from_millis(900));
    let find = |name: &str| {
        metrics
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("{name} missing"))
            .1
    };
    assert_eq!(find("fleet_results_old_epoch_total"), 2);
    assert_eq!(find("fleet_epoch"), 2);
    assert_eq!(find("fleet_jobs_recovered_total"), (leased.len() - done_results) as u64);

    // Finish the campaign; the report is byte-identical to the
    // single-node run despite the crash, recovery, and duplicates.
    let rest: Vec<(String, ExperimentResult)> = grant.jobs[1..]
        .iter()
        .map(|job| (job.campaign.clone(), execute(job, &spec)))
        .collect();
    let summary = coordinator
        .report_results_at(&worker, rest, t1 + Duration::from_secs(1))
        .unwrap();
    assert_eq!(summary.completed, vec![id.clone()]);
    let report = shared.lock().engine().report(&id).unwrap();
    assert_eq!(report_to_value(&report).pretty(), reference);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_workers_are_pruned_from_registry_and_gauges() {
    // A worker that stops contacting the fleet past the retention
    // window — holding no lease — is dropped from the registry and its
    // per-worker gauge labels disappear; a restart does not resurrect
    // it, and its id is never reissued.
    let dir = temp_dir("prune");
    let config = FleetConfig {
        lease_ttl: Duration::from_millis(500),
        worker_retention: Duration::from_secs(5),
        data_dir: Some(dir.clone()),
        ..FleetConfig::default()
    };
    let shared = SharedService::new(disk_service(&dir));
    let coordinator = Coordinator::new(shared.clone(), config.clone()).unwrap();
    let keeper = coordinator.register(1).unwrap();
    let ghost = coordinator.register(3).unwrap();
    let t0 = Instant::now();
    coordinator.heartbeat_at(&keeper, t0).unwrap();
    coordinator.heartbeat_at(&ghost, t0).unwrap();

    // Inside the retention window both workers are tracked.
    let mut metrics = Vec::new();
    coordinator.append_metrics_at(&mut metrics, t0 + Duration::from_secs(4));
    assert!(metrics
        .iter()
        .any(|(n, _)| n.contains(&format!("worker=\"{ghost}\""))));
    coordinator.tick_at(t0 + Duration::from_secs(4));
    assert!(coordinator.heartbeat_at(&keeper, t0 + Duration::from_secs(4)).is_ok());

    // Past it, the silent worker is pruned; the live one stays.
    coordinator.tick_at(t0 + Duration::from_secs(6));
    let mut metrics = Vec::new();
    coordinator.append_metrics_at(&mut metrics, t0 + Duration::from_secs(6));
    let find = |name: &str| metrics.iter().find(|(n, _)| n == name).unwrap().1;
    assert_eq!(find("fleet_workers_registered"), 1);
    assert_eq!(find("fleet_workers_pruned_total"), 1);
    assert!(
        !metrics
            .iter()
            .any(|(n, _)| n.contains(&format!("worker=\"{ghost}\""))),
        "pruned worker's gauge labels dropped: {metrics:?}"
    );
    assert!(matches!(
        coordinator.heartbeat(&ghost),
        Err(FleetError::UnknownWorker(_))
    ));

    // The prune is durable: a restarted coordinator loads only the
    // live worker, and new registrations never reuse the pruned id.
    drop(coordinator);
    let coordinator = Coordinator::new(SharedService::new(disk_service(&dir)), config).unwrap();
    assert!(coordinator.heartbeat(&keeper).is_ok());
    assert!(matches!(
        coordinator.heartbeat(&ghost),
        Err(FleetError::UnknownWorker(_))
    ));
    let fresh = coordinator.register(1).unwrap();
    assert_ne!(fresh, keeper);
    assert_ne!(fresh, ghost);
    let _ = std::fs::remove_dir_all(&dir);
}
