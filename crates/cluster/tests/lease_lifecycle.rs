//! The lease lifecycle, pinned deterministically: every time-dependent
//! coordinator operation is driven through its `_at(now)` form with
//! synthetic instants — no sleeps, no timing flakes.
//!
//! * expiry requeues a silent worker's jobs exactly once;
//! * duplicate result uploads are idempotent (first write wins), even
//!   across an expiry/re-lease race;
//! * a heartbeat extends the lease;
//! * worker registration survives a coordinator restart via the
//!   registry log.

use campaign::{
    report_to_value, CampaignService, CampaignSpec, EngineConfig, HostRegistry, SharedService,
};
use cluster::{Coordinator, FleetConfig, FleetError, LeasedJob};
use profipy::ExperimentResult;
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

const TARGET: &str = "def transfer(amount):
    checked = validate(amount)
    log_event()
    return checked

def validate(amount):
    if amount > 0:
        return amount
    return 0
";

const WORKLOAD: &str = "import target

def run(round):
    total = 0
    for i in range(3):
        total = total + target.transfer(i)
    return total
";

fn spec_for(user: &str, name: &str) -> CampaignSpec {
    let mut spec = CampaignSpec::new(
        user,
        name,
        "noop",
        vec![("target".into(), TARGET.into())],
        WORKLOAD.into(),
        faultdsl::predefined_models(),
    );
    spec.seed = 47;
    spec
}

fn service() -> CampaignService {
    CampaignService::new(EngineConfig::default(), HostRegistry::with_noop()).unwrap()
}

fn fleet_config(ttl_ms: u64) -> FleetConfig {
    FleetConfig {
        lease_ttl: Duration::from_millis(ttl_ms),
        lease_batch_max: 64,
        ..FleetConfig::default()
    }
}

/// Executes a leased job locally, exactly as a worker agent would.
fn execute(job: &LeasedJob, spec: &CampaignSpec) -> ExperimentResult {
    let host = HostRegistry::with_noop().get(&spec.host).unwrap();
    let workflow = spec.build_workflow(host, Default::default()).unwrap();
    workflow.run_experiment_with_sources(&job.point, &job.sources)
}

#[test]
fn expiry_requeues_exactly_once() {
    let shared = SharedService::new(service());
    let coordinator = Coordinator::new(shared.clone(), fleet_config(500)).unwrap();
    let id = shared.lock().submit(spec_for("alice", "expiry")).unwrap();
    let w1 = coordinator.register(1).unwrap();
    let t0 = Instant::now();
    let grant = coordinator
        .lease_at(&w1, 64, &BTreeSet::new(), t0)
        .unwrap();
    let leased = grant.jobs.len();
    assert!(leased > 0, "campaign has experiments to lease");
    assert_eq!(grant.new_campaigns.len(), 1, "spec shipped on first lease");

    // Before the deadline nothing expires.
    assert_eq!(coordinator.tick_at(t0 + Duration::from_millis(400)), 0);
    // Past it, every leased job is requeued…
    assert_eq!(
        coordinator.tick_at(t0 + Duration::from_millis(600)),
        leased,
        "all leased jobs requeued on expiry"
    );
    // …exactly once: the lease is gone, further ticks find nothing.
    assert_eq!(coordinator.tick_at(t0 + Duration::from_millis(700)), 0);
    assert_eq!(coordinator.tick_at(t0 + Duration::from_secs(60)), 0);
    assert_eq!(coordinator.jobs_requeued_total(), leased as u64);
    let requeues = coordinator.requeue_counts(&id);
    assert_eq!(requeues.len(), leased);
    assert!(requeues.values().all(|&n| n == 1), "{requeues:?}");

    // A second worker picks the same jobs up again.
    let w2 = coordinator.register(1).unwrap();
    let again = coordinator
        .lease_at(&w2, 64, &BTreeSet::new(), t0 + Duration::from_secs(61))
        .unwrap();
    assert_eq!(again.jobs.len(), leased, "requeued jobs re-leased intact");
    let mut first: Vec<u64> = grant.jobs.iter().map(|j| j.point.id).collect();
    let mut second: Vec<u64> = again.jobs.iter().map(|j| j.point.id).collect();
    first.sort_unstable();
    second.sort_unstable();
    assert_eq!(first, second, "same experiments, not copies");
}

#[test]
fn heartbeat_extends_the_lease() {
    let shared = SharedService::new(service());
    let coordinator = Coordinator::new(shared.clone(), fleet_config(500)).unwrap();
    shared.lock().submit(spec_for("bob", "heartbeat")).unwrap();
    let w = coordinator.register(1).unwrap();
    let t0 = Instant::now();
    let grant = coordinator.lease_at(&w, 64, &BTreeSet::new(), t0).unwrap();
    assert!(!grant.jobs.is_empty());

    // Heartbeat at t0+400 pushes the deadline to t0+900.
    assert!(coordinator
        .heartbeat_at(&w, t0 + Duration::from_millis(400))
        .unwrap());
    assert_eq!(
        coordinator.tick_at(t0 + Duration::from_millis(700)),
        0,
        "lease extended past the original deadline"
    );
    // Silence afterwards: the extended deadline expires.
    assert_eq!(
        coordinator.tick_at(t0 + Duration::from_millis(1000)),
        grant.jobs.len()
    );
    // A heartbeat with no lease reports not-extended; an unknown worker
    // is an error.
    assert!(!coordinator
        .heartbeat_at(&w, t0 + Duration::from_millis(1100))
        .unwrap());
    assert!(matches!(
        coordinator.heartbeat_at("worker-999999", t0),
        Err(FleetError::UnknownWorker(_))
    ));
}

#[test]
fn duplicate_results_are_idempotent_and_first_write_wins() {
    let shared = SharedService::new(service());
    let coordinator = Coordinator::new(shared.clone(), fleet_config(500)).unwrap();
    let spec = spec_for("carol", "dup");
    let id = shared.lock().submit(spec.clone()).unwrap();

    // Single-node reference report for the byte-identity check at the
    // end.
    let reference = {
        let mut reference_service = service();
        let ref_id = reference_service.submit(spec.clone()).unwrap();
        reference_service.drive(None).unwrap();
        let report = reference_service.engine().report(&ref_id).unwrap();
        report_to_value(&report).pretty()
    };

    let w1 = coordinator.register(1).unwrap();
    let w2 = coordinator.register(1).unwrap();
    let t0 = Instant::now();
    let grant = coordinator.lease_at(&w1, 64, &BTreeSet::new(), t0).unwrap();
    let results: Vec<(String, ExperimentResult)> = grant
        .jobs
        .iter()
        .map(|job| (job.campaign.clone(), execute(job, &spec)))
        .collect();
    let total = results.len();
    assert!(total >= 2, "need at least two experiments for this test");

    // First upload of the first result: accepted.
    let first = coordinator
        .report_results_at(&w1, results[..1].to_vec(), t0 + Duration::from_millis(50))
        .unwrap();
    assert_eq!((first.accepted, first.duplicates), (1, 0));
    // The identical upload again: pure duplicate, first write wins.
    let dup = coordinator
        .report_results_at(&w1, results[..1].to_vec(), t0 + Duration::from_millis(60))
        .unwrap();
    assert_eq!((dup.accepted, dup.duplicates), (0, 1));

    // w1 goes silent; its remaining jobs expire and are re-leased to
    // w2 (the results upload does NOT extend the lease deadline).
    assert_eq!(
        coordinator.tick_at(t0 + Duration::from_millis(600)),
        total - 1
    );
    let again = coordinator
        .lease_at(&w2, 64, &BTreeSet::new(), t0 + Duration::from_millis(700))
        .unwrap();
    assert_eq!(again.jobs.len(), total - 1);

    // The slow w1 upload still lands first: accepted (first write wins
    // the race against the re-execution).
    let late = coordinator
        .report_results_at(&w1, results[1..].to_vec(), t0 + Duration::from_millis(800))
        .unwrap();
    assert_eq!(late.accepted as usize, total - 1);
    assert_eq!(late.completed, vec![id.clone()], "campaign completed");

    // w2 finishes its (now redundant) batch: every result a duplicate.
    let redundant: Vec<(String, ExperimentResult)> = again
        .jobs
        .iter()
        .map(|job| (job.campaign.clone(), execute(job, &spec)))
        .collect();
    let dup2 = coordinator
        .report_results_at(&w2, redundant, t0 + Duration::from_millis(900))
        .unwrap();
    assert_eq!(dup2.accepted, 0);
    assert_eq!(dup2.duplicates as usize, total - 1);

    // Despite the expiry, the re-lease, and every duplicate, the final
    // report is byte-identical to the single-node run.
    let report = shared.lock().engine().report(&id).unwrap();
    assert_eq!(report_to_value(&report).pretty(), reference);
}

#[test]
fn registration_survives_coordinator_restart() {
    let dir = std::env::temp_dir().join(format!(
        "cluster-registry-test-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let config = FleetConfig {
        data_dir: Some(dir.clone()),
        ..fleet_config(500)
    };
    let (w1, w2);
    {
        let shared = SharedService::new(service());
        let coordinator = Coordinator::new(shared.clone(), config.clone()).unwrap();
        w1 = coordinator.register(2).unwrap();
        w2 = coordinator.register(4).unwrap();
        assert_ne!(w1, w2);
        // Coordinator "crashes" here.
    }
    {
        let shared = SharedService::new(service());
        let coordinator = Coordinator::new(shared.clone(), config.clone()).unwrap();
        shared.lock().submit(spec_for("dave", "restart")).unwrap();
        // The pre-restart worker ids still lease without re-registering.
        let grant = coordinator
            .lease_at(&w1, 4, &BTreeSet::new(), Instant::now())
            .unwrap();
        assert!(!grant.jobs.is_empty(), "restored worker leases fine");
        assert!(coordinator.heartbeat(&w2).is_ok());
        // New registrations continue the id sequence, no collisions.
        let w3 = coordinator.register(1).unwrap();
        assert_ne!(w3, w1);
        assert_ne!(w3, w2);
        // An id never registered is still refused.
        assert!(matches!(
            coordinator.lease_at("worker-424242", 1, &BTreeSet::new(), Instant::now()),
            Err(FleetError::UnknownWorker(_))
        ));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn new_lease_supersedes_a_live_workers_dropped_jobs() {
    // A worker that stays alive (heartbeating, re-leasing) but never
    // uploads its batch — upload retries exhausted, or jobs skipped
    // because the campaign would not build locally — must not wedge
    // the campaign: expiry never fires for a live worker, so the next
    // lease request requeues the dropped jobs itself.
    let shared = SharedService::new(service());
    let coordinator = Coordinator::new(shared.clone(), fleet_config(500)).unwrap();
    let spec = spec_for("erin", "supersede");
    let id = shared.lock().submit(spec.clone()).unwrap();
    let w = coordinator.register(1).unwrap();
    let t0 = Instant::now();
    let first = coordinator.lease_at(&w, 64, &BTreeSet::new(), t0).unwrap();
    let total = first.jobs.len();
    assert!(total >= 2);

    // The worker stays in contact (heartbeats extend the lease), so a
    // tick never expires it…
    coordinator
        .heartbeat_at(&w, t0 + Duration::from_millis(400))
        .unwrap();
    assert_eq!(coordinator.tick_at(t0 + Duration::from_millis(700)), 0);

    // …but its next lease request supersedes the dropped batch: the
    // jobs are requeued and handed straight back.
    let known: BTreeSet<String> = [id.clone()].into_iter().collect();
    let second = coordinator
        .lease_at(&w, 64, &known, t0 + Duration::from_millis(800))
        .unwrap();
    assert_eq!(second.jobs.len(), total, "dropped jobs re-granted");
    assert!(second.new_campaigns.is_empty(), "spec already known");
    assert_eq!(coordinator.jobs_requeued_total(), total as u64);

    // This time the batch is executed and uploaded; completion and the
    // report work exactly as if nothing had been dropped.
    let results: Vec<(String, ExperimentResult)> = second
        .jobs
        .iter()
        .map(|job| (job.campaign.clone(), execute(job, &spec)))
        .collect();
    let summary = coordinator
        .report_results_at(&w, results, t0 + Duration::from_millis(900))
        .unwrap();
    assert_eq!(summary.accepted as usize, total);
    assert_eq!(summary.completed, vec![id.clone()]);
    assert!(shared.lock().engine().report(&id).is_some());
    // No further requeues: the superseding lease was resolved cleanly.
    assert_eq!(coordinator.jobs_requeued_total(), total as u64);
}
