//! The warm standby: a process that tails the primary coordinator's
//! durable state over HTTP and takes over when the primary dies.
//!
//! ```text
//!   primary ──/api/fleet/manifest──▶ standby   (probe + sync, each cycle)
//!       │  ──/api/fleet/file───────▶ replica data dir
//!       ✕ (crash)
//!   probe misses ≥ threshold ──▶ promote:
//!       CampaignService over the replica  (queue demotes Running→Queued)
//!       Coordinator::recover              (WAL leases re-armed, epoch+1)
//!       FleetServer::serve_listener       (the listener bound at boot)
//! ```
//!
//! The standby binds its listener **at boot**: workers that fail over
//! before the promotion finishes queue in the kernel backlog and are
//! answered the moment the promoted coordinator starts serving — after
//! recovery, so none of them can observe a half-recovered fleet.
//!
//! Replication is pull-based and crash-consistent by construction: the
//! primary's files are themselves append-only logs (or atomically
//! rewritten snapshots), so any prefix the standby managed to copy is a
//! state some crash could have left on the primary's own disk — the
//! exact torn-tail class every log reader here already tolerates.
//! `cache/` is not replicated: mutant preparation is deterministic and
//! the promoted engine simply re-prepares.

use crate::coordinator::FleetConfig;
use crate::server::{fnv1a64, FleetServer};
use campaign::{ApiConfig, CampaignService, EngineConfig, HostRegistry};
use jsonlite::Value;
use obs::Level;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Standby options.
pub struct StandbyConfig {
    /// The primary coordinator (`host:port`).
    pub primary: String,
    /// Address to bind **now** and serve from after takeover (port 0
    /// for an ephemeral port).
    pub addr: String,
    /// The replica data dir (must differ from the primary's when both
    /// run on one host).
    pub data_dir: PathBuf,
    /// Sync-and-probe cadence.
    pub probe_interval: Duration,
    /// Consecutive failed probes before the standby declares the
    /// primary dead and promotes itself.
    pub probe_misses: u32,
    /// API config for the promoted server.
    pub api: ApiConfig,
    /// Fleet config for the promoted coordinator (`data_dir` is
    /// overridden with the replica dir).
    pub fleet: FleetConfig,
}

impl StandbyConfig {
    /// A standby of `primary`, replicating into `data_dir`, with the
    /// default probe cadence (250ms, 3 misses — detection well under a
    /// default lease period).
    pub fn new(primary: impl Into<String>, data_dir: impl Into<PathBuf>) -> StandbyConfig {
        StandbyConfig {
            primary: primary.into(),
            addr: "127.0.0.1:0".to_string(),
            data_dir: data_dir.into(),
            probe_interval: Duration::from_millis(250),
            probe_misses: 3,
            api: ApiConfig::default(),
            fleet: FleetConfig::default(),
        }
    }
}

struct StandbyShared {
    stop: AtomicBool,
    promoted: AtomicBool,
    sync_cycles: AtomicU64,
    probes_missed: AtomicU64,
    fleet: Mutex<Option<FleetServer>>,
}

/// A running standby. Holds the bound listener until promotion, then a
/// full [`FleetServer`] on it.
pub struct StandbyServer {
    addr: SocketAddr,
    shared: Arc<StandbyShared>,
    thread: Option<JoinHandle<()>>,
}

impl StandbyServer {
    /// Binds the takeover listener and starts the sync-and-probe loop.
    /// `registry` is the host registry the promoted engine will use —
    /// it must match the primary's, or re-prepared campaigns would
    /// diverge.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn start(config: StandbyConfig, registry: HostRegistry) -> io::Result<StandbyServer> {
        std::fs::create_dir_all(&config.data_dir)?;
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(StandbyShared {
            stop: AtomicBool::new(false),
            promoted: AtomicBool::new(false),
            sync_cycles: AtomicU64::new(0),
            probes_missed: AtomicU64::new(0),
            fleet: Mutex::new(None),
        });
        let loop_shared = shared.clone();
        let thread = std::thread::Builder::new()
            .name("fleet-standby".into())
            .spawn(move || standby_loop(listener, config, registry, &loop_shared))
            .expect("spawn standby thread");
        Ok(StandbyServer {
            addr,
            shared,
            thread: Some(thread),
        })
    }

    /// The address this standby serves from after takeover (concrete
    /// from boot — hand it to workers as their fallback coordinator).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Completed sync cycles (each one a successful probe).
    pub fn sync_cycles(&self) -> u64 {
        self.shared.sync_cycles.load(Ordering::SeqCst)
    }

    /// Failed probes so far (any consecutive `probe_misses` of them
    /// trigger the takeover).
    pub fn probes_missed(&self) -> u64 {
        self.shared.probes_missed.load(Ordering::SeqCst)
    }

    /// Whether this standby has promoted itself to primary.
    pub fn is_promoted(&self) -> bool {
        self.shared.promoted.load(Ordering::SeqCst)
    }

    /// Blocks until promotion (or the deadline). Returns whether the
    /// standby is promoted.
    pub fn wait_promoted(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while !self.is_promoted() {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        true
    }

    /// Stops the standby. If it promoted itself, the inner coordinator
    /// is drained and its service handed back; a never-promoted standby
    /// returns `None`.
    pub fn shutdown(mut self) -> Option<CampaignService> {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
        let fleet = self
            .shared
            .fleet
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take();
        fleet.map(FleetServer::shutdown)
    }
}

impl Drop for StandbyServer {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }
}

fn standby_loop(
    listener: TcpListener,
    mut config: StandbyConfig,
    registry: HostRegistry,
    shared: &StandbyShared,
) {
    let mut misses = 0u32;
    while !shared.stop.load(Ordering::SeqCst) {
        match replicate_once(&config.primary, &config.data_dir, config.probe_interval) {
            Ok(()) => {
                misses = 0;
                shared.sync_cycles.fetch_add(1, Ordering::SeqCst);
            }
            Err(e) => {
                misses += 1;
                shared.probes_missed.fetch_add(1, Ordering::SeqCst);
                obs::log!(
                    Level::Warn,
                    "standby_probe_missed",
                    "primary" => config.primary.as_str(),
                    "misses" => u64::from(misses),
                    "err" => e.as_str(),
                );
                if misses >= config.probe_misses {
                    break;
                }
            }
        }
        // Stop-aware sleep, sliced so shutdown stays prompt.
        let deadline = Instant::now() + config.probe_interval;
        while Instant::now() < deadline && !shared.stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    if shared.stop.load(Ordering::SeqCst) {
        return;
    }
    // Promote: serve the replica from the listener bound at boot. The
    // engine demotes the queue's Running jobs, the coordinator replays
    // the WAL (epoch + 1) and re-arms its leases before the first
    // backlogged connection is answered.
    obs::log!(
        Level::Warn,
        "standby_promoting",
        "primary" => config.primary.as_str(),
        "data_dir" => config.data_dir.display().to_string().as_str(),
    );
    config.fleet.data_dir = Some(config.data_dir.clone());
    let engine_config = EngineConfig {
        data_dir: Some(config.data_dir.clone()),
        executor: Default::default(),
    };
    let service = match CampaignService::new(engine_config, registry) {
        Ok(service) => service,
        Err(e) => {
            obs::log!(Level::Error, "standby_promote_failed", "err" => format!("{e}").as_str());
            return;
        }
    };
    match FleetServer::serve_listener(listener, service, config.api, config.fleet) {
        Ok(fleet) => {
            *shared.fleet.lock().unwrap_or_else(|p| p.into_inner()) = Some(fleet);
            shared.promoted.store(true, Ordering::SeqCst);
        }
        Err(e) => {
            obs::log!(Level::Error, "standby_promote_failed", "err" => format!("{e}").as_str());
        }
    }
}

/// One sync cycle: fetch the manifest (this is also the health probe)
/// and bring every listed file up to date in the replica dir.
fn replicate_once(primary: &str, dir: &Path, probe_interval: Duration) -> Result<(), String> {
    // Probe timeout well above the interval would stall miss counting;
    // cap it at 2s and never below the interval itself.
    let timeout = probe_interval.max(Duration::from_millis(500)).min(Duration::from_secs(2));
    let mut client = httpd::Client::new(primary).timeout(timeout);
    let resp = client
        .get("/api/fleet/manifest")
        .map_err(|e| format!("manifest: {e}"))?;
    if resp.status != 200 {
        return Err(format!("manifest: HTTP {}", resp.status));
    }
    let manifest = jsonlite::parse(&resp.text()).map_err(|e| format!("manifest: {e}"))?;
    let Some(files) = manifest.get("files").and_then(Value::as_arr) else {
        return Err("manifest: missing 'files'".to_string());
    };
    for entry in files {
        let (Some(name), Some(size), Some(hash)) = (
            entry.get("name").and_then(Value::as_str),
            entry.get("size").and_then(Value::as_u64),
            entry.get("hash").and_then(Value::as_u64),
        ) else {
            continue;
        };
        sync_file(&mut client, dir, name, size, hash).map_err(|e| format!("{name}: {e}"))?;
    }
    Ok(())
}

/// Brings one replica file up to date. Append-only logs (`.jsonl`) are
/// tailed from the local length; anything else — and any log the
/// primary rewrote (compaction shrank it, or same-size content drift) —
/// is refetched whole via temp file + rename.
fn sync_file(
    client: &mut httpd::Client,
    dir: &Path,
    name: &str,
    size: u64,
    hash: u64,
) -> Result<(), String> {
    let path = dir.join(name);
    let local = std::fs::read(&path).unwrap_or_default();
    if local.len() as u64 == size && fnv1a64(&local) == hash {
        return Ok(()); // already current
    }
    let appendable = name.ends_with(".jsonl") && (local.len() as u64) < size;
    if appendable {
        let tail = fetch(client, name, local.len() as u64)?;
        let mut merged = local;
        merged.extend_from_slice(&tail);
        // The tail only helps if the prefix still matches (the primary
        // may have compacted between cycles) — verify, else fall back
        // to a full refetch.
        if merged.len() as u64 == size && fnv1a64(&merged) == hash {
            return write_atomic(&path, &merged);
        }
    }
    let whole = fetch(client, name, 0)?;
    write_atomic(&path, &whole)
}

fn fetch(client: &mut httpd::Client, name: &str, offset: u64) -> Result<Vec<u8>, String> {
    let resp = client
        .get(&format!("/api/fleet/file?name={name}&offset={offset}"))
        .map_err(|e| format!("fetch: {e}"))?;
    if resp.status != 200 {
        return Err(format!("fetch: HTTP {}", resp.status));
    }
    Ok(resp.body)
}

fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).map_err(|e| format!("mkdir: {e}"))?;
    }
    let tmp = path.with_extension("sync.tmp");
    std::fs::write(&tmp, bytes).map_err(|e| format!("write: {e}"))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("rename: {e}"))?;
    Ok(())
}
