//! The fleet coordinator: time-bounded leases over the campaign queue.
//!
//! ```text
//!  JobQueue ──checkout_next──▶ ActiveCampaign (pending experiments)
//!                                   │ lease(worker, n)
//!                                   ▼
//!                              in-flight (worker, deadline)
//!                      ┌────────────┼──────────────┐
//!             heartbeat│     results│         miss │ (tick past deadline)
//!        deadline +=ttl│   checkpoint.record       │ requeued exactly once
//!                      └────────────┼──────────────┘
//!                                   ▼  all planned results recorded
//!                          CampaignService::checkin ──▶ report
//! ```
//!
//! Invariants the tests pin:
//!
//! * an expired lease requeues each of its unresulted jobs **exactly
//!   once** (the lease is removed as it expires, so a later tick cannot
//!   requeue again);
//! * result upload is **idempotent** — the first write wins, duplicates
//!   are counted and dropped, so a slow worker racing its own expired
//!   lease can never double-record an experiment;
//! * completion goes through [`campaign::CampaignEngine::checkin`], the
//!   same report-building path a single-node drive uses, which is what
//!   makes the distributed report byte-identical to the local one.
//!
//! All time-dependent operations take an explicit `now` in their `_at`
//! variants; the public wrappers use `Instant::now()`. Tests drive the
//! `_at` forms with synthetic instants — no sleeps, no flakes.

use crate::walog::LeaseLog;
use crate::wire::WireSpan;
use campaign::{CampaignSpec, CheckedOutCampaign, EngineError, SharedService};
use injector::InjectionPoint;
use obs::Level;
use profipy::ExperimentResult;
use pysrc::Module;
use sandbox::SourceFile;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use trace::TraceStore;

/// Coordinator options.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// How long a lease stays valid without a heartbeat; a worker that
    /// misses it gets its leased jobs requeued.
    pub lease_ttl: Duration,
    /// Heartbeat cadence advertised to workers (keep well under
    /// `lease_ttl`).
    pub heartbeat_interval: Duration,
    /// Most jobs handed out per lease request.
    pub lease_batch_max: usize,
    /// Cadence of the server's lease-expiry sweep.
    pub tick_interval: Duration,
    /// How long a registered worker may stay silent before it is
    /// pruned from the registry (and its per-worker gauge labels stop
    /// being emitted). Keep well above `lease_ttl`.
    pub worker_retention: Duration,
    /// Where the worker registry log (`fleet-workers.jsonl`) and the
    /// lease WAL (`fleet-leases.jsonl`) live (`None` = in-memory only).
    /// Registrations and leases recorded here survive a coordinator
    /// restart: a worker keeps its id across coordinator redeploys, and
    /// in-flight leases are re-armed instead of orphaned.
    pub data_dir: Option<PathBuf>,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            lease_ttl: Duration::from_secs(10),
            heartbeat_interval: Duration::from_secs(2),
            lease_batch_max: 16,
            tick_interval: Duration::from_millis(250),
            worker_retention: Duration::from_secs(600),
            data_dir: None,
        }
    }
}

/// Coordinator-level errors, mapped to HTTP statuses by the server.
#[derive(Debug)]
pub enum FleetError {
    /// The worker id is not registered (HTTP 404).
    UnknownWorker(String),
    /// The campaign engine failed (HTTP 500).
    Engine(EngineError),
    /// Checkpoint/registry I/O failed (HTTP 500).
    Io(io::Error),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::UnknownWorker(id) => write!(f, "unknown worker '{id}'"),
            FleetError::Engine(e) => write!(f, "{e}"),
            FleetError::Io(e) => write!(f, "I/O: {e}"),
        }
    }
}

impl std::error::Error for FleetError {}

/// One experiment handed to a worker.
pub struct LeasedJob {
    /// Owning campaign (queue job id).
    pub campaign: String,
    /// The injection point to exercise.
    pub point: InjectionPoint,
    /// Pre-rendered container sources.
    pub sources: Arc<Vec<SourceFile>>,
    /// The campaign's fault-free modules — needed to serialize the
    /// point portably for the wire.
    pub modules: Arc<Vec<Module>>,
}

/// What one lease request granted.
pub struct LeaseGrant {
    /// The experiments, oldest campaign first.
    pub jobs: Vec<LeasedJob>,
    /// Specs of campaigns the worker did not previously know.
    pub new_campaigns: Vec<(String, CampaignSpec)>,
    /// Trace id stamped on this lease; the worker echoes it back with
    /// its result upload, and lease spans carry it so the fleet-wide
    /// timeline correlates coordinator and worker phases.
    pub trace_id: String,
    /// The coordinator epoch the lease was granted under. Workers echo
    /// it with their result uploads, so a standby that took over can
    /// tell (and count) late uploads from the previous epoch — which it
    /// absorbs idempotently, never rejects.
    pub epoch: u64,
}

/// What [`Coordinator::recover`] re-armed from the lease WAL.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoverySummary {
    /// Leases reconstructed (one per worker that held jobs).
    pub leases: usize,
    /// Jobs moved back in flight under their original workers.
    pub jobs: usize,
}

/// What one result upload did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ResultsSummary {
    /// Results recorded for the first time.
    pub accepted: u64,
    /// Results already recorded (first write won) or for campaigns
    /// already completed.
    pub duplicates: u64,
    /// Campaigns this upload completed.
    pub completed: Vec<String>,
}

/// Worker id → the `(campaign, point)` jobs its replayed lease held
/// (the shape `walog::WalState` recovers).
type ReplayedLeases = BTreeMap<String, Vec<(String, u64)>>;

struct WorkerInfo {
    parallelism: usize,
    /// Last contact (register/lease/heartbeat/results) — `None` for a
    /// worker restored from the registry log that has not phoned in
    /// since the coordinator (re)started.
    last_contact: Option<Instant>,
}

struct InFlight {
    worker: String,
    point: InjectionPoint,
    sources: Arc<Vec<SourceFile>>,
}

struct ActiveCampaign {
    checkout: CheckedOutCampaign,
    pending: VecDeque<(InjectionPoint, Arc<Vec<SourceFile>>)>,
    in_flight: BTreeMap<u64, InFlight>,
    requeues: BTreeMap<u64, u64>,
    /// Point ids recorded in the checkpoint — kept incrementally so the
    /// per-result idempotence check is a set probe, not a rebuild of
    /// the full completed set under the fleet lock.
    done: BTreeSet<u64>,
}

struct Lease {
    jobs: Vec<(String, u64)>,
    deadline: Instant,
}

#[derive(Default)]
struct Counters {
    leases_granted: u64,
    leases_expired: u64,
    jobs_leased: u64,
    jobs_requeued: u64,
    results_accepted: u64,
    results_duplicate: u64,
    results_old_epoch: u64,
    campaigns_completed: u64,
    leases_recovered: u64,
    jobs_recovered: u64,
    workers_pruned: u64,
}

struct FleetState {
    workers: BTreeMap<String, WorkerInfo>,
    next_worker_seq: u64,
    active: BTreeMap<String, ActiveCampaign>,
    leases: BTreeMap<String, Lease>,
    counters: Counters,
    /// The durable lease WAL: every grant/extend/expire/supersede/
    /// result appends here under the fleet lock, so the on-disk state
    /// never races the in-memory one.
    wal: LeaseLog,
}

/// The coordinator. Thread-safe behind its own mutex; lock order is
/// always fleet state **then** the shared service (the `/metrics`
/// handler drops the service lock before reading fleet gauges, so the
/// orders never cross).
pub struct Coordinator {
    service: SharedService,
    config: FleetConfig,
    state: Mutex<FleetState>,
    registry_path: Option<PathBuf>,
    /// This coordinator's monotonic epoch: the WAL's recorded epoch
    /// plus one, so every restart or standby takeover is a new epoch.
    epoch: u64,
    /// Leases replayed from the WAL, waiting for [`Coordinator::recover`]
    /// to re-arm them (taken exactly once).
    recovered: Mutex<Option<ReplayedLeases>>,
    /// When this coordinator instance booted — the liveness baseline
    /// for workers restored from the registry that never phoned in.
    boot: Instant,
    /// Set during shutdown: leases stop checking campaigns out, so a
    /// request racing the drain cannot strand a job in `Running`.
    draining: std::sync::atomic::AtomicBool,
    /// `fleet_lease_seconds` — lease handling time, queue checkout
    /// included.
    lease_seconds: obs::Histogram,
    /// `fleet_checkin_seconds` — result-upload handling time,
    /// checkpoint writes and campaign completion included.
    checkin_seconds: obs::Histogram,
    /// `fleet_recovery_seconds` — time [`Coordinator::recover`] spent
    /// re-arming WAL leases (campaign re-checkout included).
    recovery_seconds: obs::Histogram,
    /// `fleet_takeovers_total` — recoveries that found in-flight leases
    /// to re-arm (standby takeovers and crash restarts alike).
    takeovers: obs::Counter,
    /// The service's per-campaign trace store: lease/requeue/upload
    /// spans land here next to the engine's prepare spans.
    trace: Arc<TraceStore>,
}

impl Coordinator {
    /// Creates a coordinator over a shared service, reloading the
    /// worker registry and the lease WAL from `config.data_dir` if set.
    /// The WAL's epoch is bumped (this instance is a new epoch); leases
    /// it recorded are held back until [`Coordinator::recover`] re-arms
    /// them.
    ///
    /// # Errors
    ///
    /// I/O errors reading or creating the registry log or lease WAL.
    pub fn new(service: SharedService, config: FleetConfig) -> io::Result<Coordinator> {
        let registry_path = match &config.data_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                Some(dir.join("fleet-workers.jsonl"))
            }
            None => None,
        };
        let mut workers = BTreeMap::new();
        let mut next_worker_seq = 0u64;
        let mut registry_lines = 0usize;
        if let Some(path) = &registry_path {
            if let Ok(text) = std::fs::read_to_string(path) {
                for line in text.lines() {
                    if line.trim().is_empty() {
                        continue;
                    }
                    // Torn tail from a crash mid-append: keep the valid
                    // prefix, drop the rest (the checkpoint idiom).
                    let Ok(v) = jsonlite::parse(line) else { break };
                    let Some(id) = v.get("id").and_then(jsonlite::Value::as_str) else {
                        break;
                    };
                    if let Some(seq) = id
                        .strip_prefix("worker-")
                        .and_then(|s| s.parse::<u64>().ok())
                    {
                        next_worker_seq = next_worker_seq.max(seq);
                    }
                    registry_lines += 1;
                    // A tombstone prunes the worker; a plain entry
                    // (re)registers it.
                    if matches!(v.get("pruned"), Some(jsonlite::Value::Bool(true))) {
                        workers.remove(id);
                        continue;
                    }
                    let Some(parallelism) = v.get("parallelism").and_then(jsonlite::Value::as_u64)
                    else {
                        registry_lines -= 1;
                        break;
                    };
                    workers.insert(
                        id.to_string(),
                        WorkerInfo {
                            parallelism: parallelism as usize,
                            last_contact: None,
                        },
                    );
                }
            }
            // Compaction on load: rewrite the registry as exactly the
            // live set (dead workers pruned, duplicates folded), plus
            // one watermark tombstone carrying the id sequence so a
            // later reload can never reissue a pruned worker's id.
            if registry_lines != workers.len() {
                let tmp = path.with_extension("jsonl.tmp");
                {
                    let mut file = std::fs::File::create(&tmp)?;
                    for (id, info) in &workers {
                        let line = jsonlite::Value::obj(vec![
                            ("id", jsonlite::Value::str(id)),
                            ("parallelism", jsonlite::Value::UInt(info.parallelism as u64)),
                        ])
                        .compact();
                        writeln!(file, "{line}")?;
                    }
                    let watermark = jsonlite::Value::obj(vec![
                        (
                            "id",
                            jsonlite::Value::str(format!("worker-{next_worker_seq:06}")),
                        ),
                        ("pruned", jsonlite::Value::Bool(true)),
                    ])
                    .compact();
                    writeln!(file, "{watermark}")?;
                    file.sync_data()?;
                }
                std::fs::rename(&tmp, path)?;
            }
        }
        // The lease WAL: replay what the previous epoch left in flight,
        // then claim the next epoch.
        let mut wal = match &config.data_dir {
            Some(dir) => LeaseLog::open(&dir.join("fleet-leases.jsonl"))?,
            None => LeaseLog::in_memory(),
        };
        let epoch = wal.state().epoch + 1;
        let recovered = if wal.state().leases.is_empty() {
            None
        } else {
            Some(wal.state().leases.clone())
        };
        wal.record_epoch(epoch)?;
        let metrics = service.metrics_registry();
        let lease_seconds = metrics.histogram(
            "fleet_lease_seconds",
            "Coordinator lease handling time in seconds (queue checkout included).",
            obs::LATENCY_BUCKETS,
        );
        let checkin_seconds = metrics.histogram(
            "fleet_checkin_seconds",
            "Result-upload handling time in seconds (checkpoint writes included).",
            obs::LATENCY_BUCKETS,
        );
        let recovery_seconds = metrics.histogram(
            "fleet_recovery_seconds",
            "Time spent re-arming WAL leases after a restart or takeover, in seconds.",
            obs::LATENCY_BUCKETS,
        );
        let takeovers = metrics.counter(
            "fleet_takeovers_total",
            "Coordinator recoveries (restart or standby takeover) that re-armed in-flight leases.",
        );
        let trace = service.trace_store();
        Ok(Coordinator {
            service,
            config,
            state: Mutex::new(FleetState {
                workers,
                next_worker_seq,
                active: BTreeMap::new(),
                leases: BTreeMap::new(),
                counters: Counters::default(),
                wal,
            }),
            registry_path,
            epoch,
            recovered: Mutex::new(recovered),
            boot: Instant::now(),
            draining: std::sync::atomic::AtomicBool::new(false),
            lease_seconds,
            checkin_seconds,
            recovery_seconds,
            takeovers,
            trace,
        })
    }

    /// This coordinator's epoch: the previous instance's epoch plus
    /// one, stamped on every lease it grants.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The configuration (the server advertises the timing knobs to
    /// registering workers).
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    fn lock(&self) -> MutexGuard<'_, FleetState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Registers a worker; returns its assigned id. Durable when the
    /// coordinator has a data dir: the id survives a coordinator
    /// restart.
    ///
    /// # Errors
    ///
    /// Registry-log I/O failures.
    pub fn register(&self, parallelism: usize) -> io::Result<String> {
        let mut state = self.lock();
        state.next_worker_seq += 1;
        let id = format!("worker-{:06}", state.next_worker_seq);
        state.workers.insert(
            id.clone(),
            WorkerInfo {
                parallelism: parallelism.max(1),
                last_contact: Some(Instant::now()),
            },
        );
        drop(state);
        if let Some(path) = &self.registry_path {
            let line = jsonlite::Value::obj(vec![
                ("id", jsonlite::Value::str(&id)),
                ("parallelism", jsonlite::Value::UInt(parallelism.max(1) as u64)),
            ])
            .compact();
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?;
            writeln!(file, "{line}")?;
            file.sync_data()?;
        }
        Ok(id)
    }

    /// Extends a worker's lease (if any) and refreshes its liveness.
    /// Returns whether a lease was extended.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownWorker`] for an unregistered id.
    pub fn heartbeat(&self, worker: &str) -> Result<bool, FleetError> {
        self.heartbeat_at(worker, Instant::now())
    }

    /// [`Coordinator::heartbeat`] at an explicit instant.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownWorker`] for an unregistered id.
    pub fn heartbeat_at(&self, worker: &str, now: Instant) -> Result<bool, FleetError> {
        let mut state = self.lock();
        let info = state
            .workers
            .get_mut(worker)
            .ok_or_else(|| FleetError::UnknownWorker(worker.to_string()))?;
        info.last_contact = Some(now);
        let state = &mut *state;
        match state.leases.get_mut(worker) {
            Some(lease) => {
                lease.deadline = now + self.config.lease_ttl;
                state.wal.record_extend(worker).map_err(FleetError::Io)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Grants up to `max_jobs` experiments to a worker, checking more
    /// campaigns out of the queue as needed, and (re)starts the
    /// worker's lease clock. `known` is the set of campaign ids the
    /// worker already holds specs for — only unknown specs are
    /// returned.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownWorker`] for an unregistered id; engine
    /// failures checking campaigns out.
    pub fn lease(
        &self,
        worker: &str,
        max_jobs: usize,
        known: &BTreeSet<String>,
    ) -> Result<LeaseGrant, FleetError> {
        self.lease_at(worker, max_jobs, known, Instant::now())
    }

    /// [`Coordinator::lease`] at an explicit instant.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownWorker`] for an unregistered id; engine
    /// failures checking campaigns out.
    pub fn lease_at(
        &self,
        worker: &str,
        max_jobs: usize,
        known: &BTreeSet<String>,
        now: Instant,
    ) -> Result<LeaseGrant, FleetError> {
        // Wall-clock (not the caller's synthetic `now`): the histogram
        // measures real handling latency even under `_at` tests.
        let wall = Instant::now();
        {
            let mut state = self.lock();
            let info = state
                .workers
                .get_mut(worker)
                .ok_or_else(|| FleetError::UnknownWorker(worker.to_string()))?;
            info.last_contact = Some(now);
            // A new lease supersedes the worker's previous one: our
            // (sequential pull-loop) workers only re-lease after their
            // last batch is fully uploaded, so any job still listed was
            // *dropped* — upload retries exhausted, or the job skipped
            // because the campaign could not be rebuilt locally.
            // Requeue those now; waiting for expiry would never fire,
            // since the live worker's contacts keep extending the
            // deadline.
            if let Some(prev) = state.leases.remove(worker) {
                let requeued = Self::requeue_lease_jobs(&mut state, &prev, worker);
                state
                    .wal
                    .record_supersede(worker)
                    .map_err(FleetError::Io)?;
                drop(state);
                self.note_requeue(worker, "lease_superseded", &requeued);
            }
        }
        let want = max_jobs.clamp(1, self.config.lease_batch_max);
        let mut jobs: Vec<LeasedJob> = Vec::new();
        let fill = loop {
            // Fill from campaigns already checked out, oldest job id
            // first (BTreeMap order — queue ids are sequential). Jobs
            // are popped off `pending` here and only become in-flight
            // when the lease is finalized below.
            {
                let mut state = self.lock();
                for (id, c) in state.active.iter_mut() {
                    while jobs.len() < want {
                        let Some((point, sources)) = c.pending.pop_front() else {
                            break;
                        };
                        jobs.push(LeasedJob {
                            campaign: id.clone(),
                            point,
                            sources,
                            modules: c.checkout.modules.clone(),
                        });
                    }
                    if jobs.len() >= want {
                        break;
                    }
                }
            }
            if jobs.len() >= want {
                break Ok(());
            }
            // Not enough pending work: check the next queued campaign
            // out of the engine (fairness order) — unless a shutdown
            // drain is in progress, in which case new checkouts would
            // be stranded.
            if self.draining.load(std::sync::atomic::Ordering::SeqCst) {
                break Ok(());
            }
            match self.activate_next_campaign() {
                Ok(true) => {}
                Ok(false) => break Ok(()), // queue drained
                Err(e) => break Err(e),
            }
        };
        let mut state = self.lock();
        if let Err(e) = fill {
            // Return the gathered-but-never-leased jobs to their pools
            // so an engine failure cannot strand them.
            for job in jobs {
                if let Some(c) = state.active.get_mut(&job.campaign) {
                    c.pending.push_front((job.point, job.sources));
                }
            }
            return Err(e);
        }
        // Finalize: mark the jobs in-flight and record the lease (the
        // worker's clock restarts on any grant, including an empty one
        // — the contact proves it is alive).
        let st = &mut *state;
        for job in &jobs {
            if let Some(c) = st.active.get_mut(&job.campaign) {
                c.in_flight.insert(
                    job.point.id,
                    InFlight {
                        worker: worker.to_string(),
                        point: job.point.clone(),
                        sources: job.sources.clone(),
                    },
                );
            }
        }
        let deadline = now + self.config.lease_ttl;
        let lease = st.leases.entry(worker.to_string()).or_insert(Lease {
            jobs: Vec::new(),
            deadline,
        });
        lease.deadline = deadline;
        for job in &jobs {
            lease.jobs.push((job.campaign.clone(), job.point.id));
        }
        let granted = lease.jobs.clone();
        st.wal
            .record_grant(worker, &granted)
            .map_err(FleetError::Io)?;
        st.counters.leases_granted += 1;
        st.counters.jobs_leased += jobs.len() as u64;
        let trace_id = format!("t-{:06}", st.counters.leases_granted);
        // Ship specs the worker lacks.
        let mut new_campaigns: Vec<(String, CampaignSpec)> = Vec::new();
        for job in &jobs {
            if known.contains(&job.campaign)
                || new_campaigns.iter().any(|(id, _)| id == &job.campaign)
            {
                continue;
            }
            let spec = st.active[&job.campaign].checkout.spec.clone();
            new_campaigns.push((job.campaign.clone(), spec));
        }
        drop(state);
        // One lease span per campaign that got jobs (empty leases are
        // routine polling, not timeline events).
        let mut per_campaign: BTreeMap<&str, usize> = BTreeMap::new();
        for job in &jobs {
            *per_campaign.entry(job.campaign.as_str()).or_insert(0) += 1;
        }
        let elapsed = wall.elapsed();
        for (campaign, n) in &per_campaign {
            self.trace.record_phase(
                campaign,
                "coordinator",
                &format!("lease {trace_id} → {worker} ({n} jobs)"),
                wall,
                elapsed,
                false,
            );
        }
        self.lease_seconds.observe_duration(elapsed);
        Ok(LeaseGrant {
            jobs,
            new_campaigns,
            trace_id,
            epoch: self.epoch,
        })
    }

    /// Checks the next queued campaign out of the engine and activates
    /// it for distribution. Campaigns with nothing left to distribute
    /// (empty plan, or every point pre-recorded) are checked straight
    /// back in and skipped. Returns `false` when the queue is drained.
    /// Preparation can be expensive (parse, scan, mutant rendering), so
    /// it runs WITHOUT the fleet lock: heartbeats, uploads, and expiry
    /// ticks proceed meanwhile.
    ///
    /// # Errors
    ///
    /// Engine failures checking campaigns out or in.
    fn activate_next_campaign(&self) -> Result<bool, FleetError> {
        loop {
            let checked = {
                let mut service = self.service.lock();
                match service.checkout_next() {
                    Ok(Some(checkout)) if checkout.pending.is_empty() => {
                        service.checkin(checkout).map_err(FleetError::Engine)?;
                        continue;
                    }
                    Ok(other) => other,
                    Err(e) => return Err(FleetError::Engine(e)),
                }
            };
            let Some(mut checkout) = checked else {
                return Ok(false); // queue drained
            };
            let id = checkout.id.clone();
            let pending: VecDeque<_> =
                std::mem::take(&mut checkout.pending).into_iter().collect();
            let done = checkout.checkpoint.completed_ids();
            self.lock().active.insert(
                id,
                ActiveCampaign {
                    checkout,
                    pending,
                    in_flight: BTreeMap::new(),
                    requeues: BTreeMap::new(),
                    done,
                },
            );
            return Ok(true);
        }
    }

    /// Re-arms the leases the previous coordinator epoch left in the
    /// WAL: the named campaigns are checked back out of the queue, each
    /// replayed job moves in flight under its original worker (absent
    /// workers are re-registered from the replicated registry state),
    /// and every re-armed lease gets one fresh TTL from `now`. A worker
    /// that survived the takeover uploads within that window and its
    /// results are absorbed; a dead worker's lease expires exactly
    /// once, requeueing exactly its unresulted jobs.
    ///
    /// Takes the replayed state exactly once — later calls are no-ops.
    /// Call **before** serving requests, so no lease can race the
    /// re-arm.
    ///
    /// # Errors
    ///
    /// Engine failures re-checking campaigns out; WAL I/O.
    pub fn recover(&self) -> Result<RecoverySummary, FleetError> {
        self.recover_at(Instant::now())
    }

    /// [`Coordinator::recover`] at an explicit instant.
    ///
    /// # Errors
    ///
    /// Engine failures re-checking campaigns out; WAL I/O.
    pub fn recover_at(&self, now: Instant) -> Result<RecoverySummary, FleetError> {
        let wall = Instant::now();
        let Some(replayed) = self.recovered.lock().unwrap_or_else(|p| p.into_inner()).take()
        else {
            return Ok(RecoverySummary::default());
        };
        let wanted: BTreeSet<String> = replayed
            .values()
            .flat_map(|jobs| jobs.iter().map(|(c, _)| c.clone()))
            .collect();
        // Check campaigns out until every wanted one is active or the
        // queue is drained (a wanted campaign may already be complete —
        // its replayed jobs are then dropped as done below).
        loop {
            let active: BTreeSet<String> = self.lock().active.keys().cloned().collect();
            if wanted.is_subset(&active) || !self.activate_next_campaign()? {
                break;
            }
        }
        let mut summary = RecoverySummary::default();
        let mut state = self.lock();
        let st = &mut *state;
        for (worker, jobs) in replayed {
            // The worker registry is replicated alongside the WAL, so
            // the holder is normally known; re-create it defensively if
            // the logs diverged (it must exist for expiry accounting).
            st.workers.entry(worker.clone()).or_insert(WorkerInfo {
                parallelism: 1,
                last_contact: None,
            });
            let mut kept: Vec<(String, u64)> = Vec::new();
            for (campaign_id, point_id) in jobs {
                let Some(c) = st.active.get_mut(&campaign_id) else {
                    continue; // campaign already completed
                };
                if c.done.contains(&point_id) {
                    continue; // resulted before the crash
                }
                let Some(pos) = c.pending.iter().position(|(p, _)| p.id == point_id) else {
                    continue; // not in the replan (spec changed) or already in flight
                };
                let (point, sources) = c.pending.remove(pos).expect("position found above");
                c.in_flight.insert(
                    point_id,
                    InFlight {
                        worker: worker.clone(),
                        point,
                        sources,
                    },
                );
                kept.push((campaign_id, point_id));
            }
            if kept.is_empty() {
                st.wal.record_expire(&worker).map_err(FleetError::Io)?;
                continue;
            }
            summary.leases += 1;
            summary.jobs += kept.len();
            st.wal.record_grant(&worker, &kept).map_err(FleetError::Io)?;
            st.leases.insert(
                worker,
                Lease {
                    jobs: kept,
                    deadline: now + self.config.lease_ttl,
                },
            );
        }
        st.counters.leases_recovered += summary.leases as u64;
        st.counters.jobs_recovered += summary.jobs as u64;
        drop(state);
        if summary.leases > 0 {
            self.takeovers.inc();
        }
        self.recovery_seconds.observe_duration(wall.elapsed());
        obs::log!(
            Level::Info,
            "fleet_recovered",
            "epoch" => self.epoch,
            "leases" => summary.leases as u64,
            "jobs" => summary.jobs as u64,
        );
        Ok(summary)
    }

    /// Requeues a lease's still-unresulted jobs (shared by expiry and
    /// lease supersession). Jobs whose in-flight entry no longer names
    /// `worker` — resulted, or requeued and re-leased elsewhere — are
    /// left alone. Returns how many jobs went back per campaign, so
    /// callers can log and trace the event with its cause attached.
    fn requeue_lease_jobs(
        state: &mut FleetState,
        lease: &Lease,
        worker: &str,
    ) -> BTreeMap<String, usize> {
        let mut requeued: BTreeMap<String, usize> = BTreeMap::new();
        for (campaign_id, point_id) in &lease.jobs {
            let Some(c) = state.active.get_mut(campaign_id) else {
                continue; // campaign completed meanwhile
            };
            let owned = c
                .in_flight
                .get(point_id)
                .is_some_and(|f| f.worker == worker);
            if !owned {
                continue;
            }
            let flight = c.in_flight.remove(point_id).expect("checked above");
            c.pending.push_back((flight.point, flight.sources));
            *c.requeues.entry(*point_id).or_insert(0) += 1;
            state.counters.jobs_requeued += 1;
            *requeued.entry(campaign_id.clone()).or_insert(0) += 1;
        }
        requeued
    }

    /// Logs and traces one requeue event (lease expiry or supersession).
    fn note_requeue(&self, worker: &str, cause: &str, requeued: &BTreeMap<String, usize>) {
        for (campaign, n) in requeued {
            obs::log!(
                Level::Warn,
                cause,
                "worker" => worker,
                "campaign" => campaign.as_str(),
                "requeued" => *n as u64,
            );
            self.trace.record_phase(
                campaign,
                "coordinator",
                &format!("{cause} {worker} ({n} jobs)"),
                Instant::now(),
                Duration::ZERO,
                true,
            );
        }
    }

    /// Records uploaded results. Idempotent: a point already in the
    /// campaign's checkpoint (or a campaign already completed) counts
    /// as a duplicate and is dropped — the **first write wins**,
    /// deterministically, so a worker racing its own expired lease
    /// cannot double-record. Campaigns whose last result lands here are
    /// completed through the engine's single-node code path.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownWorker`] for an unregistered id; checkpoint
    /// I/O or engine failures.
    pub fn report_results(
        &self,
        worker: &str,
        results: Vec<(String, ExperimentResult)>,
    ) -> Result<ResultsSummary, FleetError> {
        self.report_results_at(worker, results, Instant::now())
    }

    /// [`Coordinator::report_results`] at an explicit instant.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownWorker`] for an unregistered id; checkpoint
    /// I/O or engine failures.
    pub fn report_results_at(
        &self,
        worker: &str,
        results: Vec<(String, ExperimentResult)>,
        now: Instant,
    ) -> Result<ResultsSummary, FleetError> {
        self.report_results_stamped_at(worker, None, results, now)
    }

    /// [`Coordinator::report_results_at`] with the lease epoch the
    /// worker echoed (when it sent one). Uploads stamped with an older
    /// epoch — a batch leased by the coordinator this one replaced —
    /// are **absorbed**, never rejected: idempotence already makes the
    /// outcome correct, the stamp just lets the takeover be observed
    /// (`fleet_results_old_epoch_total`).
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownWorker`] for an unregistered id; checkpoint
    /// I/O or engine failures.
    pub fn report_results_stamped_at(
        &self,
        worker: &str,
        epoch: Option<u64>,
        results: Vec<(String, ExperimentResult)>,
        now: Instant,
    ) -> Result<ResultsSummary, FleetError> {
        let wall = Instant::now();
        let mut state = self.lock();
        let info = state
            .workers
            .get_mut(worker)
            .ok_or_else(|| FleetError::UnknownWorker(worker.to_string()))?;
        info.last_contact = Some(now);
        if let Some(e) = epoch {
            if e < self.epoch {
                state.counters.results_old_epoch += results.len() as u64;
                obs::log!(
                    Level::Info,
                    "results_old_epoch",
                    "worker" => worker,
                    "upload_epoch" => e,
                    "epoch" => self.epoch,
                    "results" => results.len() as u64,
                );
            }
        }
        let mut summary = ResultsSummary::default();
        let mut touched: BTreeSet<String> = BTreeSet::new();
        let mut retired: Vec<(String, u64)> = Vec::new();
        let mut uploaded: BTreeMap<String, usize> = BTreeMap::new();
        for (campaign_id, result) in results {
            *uploaded.entry(campaign_id.clone()).or_insert(0) += 1;
            let Some(c) = state.active.get_mut(&campaign_id) else {
                // Campaign finished (or was never distributed): a late
                // duplicate from a slow worker.
                summary.duplicates += 1;
                continue;
            };
            if c.done.contains(&result.point_id) {
                summary.duplicates += 1;
            } else {
                c.checkout
                    .checkpoint
                    .record(&result)
                    .map_err(FleetError::Io)?;
                c.done.insert(result.point_id);
                summary.accepted += 1;
            }
            // Retire the job wherever it currently lives: in flight
            // (normal case) or back in pending (its original lease
            // expired but the slow upload still arrived first).
            c.in_flight.remove(&result.point_id);
            c.pending.retain(|(p, _)| p.id != result.point_id);
            retired.push((campaign_id.clone(), result.point_id));
            touched.insert(campaign_id);
        }
        // Drop retired jobs from every lease so a later expiry cannot
        // requeue work that is already recorded — and mirror that into
        // the WAL, so a takeover never re-arms a recorded job.
        {
            let st = &mut *state;
            for lease in st.leases.values_mut() {
                lease.jobs.retain(|entry| !retired.contains(entry));
            }
            for (campaign_id, point_id) in &retired {
                st.wal
                    .record_result(campaign_id, *point_id)
                    .map_err(FleetError::Io)?;
            }
        }
        // Complete campaigns whose plan is now fully recorded.
        for id in touched {
            let done = {
                let c = &state.active[&id];
                c.done.len() >= c.checkout.total
            };
            if !done {
                continue;
            }
            let c = state.active.remove(&id).expect("touched campaign is active");
            let completed = self
                .service
                .lock()
                .checkin(c.checkout)
                .map_err(FleetError::Engine)?;
            if completed {
                state.counters.campaigns_completed += 1;
                obs::log!(
                    Level::Info,
                    "campaign_completed",
                    "campaign" => id.as_str(),
                    "worker" => worker,
                );
                self.trace.record_phase(
                    &id,
                    "coordinator",
                    "complete",
                    wall,
                    wall.elapsed(),
                    false,
                );
                summary.completed.push(id);
            }
        }
        state.counters.results_accepted += summary.accepted;
        state.counters.results_duplicate += summary.duplicates;
        drop(state);
        let elapsed = wall.elapsed();
        for (campaign, n) in &uploaded {
            self.trace.record_phase(
                campaign,
                "coordinator",
                &format!("upload ← {worker} ({n} results)"),
                wall,
                elapsed,
                false,
            );
        }
        self.checkin_seconds.observe_duration(elapsed);
        Ok(summary)
    }

    /// Expires leases past their deadline, requeueing each unresulted
    /// job **exactly once** (the lease is removed as it expires, so the
    /// next tick cannot requeue the same jobs again). Returns the
    /// number of jobs requeued.
    pub fn tick(&self) -> usize {
        self.tick_at(Instant::now())
    }

    /// [`Coordinator::tick`] at an explicit instant.
    pub fn tick_at(&self, now: Instant) -> usize {
        let mut state = self.lock();
        let expired: Vec<String> = state
            .leases
            .iter()
            .filter(|(_, lease)| lease.deadline < now)
            .map(|(worker, _)| worker.clone())
            .collect();
        let mut requeued = 0usize;
        let mut noted: Vec<(String, BTreeMap<String, usize>)> = Vec::new();
        for worker in expired {
            let lease = state.leases.remove(&worker).expect("expired lease exists");
            state.counters.leases_expired += 1;
            // Best-effort: the in-memory requeue is the truth, a WAL
            // append failure must not abort the sweep.
            if let Err(e) = state.wal.record_expire(&worker) {
                obs::log!(Level::Error, "wal_append_failed", "err" => format!("{e}").as_str());
            }
            let per_campaign = Self::requeue_lease_jobs(&mut state, &lease, &worker);
            requeued += per_campaign.values().sum::<usize>();
            noted.push((worker, per_campaign));
        }
        // Prune workers silent past the retention window (and without a
        // live lease — expiry above handles those first). Removing the
        // registry entry stops its per-worker gauge labels from being
        // emitted forever.
        let stale: Vec<String> = state
            .workers
            .iter()
            .filter(|(id, info)| {
                !state.leases.contains_key(*id)
                    && now.saturating_duration_since(info.last_contact.unwrap_or(self.boot))
                        > self.config.worker_retention
            })
            .map(|(id, _)| id.clone())
            .collect();
        for id in &stale {
            state.workers.remove(id);
            state.counters.workers_pruned += 1;
        }
        drop(state);
        for id in &stale {
            obs::log!(Level::Warn, "worker_pruned", "worker" => id.as_str());
            // Tombstone the registry so a restart does not resurrect
            // the pruned worker. Best-effort, outside the fleet lock.
            if let Some(path) = &self.registry_path {
                let line = jsonlite::Value::obj(vec![
                    ("id", jsonlite::Value::str(id)),
                    ("pruned", jsonlite::Value::Bool(true)),
                ])
                .compact();
                let appended = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .and_then(|mut f| {
                        writeln!(f, "{line}")?;
                        f.sync_data()
                    });
                if let Err(e) = appended {
                    obs::log!(Level::Error, "registry_append_failed", "err" => format!("{e}").as_str());
                }
            }
        }
        for (worker, per_campaign) in noted {
            self.note_requeue(&worker, "lease_expired", &per_campaign);
        }
        requeued
    }

    /// Returns every checked-out campaign to the engine (completing the
    /// finished ones, requeueing the rest) and drops all leases. Called
    /// on graceful shutdown so no job is stranded `Running`.
    ///
    /// # Errors
    ///
    /// Engine failures returning campaigns.
    pub fn drain(&self) -> Result<(), FleetError> {
        self.draining.store(true, std::sync::atomic::Ordering::SeqCst);
        let mut state = self.lock();
        let ids: Vec<String> = state.active.keys().cloned().collect();
        let leases = state.leases.len();
        obs::log!(
            Level::Info,
            "coordinator_drain",
            "campaigns" => ids.len() as u64,
            "leases" => leases as u64,
        );
        for id in ids {
            let c = state.active.remove(&id).expect("listed id is active");
            self.service
                .lock()
                .checkin(c.checkout)
                .map_err(FleetError::Engine)?;
        }
        // Graceful shutdown leaves a clean WAL: nothing to re-arm.
        let holders: Vec<String> = state.leases.keys().cloned().collect();
        for worker in holders {
            if let Err(e) = state.wal.record_expire(&worker) {
                obs::log!(Level::Error, "wal_append_failed", "err" => format!("{e}").as_str());
            }
        }
        state.leases.clear();
        Ok(())
    }

    /// Per-point requeue counters of an active campaign (test/metrics
    /// surface; empty once the campaign completed).
    pub fn requeue_counts(&self, campaign: &str) -> BTreeMap<u64, u64> {
        self.lock()
            .active
            .get(campaign)
            .map(|c| c.requeues.clone())
            .unwrap_or_default()
    }

    /// Total jobs requeued by lease expiry so far.
    pub fn jobs_requeued_total(&self) -> u64 {
        self.lock().counters.jobs_requeued
    }

    /// Appends the fleet gauges (`fleet_*`) to a metrics collection.
    pub fn append_metrics(&self, out: &mut Vec<(String, u64)>) {
        self.append_metrics_at(out, Instant::now());
    }

    /// [`Coordinator::append_metrics`] at an explicit instant.
    pub fn append_metrics_at(&self, out: &mut Vec<(String, u64)>, now: Instant) {
        let state = self.lock();
        let live = state
            .workers
            .values()
            .filter(|w| {
                w.last_contact
                    .is_some_and(|t| now.saturating_duration_since(t) <= self.config.lease_ttl)
            })
            .count();
        let pending: usize = state.active.values().map(|c| c.pending.len()).sum();
        let in_flight: usize = state.active.values().map(|c| c.in_flight.len()).sum();
        let c = &state.counters;
        out.push(("fleet_workers_registered".into(), state.workers.len() as u64));
        out.push(("fleet_workers_live".into(), live as u64));
        out.push(("fleet_campaigns_active".into(), state.active.len() as u64));
        out.push(("fleet_jobs_pending".into(), pending as u64));
        out.push(("fleet_jobs_leased".into(), in_flight as u64));
        out.push(("fleet_leases_granted_total".into(), c.leases_granted));
        out.push(("fleet_leases_expired_total".into(), c.leases_expired));
        out.push(("fleet_jobs_leased_total".into(), c.jobs_leased));
        out.push(("fleet_jobs_requeued_total".into(), c.jobs_requeued));
        out.push(("fleet_results_accepted_total".into(), c.results_accepted));
        out.push(("fleet_results_duplicate_total".into(), c.results_duplicate));
        out.push(("fleet_results_old_epoch_total".into(), c.results_old_epoch));
        out.push(("fleet_campaigns_completed_total".into(), c.campaigns_completed));
        out.push(("fleet_epoch".into(), self.epoch));
        out.push(("fleet_leases_recovered_total".into(), c.leases_recovered));
        out.push(("fleet_jobs_recovered_total".into(), c.jobs_recovered));
        out.push(("fleet_workers_pruned_total".into(), c.workers_pruned));
        for (id, info) in &state.workers {
            if let Some(t) = info.last_contact {
                out.push((
                    format!("fleet_worker_heartbeat_age_ms{{worker=\"{id}\"}}"),
                    now.saturating_duration_since(t).as_millis() as u64,
                ));
            }
            out.push((
                format!("fleet_worker_parallelism{{worker=\"{id}\"}}"),
                info.parallelism as u64,
            ));
        }
    }

    /// Merges worker-shipped phase spans into the campaign timelines.
    ///
    /// Each span self-anchors: its `age` says how long before the
    /// upload send it started, so its coordinator-clock start is the
    /// campaign's current trace offset minus that age (clamped at the
    /// campaign epoch — no cross-host clock agreement needed). Spans
    /// for unknown campaigns are dropped: telemetry must never grow
    /// state for ids the queue never issued.
    pub fn record_wire_spans(&self, worker: &str, spans: &[WireSpan]) {
        for span in spans {
            let Some(offset) = self.trace.offset(&span.campaign) else {
                continue;
            };
            self.trace.record(
                &span.campaign,
                trace::Span {
                    service: worker.to_string(),
                    name: span.name.clone(),
                    start: (offset - span.age.max(0.0)).max(0.0),
                    duration: span.duration.max(0.0),
                    failed: span.failed,
                },
            );
        }
    }
}
