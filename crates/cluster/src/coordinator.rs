//! The fleet coordinator: time-bounded leases over the campaign queue.
//!
//! ```text
//!  JobQueue ──checkout_next──▶ ActiveCampaign (pending experiments)
//!                                   │ lease(worker, n)
//!                                   ▼
//!                              in-flight (worker, deadline)
//!                      ┌────────────┼──────────────┐
//!             heartbeat│     results│         miss │ (tick past deadline)
//!        deadline +=ttl│   checkpoint.record       │ requeued exactly once
//!                      └────────────┼──────────────┘
//!                                   ▼  all planned results recorded
//!                          CampaignService::checkin ──▶ report
//! ```
//!
//! Invariants the tests pin:
//!
//! * an expired lease requeues each of its unresulted jobs **exactly
//!   once** (the lease is removed as it expires, so a later tick cannot
//!   requeue again);
//! * result upload is **idempotent** — the first write wins, duplicates
//!   are counted and dropped, so a slow worker racing its own expired
//!   lease can never double-record an experiment;
//! * completion goes through [`campaign::CampaignEngine::checkin`], the
//!   same report-building path a single-node drive uses, which is what
//!   makes the distributed report byte-identical to the local one.
//!
//! All time-dependent operations take an explicit `now` in their `_at`
//! variants; the public wrappers use `Instant::now()`. Tests drive the
//! `_at` forms with synthetic instants — no sleeps, no flakes.

use crate::wire::WireSpan;
use campaign::{CampaignSpec, CheckedOutCampaign, EngineError, SharedService};
use injector::InjectionPoint;
use obs::Level;
use profipy::ExperimentResult;
use pysrc::Module;
use sandbox::SourceFile;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use trace::TraceStore;

/// Coordinator options.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// How long a lease stays valid without a heartbeat; a worker that
    /// misses it gets its leased jobs requeued.
    pub lease_ttl: Duration,
    /// Heartbeat cadence advertised to workers (keep well under
    /// `lease_ttl`).
    pub heartbeat_interval: Duration,
    /// Most jobs handed out per lease request.
    pub lease_batch_max: usize,
    /// Cadence of the server's lease-expiry sweep.
    pub tick_interval: Duration,
    /// Where the worker registry log lives (`None` = in-memory only).
    /// Registrations appended here survive a coordinator restart, so a
    /// worker keeps its id across coordinator redeploys.
    pub data_dir: Option<PathBuf>,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            lease_ttl: Duration::from_secs(10),
            heartbeat_interval: Duration::from_secs(2),
            lease_batch_max: 16,
            tick_interval: Duration::from_millis(250),
            data_dir: None,
        }
    }
}

/// Coordinator-level errors, mapped to HTTP statuses by the server.
#[derive(Debug)]
pub enum FleetError {
    /// The worker id is not registered (HTTP 404).
    UnknownWorker(String),
    /// The campaign engine failed (HTTP 500).
    Engine(EngineError),
    /// Checkpoint/registry I/O failed (HTTP 500).
    Io(io::Error),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::UnknownWorker(id) => write!(f, "unknown worker '{id}'"),
            FleetError::Engine(e) => write!(f, "{e}"),
            FleetError::Io(e) => write!(f, "I/O: {e}"),
        }
    }
}

impl std::error::Error for FleetError {}

/// One experiment handed to a worker.
pub struct LeasedJob {
    /// Owning campaign (queue job id).
    pub campaign: String,
    /// The injection point to exercise.
    pub point: InjectionPoint,
    /// Pre-rendered container sources.
    pub sources: Arc<Vec<SourceFile>>,
    /// The campaign's fault-free modules — needed to serialize the
    /// point portably for the wire.
    pub modules: Arc<Vec<Module>>,
}

/// What one lease request granted.
pub struct LeaseGrant {
    /// The experiments, oldest campaign first.
    pub jobs: Vec<LeasedJob>,
    /// Specs of campaigns the worker did not previously know.
    pub new_campaigns: Vec<(String, CampaignSpec)>,
    /// Trace id stamped on this lease; the worker echoes it back with
    /// its result upload, and lease spans carry it so the fleet-wide
    /// timeline correlates coordinator and worker phases.
    pub trace_id: String,
}

/// What one result upload did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ResultsSummary {
    /// Results recorded for the first time.
    pub accepted: u64,
    /// Results already recorded (first write won) or for campaigns
    /// already completed.
    pub duplicates: u64,
    /// Campaigns this upload completed.
    pub completed: Vec<String>,
}

struct WorkerInfo {
    parallelism: usize,
    /// Last contact (register/lease/heartbeat/results) — `None` for a
    /// worker restored from the registry log that has not phoned in
    /// since the coordinator (re)started.
    last_contact: Option<Instant>,
}

struct InFlight {
    worker: String,
    point: InjectionPoint,
    sources: Arc<Vec<SourceFile>>,
}

struct ActiveCampaign {
    checkout: CheckedOutCampaign,
    pending: VecDeque<(InjectionPoint, Arc<Vec<SourceFile>>)>,
    in_flight: BTreeMap<u64, InFlight>,
    requeues: BTreeMap<u64, u64>,
    /// Point ids recorded in the checkpoint — kept incrementally so the
    /// per-result idempotence check is a set probe, not a rebuild of
    /// the full completed set under the fleet lock.
    done: BTreeSet<u64>,
}

struct Lease {
    jobs: Vec<(String, u64)>,
    deadline: Instant,
}

#[derive(Default)]
struct Counters {
    leases_granted: u64,
    leases_expired: u64,
    jobs_leased: u64,
    jobs_requeued: u64,
    results_accepted: u64,
    results_duplicate: u64,
    campaigns_completed: u64,
}

struct FleetState {
    workers: BTreeMap<String, WorkerInfo>,
    next_worker_seq: u64,
    active: BTreeMap<String, ActiveCampaign>,
    leases: BTreeMap<String, Lease>,
    counters: Counters,
}

/// The coordinator. Thread-safe behind its own mutex; lock order is
/// always fleet state **then** the shared service (the `/metrics`
/// handler drops the service lock before reading fleet gauges, so the
/// orders never cross).
pub struct Coordinator {
    service: SharedService,
    config: FleetConfig,
    state: Mutex<FleetState>,
    registry_path: Option<PathBuf>,
    /// Set during shutdown: leases stop checking campaigns out, so a
    /// request racing the drain cannot strand a job in `Running`.
    draining: std::sync::atomic::AtomicBool,
    /// `fleet_lease_seconds` — lease handling time, queue checkout
    /// included.
    lease_seconds: obs::Histogram,
    /// `fleet_checkin_seconds` — result-upload handling time,
    /// checkpoint writes and campaign completion included.
    checkin_seconds: obs::Histogram,
    /// The service's per-campaign trace store: lease/requeue/upload
    /// spans land here next to the engine's prepare spans.
    trace: Arc<TraceStore>,
}

impl Coordinator {
    /// Creates a coordinator over a shared service, reloading the
    /// worker registry from `config.data_dir` if set.
    ///
    /// # Errors
    ///
    /// I/O errors reading or creating the registry log.
    pub fn new(service: SharedService, config: FleetConfig) -> io::Result<Coordinator> {
        let registry_path = match &config.data_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                Some(dir.join("fleet-workers.jsonl"))
            }
            None => None,
        };
        let mut workers = BTreeMap::new();
        let mut next_worker_seq = 0u64;
        if let Some(path) = &registry_path {
            if let Ok(text) = std::fs::read_to_string(path) {
                for line in text.lines() {
                    if line.trim().is_empty() {
                        continue;
                    }
                    // Torn tail from a crash mid-append: keep the valid
                    // prefix, drop the rest (the checkpoint idiom).
                    let Ok(v) = jsonlite::parse(line) else { break };
                    let (Some(id), Some(parallelism)) = (
                        v.get("id").and_then(jsonlite::Value::as_str),
                        v.get("parallelism").and_then(jsonlite::Value::as_u64),
                    ) else {
                        break;
                    };
                    if let Some(seq) = id
                        .strip_prefix("worker-")
                        .and_then(|s| s.parse::<u64>().ok())
                    {
                        next_worker_seq = next_worker_seq.max(seq);
                    }
                    workers.insert(
                        id.to_string(),
                        WorkerInfo {
                            parallelism: parallelism as usize,
                            last_contact: None,
                        },
                    );
                }
            }
        }
        let metrics = service.metrics_registry();
        let lease_seconds = metrics.histogram(
            "fleet_lease_seconds",
            "Coordinator lease handling time in seconds (queue checkout included).",
            obs::LATENCY_BUCKETS,
        );
        let checkin_seconds = metrics.histogram(
            "fleet_checkin_seconds",
            "Result-upload handling time in seconds (checkpoint writes included).",
            obs::LATENCY_BUCKETS,
        );
        let trace = service.trace_store();
        Ok(Coordinator {
            service,
            config,
            state: Mutex::new(FleetState {
                workers,
                next_worker_seq,
                active: BTreeMap::new(),
                leases: BTreeMap::new(),
                counters: Counters::default(),
            }),
            registry_path,
            draining: std::sync::atomic::AtomicBool::new(false),
            lease_seconds,
            checkin_seconds,
            trace,
        })
    }

    /// The configuration (the server advertises the timing knobs to
    /// registering workers).
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    fn lock(&self) -> MutexGuard<'_, FleetState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Registers a worker; returns its assigned id. Durable when the
    /// coordinator has a data dir: the id survives a coordinator
    /// restart.
    ///
    /// # Errors
    ///
    /// Registry-log I/O failures.
    pub fn register(&self, parallelism: usize) -> io::Result<String> {
        let mut state = self.lock();
        state.next_worker_seq += 1;
        let id = format!("worker-{:06}", state.next_worker_seq);
        state.workers.insert(
            id.clone(),
            WorkerInfo {
                parallelism: parallelism.max(1),
                last_contact: Some(Instant::now()),
            },
        );
        drop(state);
        if let Some(path) = &self.registry_path {
            let line = jsonlite::Value::obj(vec![
                ("id", jsonlite::Value::str(&id)),
                ("parallelism", jsonlite::Value::UInt(parallelism.max(1) as u64)),
            ])
            .compact();
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?;
            writeln!(file, "{line}")?;
            file.sync_data()?;
        }
        Ok(id)
    }

    /// Extends a worker's lease (if any) and refreshes its liveness.
    /// Returns whether a lease was extended.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownWorker`] for an unregistered id.
    pub fn heartbeat(&self, worker: &str) -> Result<bool, FleetError> {
        self.heartbeat_at(worker, Instant::now())
    }

    /// [`Coordinator::heartbeat`] at an explicit instant.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownWorker`] for an unregistered id.
    pub fn heartbeat_at(&self, worker: &str, now: Instant) -> Result<bool, FleetError> {
        let mut state = self.lock();
        let info = state
            .workers
            .get_mut(worker)
            .ok_or_else(|| FleetError::UnknownWorker(worker.to_string()))?;
        info.last_contact = Some(now);
        match state.leases.get_mut(worker) {
            Some(lease) => {
                lease.deadline = now + self.config.lease_ttl;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Grants up to `max_jobs` experiments to a worker, checking more
    /// campaigns out of the queue as needed, and (re)starts the
    /// worker's lease clock. `known` is the set of campaign ids the
    /// worker already holds specs for — only unknown specs are
    /// returned.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownWorker`] for an unregistered id; engine
    /// failures checking campaigns out.
    pub fn lease(
        &self,
        worker: &str,
        max_jobs: usize,
        known: &BTreeSet<String>,
    ) -> Result<LeaseGrant, FleetError> {
        self.lease_at(worker, max_jobs, known, Instant::now())
    }

    /// [`Coordinator::lease`] at an explicit instant.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownWorker`] for an unregistered id; engine
    /// failures checking campaigns out.
    pub fn lease_at(
        &self,
        worker: &str,
        max_jobs: usize,
        known: &BTreeSet<String>,
        now: Instant,
    ) -> Result<LeaseGrant, FleetError> {
        // Wall-clock (not the caller's synthetic `now`): the histogram
        // measures real handling latency even under `_at` tests.
        let wall = Instant::now();
        {
            let mut state = self.lock();
            let info = state
                .workers
                .get_mut(worker)
                .ok_or_else(|| FleetError::UnknownWorker(worker.to_string()))?;
            info.last_contact = Some(now);
            // A new lease supersedes the worker's previous one: our
            // (sequential pull-loop) workers only re-lease after their
            // last batch is fully uploaded, so any job still listed was
            // *dropped* — upload retries exhausted, or the job skipped
            // because the campaign could not be rebuilt locally.
            // Requeue those now; waiting for expiry would never fire,
            // since the live worker's contacts keep extending the
            // deadline.
            if let Some(prev) = state.leases.remove(worker) {
                let requeued = Self::requeue_lease_jobs(&mut state, &prev, worker);
                drop(state);
                self.note_requeue(worker, "lease_superseded", &requeued);
            }
        }
        let want = max_jobs.clamp(1, self.config.lease_batch_max);
        let mut jobs: Vec<LeasedJob> = Vec::new();
        let fill = loop {
            // Fill from campaigns already checked out, oldest job id
            // first (BTreeMap order — queue ids are sequential). Jobs
            // are popped off `pending` here and only become in-flight
            // when the lease is finalized below.
            {
                let mut state = self.lock();
                for (id, c) in state.active.iter_mut() {
                    while jobs.len() < want {
                        let Some((point, sources)) = c.pending.pop_front() else {
                            break;
                        };
                        jobs.push(LeasedJob {
                            campaign: id.clone(),
                            point,
                            sources,
                            modules: c.checkout.modules.clone(),
                        });
                    }
                    if jobs.len() >= want {
                        break;
                    }
                }
            }
            if jobs.len() >= want {
                break Ok(());
            }
            // Not enough pending work: check the next queued campaign
            // out of the engine (fairness order) — unless a shutdown
            // drain is in progress, in which case new checkouts would
            // be stranded. Preparation can be expensive (parse, scan,
            // mutant rendering), so it runs WITHOUT the fleet lock:
            // heartbeats, uploads, and expiry ticks proceed meanwhile.
            if self.draining.load(std::sync::atomic::Ordering::SeqCst) {
                break Ok(());
            }
            let checked = {
                let mut service = self.service.lock();
                match service.checkout_next() {
                    Ok(Some(checkout)) if checkout.pending.is_empty() => {
                        // Nothing to distribute (empty plan, or every
                        // point failed mutation and was pre-recorded):
                        // complete or requeue it right here.
                        match service.checkin(checkout) {
                            Ok(_) => continue,
                            Err(e) => break Err(FleetError::Engine(e)),
                        }
                    }
                    Ok(other) => other,
                    Err(e) => break Err(FleetError::Engine(e)),
                }
            };
            let Some(mut checkout) = checked else {
                break Ok(()); // queue drained
            };
            let id = checkout.id.clone();
            let pending: VecDeque<_> =
                std::mem::take(&mut checkout.pending).into_iter().collect();
            let done = checkout.checkpoint.completed_ids();
            self.lock().active.insert(
                id,
                ActiveCampaign {
                    checkout,
                    pending,
                    in_flight: BTreeMap::new(),
                    requeues: BTreeMap::new(),
                    done,
                },
            );
        };
        let mut state = self.lock();
        if let Err(e) = fill {
            // Return the gathered-but-never-leased jobs to their pools
            // so an engine failure cannot strand them.
            for job in jobs {
                if let Some(c) = state.active.get_mut(&job.campaign) {
                    c.pending.push_front((job.point, job.sources));
                }
            }
            return Err(e);
        }
        // Finalize: mark the jobs in-flight and record the lease (the
        // worker's clock restarts on any grant, including an empty one
        // — the contact proves it is alive).
        for job in &jobs {
            if let Some(c) = state.active.get_mut(&job.campaign) {
                c.in_flight.insert(
                    job.point.id,
                    InFlight {
                        worker: worker.to_string(),
                        point: job.point.clone(),
                        sources: job.sources.clone(),
                    },
                );
            }
        }
        let deadline = now + self.config.lease_ttl;
        let lease = state.leases.entry(worker.to_string()).or_insert(Lease {
            jobs: Vec::new(),
            deadline,
        });
        lease.deadline = deadline;
        for job in &jobs {
            lease.jobs.push((job.campaign.clone(), job.point.id));
        }
        state.counters.leases_granted += 1;
        state.counters.jobs_leased += jobs.len() as u64;
        let trace_id = format!("t-{:06}", state.counters.leases_granted);
        // Ship specs the worker lacks.
        let mut new_campaigns: Vec<(String, CampaignSpec)> = Vec::new();
        for job in &jobs {
            if known.contains(&job.campaign)
                || new_campaigns.iter().any(|(id, _)| id == &job.campaign)
            {
                continue;
            }
            let spec = state.active[&job.campaign].checkout.spec.clone();
            new_campaigns.push((job.campaign.clone(), spec));
        }
        drop(state);
        // One lease span per campaign that got jobs (empty leases are
        // routine polling, not timeline events).
        let mut per_campaign: BTreeMap<&str, usize> = BTreeMap::new();
        for job in &jobs {
            *per_campaign.entry(job.campaign.as_str()).or_insert(0) += 1;
        }
        let elapsed = wall.elapsed();
        for (campaign, n) in &per_campaign {
            self.trace.record_phase(
                campaign,
                "coordinator",
                &format!("lease {trace_id} → {worker} ({n} jobs)"),
                wall,
                elapsed,
                false,
            );
        }
        self.lease_seconds.observe_duration(elapsed);
        Ok(LeaseGrant {
            jobs,
            new_campaigns,
            trace_id,
        })
    }

    /// Requeues a lease's still-unresulted jobs (shared by expiry and
    /// lease supersession). Jobs whose in-flight entry no longer names
    /// `worker` — resulted, or requeued and re-leased elsewhere — are
    /// left alone. Returns how many jobs went back per campaign, so
    /// callers can log and trace the event with its cause attached.
    fn requeue_lease_jobs(
        state: &mut FleetState,
        lease: &Lease,
        worker: &str,
    ) -> BTreeMap<String, usize> {
        let mut requeued: BTreeMap<String, usize> = BTreeMap::new();
        for (campaign_id, point_id) in &lease.jobs {
            let Some(c) = state.active.get_mut(campaign_id) else {
                continue; // campaign completed meanwhile
            };
            let owned = c
                .in_flight
                .get(point_id)
                .is_some_and(|f| f.worker == worker);
            if !owned {
                continue;
            }
            let flight = c.in_flight.remove(point_id).expect("checked above");
            c.pending.push_back((flight.point, flight.sources));
            *c.requeues.entry(*point_id).or_insert(0) += 1;
            state.counters.jobs_requeued += 1;
            *requeued.entry(campaign_id.clone()).or_insert(0) += 1;
        }
        requeued
    }

    /// Logs and traces one requeue event (lease expiry or supersession).
    fn note_requeue(&self, worker: &str, cause: &str, requeued: &BTreeMap<String, usize>) {
        for (campaign, n) in requeued {
            obs::log!(
                Level::Warn,
                cause,
                "worker" => worker,
                "campaign" => campaign.as_str(),
                "requeued" => *n as u64,
            );
            self.trace.record_phase(
                campaign,
                "coordinator",
                &format!("{cause} {worker} ({n} jobs)"),
                Instant::now(),
                Duration::ZERO,
                true,
            );
        }
    }

    /// Records uploaded results. Idempotent: a point already in the
    /// campaign's checkpoint (or a campaign already completed) counts
    /// as a duplicate and is dropped — the **first write wins**,
    /// deterministically, so a worker racing its own expired lease
    /// cannot double-record. Campaigns whose last result lands here are
    /// completed through the engine's single-node code path.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownWorker`] for an unregistered id; checkpoint
    /// I/O or engine failures.
    pub fn report_results(
        &self,
        worker: &str,
        results: Vec<(String, ExperimentResult)>,
    ) -> Result<ResultsSummary, FleetError> {
        self.report_results_at(worker, results, Instant::now())
    }

    /// [`Coordinator::report_results`] at an explicit instant.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownWorker`] for an unregistered id; checkpoint
    /// I/O or engine failures.
    pub fn report_results_at(
        &self,
        worker: &str,
        results: Vec<(String, ExperimentResult)>,
        now: Instant,
    ) -> Result<ResultsSummary, FleetError> {
        let wall = Instant::now();
        let mut state = self.lock();
        let info = state
            .workers
            .get_mut(worker)
            .ok_or_else(|| FleetError::UnknownWorker(worker.to_string()))?;
        info.last_contact = Some(now);
        let mut summary = ResultsSummary::default();
        let mut touched: BTreeSet<String> = BTreeSet::new();
        let mut retired: Vec<(String, u64)> = Vec::new();
        let mut uploaded: BTreeMap<String, usize> = BTreeMap::new();
        for (campaign_id, result) in results {
            *uploaded.entry(campaign_id.clone()).or_insert(0) += 1;
            let Some(c) = state.active.get_mut(&campaign_id) else {
                // Campaign finished (or was never distributed): a late
                // duplicate from a slow worker.
                summary.duplicates += 1;
                continue;
            };
            if c.done.contains(&result.point_id) {
                summary.duplicates += 1;
            } else {
                c.checkout
                    .checkpoint
                    .record(&result)
                    .map_err(FleetError::Io)?;
                c.done.insert(result.point_id);
                summary.accepted += 1;
            }
            // Retire the job wherever it currently lives: in flight
            // (normal case) or back in pending (its original lease
            // expired but the slow upload still arrived first).
            c.in_flight.remove(&result.point_id);
            c.pending.retain(|(p, _)| p.id != result.point_id);
            retired.push((campaign_id.clone(), result.point_id));
            touched.insert(campaign_id);
        }
        // Drop retired jobs from every lease so a later expiry cannot
        // requeue work that is already recorded.
        for lease in state.leases.values_mut() {
            lease.jobs.retain(|entry| !retired.contains(entry));
        }
        // Complete campaigns whose plan is now fully recorded.
        for id in touched {
            let done = {
                let c = &state.active[&id];
                c.done.len() >= c.checkout.total
            };
            if !done {
                continue;
            }
            let c = state.active.remove(&id).expect("touched campaign is active");
            let completed = self
                .service
                .lock()
                .checkin(c.checkout)
                .map_err(FleetError::Engine)?;
            if completed {
                state.counters.campaigns_completed += 1;
                obs::log!(
                    Level::Info,
                    "campaign_completed",
                    "campaign" => id.as_str(),
                    "worker" => worker,
                );
                self.trace.record_phase(
                    &id,
                    "coordinator",
                    "complete",
                    wall,
                    wall.elapsed(),
                    false,
                );
                summary.completed.push(id);
            }
        }
        state.counters.results_accepted += summary.accepted;
        state.counters.results_duplicate += summary.duplicates;
        drop(state);
        let elapsed = wall.elapsed();
        for (campaign, n) in &uploaded {
            self.trace.record_phase(
                campaign,
                "coordinator",
                &format!("upload ← {worker} ({n} results)"),
                wall,
                elapsed,
                false,
            );
        }
        self.checkin_seconds.observe_duration(elapsed);
        Ok(summary)
    }

    /// Expires leases past their deadline, requeueing each unresulted
    /// job **exactly once** (the lease is removed as it expires, so the
    /// next tick cannot requeue the same jobs again). Returns the
    /// number of jobs requeued.
    pub fn tick(&self) -> usize {
        self.tick_at(Instant::now())
    }

    /// [`Coordinator::tick`] at an explicit instant.
    pub fn tick_at(&self, now: Instant) -> usize {
        let mut state = self.lock();
        let expired: Vec<String> = state
            .leases
            .iter()
            .filter(|(_, lease)| lease.deadline < now)
            .map(|(worker, _)| worker.clone())
            .collect();
        let mut requeued = 0usize;
        let mut noted: Vec<(String, BTreeMap<String, usize>)> = Vec::new();
        for worker in expired {
            let lease = state.leases.remove(&worker).expect("expired lease exists");
            state.counters.leases_expired += 1;
            let per_campaign = Self::requeue_lease_jobs(&mut state, &lease, &worker);
            requeued += per_campaign.values().sum::<usize>();
            noted.push((worker, per_campaign));
        }
        drop(state);
        for (worker, per_campaign) in noted {
            self.note_requeue(&worker, "lease_expired", &per_campaign);
        }
        requeued
    }

    /// Returns every checked-out campaign to the engine (completing the
    /// finished ones, requeueing the rest) and drops all leases. Called
    /// on graceful shutdown so no job is stranded `Running`.
    ///
    /// # Errors
    ///
    /// Engine failures returning campaigns.
    pub fn drain(&self) -> Result<(), FleetError> {
        self.draining.store(true, std::sync::atomic::Ordering::SeqCst);
        let mut state = self.lock();
        let ids: Vec<String> = state.active.keys().cloned().collect();
        let leases = state.leases.len();
        obs::log!(
            Level::Info,
            "coordinator_drain",
            "campaigns" => ids.len() as u64,
            "leases" => leases as u64,
        );
        for id in ids {
            let c = state.active.remove(&id).expect("listed id is active");
            self.service
                .lock()
                .checkin(c.checkout)
                .map_err(FleetError::Engine)?;
        }
        state.leases.clear();
        Ok(())
    }

    /// Per-point requeue counters of an active campaign (test/metrics
    /// surface; empty once the campaign completed).
    pub fn requeue_counts(&self, campaign: &str) -> BTreeMap<u64, u64> {
        self.lock()
            .active
            .get(campaign)
            .map(|c| c.requeues.clone())
            .unwrap_or_default()
    }

    /// Total jobs requeued by lease expiry so far.
    pub fn jobs_requeued_total(&self) -> u64 {
        self.lock().counters.jobs_requeued
    }

    /// Appends the fleet gauges (`fleet_*`) to a metrics collection.
    pub fn append_metrics(&self, out: &mut Vec<(String, u64)>) {
        self.append_metrics_at(out, Instant::now());
    }

    /// [`Coordinator::append_metrics`] at an explicit instant.
    pub fn append_metrics_at(&self, out: &mut Vec<(String, u64)>, now: Instant) {
        let state = self.lock();
        let live = state
            .workers
            .values()
            .filter(|w| {
                w.last_contact
                    .is_some_and(|t| now.saturating_duration_since(t) <= self.config.lease_ttl)
            })
            .count();
        let pending: usize = state.active.values().map(|c| c.pending.len()).sum();
        let in_flight: usize = state.active.values().map(|c| c.in_flight.len()).sum();
        let c = &state.counters;
        out.push(("fleet_workers_registered".into(), state.workers.len() as u64));
        out.push(("fleet_workers_live".into(), live as u64));
        out.push(("fleet_campaigns_active".into(), state.active.len() as u64));
        out.push(("fleet_jobs_pending".into(), pending as u64));
        out.push(("fleet_jobs_leased".into(), in_flight as u64));
        out.push(("fleet_leases_granted_total".into(), c.leases_granted));
        out.push(("fleet_leases_expired_total".into(), c.leases_expired));
        out.push(("fleet_jobs_leased_total".into(), c.jobs_leased));
        out.push(("fleet_jobs_requeued_total".into(), c.jobs_requeued));
        out.push(("fleet_results_accepted_total".into(), c.results_accepted));
        out.push(("fleet_results_duplicate_total".into(), c.results_duplicate));
        out.push(("fleet_campaigns_completed_total".into(), c.campaigns_completed));
        for (id, info) in &state.workers {
            if let Some(t) = info.last_contact {
                out.push((
                    format!("fleet_worker_heartbeat_age_ms{{worker=\"{id}\"}}"),
                    now.saturating_duration_since(t).as_millis() as u64,
                ));
            }
            out.push((
                format!("fleet_worker_parallelism{{worker=\"{id}\"}}"),
                info.parallelism as u64,
            ));
        }
    }

    /// Merges worker-shipped phase spans into the campaign timelines.
    ///
    /// Each span self-anchors: its `age` says how long before the
    /// upload send it started, so its coordinator-clock start is the
    /// campaign's current trace offset minus that age (clamped at the
    /// campaign epoch — no cross-host clock agreement needed). Spans
    /// for unknown campaigns are dropped: telemetry must never grow
    /// state for ids the queue never issued.
    pub fn record_wire_spans(&self, worker: &str, spans: &[WireSpan]) {
        for span in spans {
            let Some(offset) = self.trace.offset(&span.campaign) else {
                continue;
            };
            self.trace.record(
                &span.campaign,
                trace::Span {
                    service: worker.to_string(),
                    name: span.name.clone(),
                    start: (offset - span.age.max(0.0)).max(0.0),
                    duration: span.duration.max(0.0),
                    failed: span.failed,
                },
            );
        }
    }
}
