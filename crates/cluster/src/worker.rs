//! The worker agent: pulls leases from a coordinator, executes the
//! experiments in the local sandbox, and streams results back.
//!
//! ```text
//!  register ─▶ loop: lease ─▶ build/reuse Workflow per campaign
//!     │                 │        (parse once, prepared-program reuse)
//!     │                 ▼
//!     │          ParallelExecutor::run (N experiments at once)
//!     │                 │
//!     │                 ▼
//!     │          upload results (retry + backoff; coordinator dedups,
//!     │          so retries are safe even after a mid-flight error)
//!     └─ heartbeat thread keeps the lease alive while batches run
//! ```
//!
//! **Failover**: the agent takes an *ordered list* of coordinators (the
//! primary first, then warm standbys). Connection loss never exits the
//! loop — the agent rotates through the list with jittered exponential
//! backoff (`fleet_worker_reconnects_total`), keeps its worker id (the
//! registry is replicated, so a promoted standby already knows it), and
//! re-registers only when the answering coordinator returns 404.
//! In-flight batch results upload to whichever coordinator answers;
//! idempotent recording keeps the report byte-identical regardless of
//! which epoch granted the lease.
//!
//! Determinism: an experiment's outcome depends only on the campaign
//! spec, the injection point, and the rendered sources — all shipped on
//! the wire — plus the spec-seeded per-experiment RNG, so a result
//! computed here is byte-identical to one computed by the coordinator's
//! own pool.

use crate::wire;
use campaign::{CampaignSpec, HostRegistry};
use httpd::ClientPool;
use jsonlite::Value;
use obs::Level;
use profipy::workflow::Workflow;
use profipy::ExperimentResult;
use sandbox::{ParallelExecutor, SourceFile};
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Worker agent options.
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// Ordered coordinator addresses (`host:port`): the primary first,
    /// then any warm standbys. The agent registers with the first that
    /// answers and rotates through the list on connection loss.
    pub coordinators: Vec<String>,
    /// Experiments executed concurrently.
    pub parallelism: usize,
    /// Jobs requested per lease (0 = `2 × parallelism`).
    pub max_batch: usize,
    /// Initial idle backoff when a lease comes back empty; doubles up
    /// to [`WorkerConfig::idle_backoff_max`].
    pub idle_backoff: Duration,
    /// Idle backoff ceiling.
    pub idle_backoff_max: Duration,
    /// Upload attempts per result batch before the batch is abandoned
    /// to lease expiry.
    pub upload_retries: u32,
    /// Initial backoff after a lost connection (jittered, doubles up to
    /// [`WorkerConfig::reconnect_backoff_max`]).
    pub reconnect_backoff: Duration,
    /// Reconnect backoff ceiling.
    pub reconnect_backoff_max: Duration,
}

impl WorkerConfig {
    /// Defaults for a single coordinator at `addr`.
    pub fn new(coordinator: impl Into<String>) -> WorkerConfig {
        WorkerConfig {
            coordinators: vec![coordinator.into()],
            parallelism: 2,
            max_batch: 0,
            idle_backoff: Duration::from_millis(25),
            idle_backoff_max: Duration::from_millis(500),
            upload_retries: 5,
            reconnect_backoff: Duration::from_millis(50),
            reconnect_backoff_max: Duration::from_secs(2),
        }
    }

    /// Appends a standby coordinator to the failover list.
    #[must_use]
    pub fn with_standby(mut self, addr: impl Into<String>) -> WorkerConfig {
        self.coordinators.push(addr.into());
        self
    }

    fn batch(&self) -> usize {
        if self.max_batch == 0 {
            (self.parallelism * 2).max(1)
        } else {
            self.max_batch
        }
    }
}

/// What an agent did over its lifetime.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Experiments executed.
    pub executed: u64,
    /// Leases pulled (empty ones included).
    pub leases: u64,
    /// Leases that came back without jobs.
    pub empty_leases: u64,
    /// Result batches uploaded successfully.
    pub uploads: u64,
    /// Upload attempts that failed and were retried.
    pub upload_retries: u64,
    /// Result batches abandoned after exhausting every upload retry
    /// (the jobs return to the pool via lease expiry/supersession).
    pub upload_failures: u64,
    /// Jobs skipped because their campaign could not be rebuilt
    /// locally (unknown host, rebind failure); lease expiry returns
    /// them to the pool for another worker.
    pub skipped: u64,
    /// Coordinator reconnects: failovers to another coordinator plus
    /// re-registrations after a 404.
    pub reconnects: u64,
}

/// The coordinator the agent currently talks to. Shared between the
/// lease loop and the heartbeat thread, so a failover redirects both.
struct Session {
    addr: String,
    id: String,
}

/// A running agent; stop it to get the stats back.
pub struct WorkerHandle {
    id: String,
    stop: Arc<AtomicBool>,
    main: Option<JoinHandle<WorkerStats>>,
    heartbeat: Option<JoinHandle<()>>,
}

impl WorkerHandle {
    /// The coordinator-assigned worker id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Signals the agent to stop after its current batch and joins it.
    pub fn stop(mut self) -> WorkerStats {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(heartbeat) = self.heartbeat.take() {
            let _ = heartbeat.join();
        }
        match self.main.take() {
            Some(main) => main.join().unwrap_or_default(),
            None => WorkerStats::default(),
        }
    }
}

/// The agent entry point.
pub struct WorkerAgent;

impl WorkerAgent {
    /// Registers with the first answering coordinator and starts the
    /// lease/execute loop plus a heartbeat thread. The host `registry`
    /// must resolve every host name the distributed specs reference
    /// (mirror the coordinator's).
    ///
    /// # Errors
    ///
    /// Registration failures — only after every coordinator in the list
    /// refused or stayed unreachable across several backed-off passes.
    pub fn start(config: WorkerConfig, registry: HostRegistry) -> io::Result<WorkerHandle> {
        let pool = Arc::new(ClientPool::new());
        let mut rng = seed_rng(&config.coordinators.join(","));
        let mut last_error = io::Error::new(io::ErrorKind::AddrNotAvailable, "no coordinators");
        let mut registered = None;
        'passes: for round in 0..3u32 {
            for addr in &config.coordinators {
                match register_at(&pool, addr, config.parallelism) {
                    Ok(ok) => {
                        registered = Some((addr.clone(), ok));
                        break 'passes;
                    }
                    Err(e) => {
                        obs::log!(
                            Level::Warn,
                            "worker_register_failed",
                            "coordinator" => addr.as_str(),
                            "round" => u64::from(round) + 1,
                            "error" => format!("{e}").as_str(),
                        );
                        last_error = e;
                    }
                }
            }
            let delay = config
                .reconnect_backoff
                .saturating_mul(1 << round.min(8))
                .min(config.reconnect_backoff_max);
            std::thread::sleep(jittered(&mut rng, delay));
        }
        let Some((addr, (id, heartbeat_every))) = registered else {
            return Err(last_error);
        };
        let session = Arc::new(Mutex::new(Session {
            addr,
            id: id.clone(),
        }));
        let stop = Arc::new(AtomicBool::new(false));

        let hb_pool = pool.clone();
        let hb_stop = stop.clone();
        let hb_session = session.clone();
        let heartbeat = std::thread::Builder::new()
            .name(format!("{id}-heartbeat"))
            .spawn(move || {
                while !hb_stop.load(Ordering::SeqCst) {
                    // Sleep in small slices so stop() is prompt.
                    let mut slept = Duration::ZERO;
                    while slept < heartbeat_every && !hb_stop.load(Ordering::SeqCst) {
                        let slice = Duration::from_millis(20).min(heartbeat_every - slept);
                        std::thread::sleep(slice);
                        slept += slice;
                    }
                    if hb_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    // Best-effort, aimed at wherever the lease loop is
                    // currently connected: a missed beat only risks an
                    // early lease expiry, which the dedup makes
                    // harmless.
                    let (addr, worker) = {
                        let s = hb_session.lock().unwrap_or_else(|p| p.into_inner());
                        (s.addr.clone(), s.id.clone())
                    };
                    let _ = hb_pool.post_json(
                        &addr,
                        &format!("/api/workers/{worker}/heartbeat"),
                        "{}",
                    );
                }
            })
            .expect("spawn heartbeat thread");

        let main_stop = stop.clone();
        let main = std::thread::Builder::new()
            .name(id.clone())
            .spawn(move || run_loop(&config, &registry, &pool, &session, &main_stop))
            .expect("spawn worker thread");

        Ok(WorkerHandle {
            id,
            stop,
            main: Some(main),
            heartbeat: Some(heartbeat),
        })
    }
}

/// One registration attempt. Returns the assigned id and the advertised
/// heartbeat cadence.
fn register_at(
    pool: &ClientPool,
    addr: &str,
    parallelism: usize,
) -> io::Result<(String, Duration)> {
    let register = pool.post_json(
        addr,
        "/api/workers/register",
        &Value::obj(vec![(
            "parallelism",
            Value::UInt(parallelism.max(1) as u64),
        )])
        .compact(),
    )?;
    if register.status != 201 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("registration refused: {} {}", register.status, register.text()),
        ));
    }
    let reply = jsonlite::parse(&register.text())
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let id = reply
        .get("id")
        .and_then(Value::as_str)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "registration without id"))?
        .to_string();
    let heartbeat_every = Duration::from_millis(
        reply
            .get("heartbeat_ms")
            .and_then(Value::as_u64)
            .unwrap_or(2000)
            .max(10),
    );
    Ok((id, heartbeat_every))
}

/// The agent's failover machinery: the coordinator ring, the shared
/// session, and the jittered reconnect backoff. Every transition is
/// counted (`fleet_worker_reconnects_total`) and logged — an agent
/// never gives up on a connection error silently.
struct Failover<'a> {
    pool: &'a ClientPool,
    config: &'a WorkerConfig,
    session: &'a Arc<Mutex<Session>>,
    reconnects: obs::Counter,
    delay: Duration,
    rng: u64,
}

impl Failover<'_> {
    fn current(&self) -> (String, String) {
        let s = self.session.lock().unwrap_or_else(|p| p.into_inner());
        (s.addr.clone(), s.id.clone())
    }

    /// A successful exchange: the connection is healthy again.
    fn reset(&mut self) {
        self.delay = self.config.reconnect_backoff;
    }

    /// Connection lost: advance to the next coordinator in the ring
    /// (a single-entry ring retries the same one) after a jittered,
    /// stop-aware backoff.
    fn rotate(&mut self, stats: &mut WorkerStats, stop: &AtomicBool, error: &str) {
        let (from, worker) = self.current();
        let ring = &self.config.coordinators;
        let at = ring.iter().position(|a| *a == from).unwrap_or(0);
        let to = ring[(at + 1) % ring.len()].clone();
        let backoff = jittered(&mut self.rng, self.delay);
        stats.reconnects += 1;
        self.reconnects.inc();
        obs::log!(
            Level::Warn,
            "worker_reconnect",
            "worker" => worker.as_str(),
            "from" => from.as_str(),
            "to" => to.as_str(),
            "backoff_ms" => backoff.as_millis() as u64,
            "error" => error,
        );
        self.session.lock().unwrap_or_else(|p| p.into_inner()).addr = to;
        self.delay = (self.delay * 2).min(self.config.reconnect_backoff_max);
        sleep_stoppable(backoff, stop);
    }

    /// The current coordinator answered 404 — it does not know our id
    /// (diverged registry). Re-register there; on success the session
    /// carries the new id. Returns whether re-registration succeeded.
    fn reregister(&mut self, stats: &mut WorkerStats) -> bool {
        let (addr, old) = self.current();
        match register_at(self.pool, &addr, self.config.parallelism) {
            Ok((id, _)) => {
                stats.reconnects += 1;
                self.reconnects.inc();
                obs::log!(
                    Level::Warn,
                    "worker_reregistered",
                    "coordinator" => addr.as_str(),
                    "old_id" => old.as_str(),
                    "new_id" => id.as_str(),
                );
                self.session.lock().unwrap_or_else(|p| p.into_inner()).id = id;
                true
            }
            Err(e) => {
                obs::log!(
                    Level::Warn,
                    "worker_register_failed",
                    "coordinator" => addr.as_str(),
                    "error" => format!("{e}").as_str(),
                );
                false
            }
        }
    }
}

/// One executable unit: a job joined with its campaign's workflow.
struct ReadyJob {
    campaign: String,
    workflow: Arc<Workflow>,
    point: injector::InjectionPoint,
    sources: Vec<SourceFile>,
}

/// A phase span recorded locally, awaiting shipment with the next
/// result upload (the upload's own span rides the one after it).
struct PendingSpan {
    campaign: String,
    name: String,
    start: Instant,
    duration: f64,
    failed: bool,
}

fn run_loop(
    config: &WorkerConfig,
    registry: &HostRegistry,
    pool: &ClientPool,
    session: &Arc<Mutex<Session>>,
    stop: &AtomicBool,
) -> WorkerStats {
    let mut stats = WorkerStats::default();
    // Campaign id → locally rebuilt workflow (parsed + prepared once,
    // shared by every experiment of the campaign on this worker).
    let mut workflows: BTreeMap<String, Arc<Workflow>> = BTreeMap::new();
    let executor = ParallelExecutor::new(config.parallelism.max(1) + 1);
    let mut backoff = config.idle_backoff;
    let upload_failures = obs::global().counter(
        "fleet_upload_failures_total",
        "Result batches abandoned after exhausting every upload retry.",
    );
    let mut fo = Failover {
        pool,
        config,
        session,
        reconnects: obs::global().counter(
            "fleet_worker_reconnects_total",
            "Worker coordinator reconnects (failovers and re-registrations).",
        ),
        delay: config.reconnect_backoff,
        rng: seed_rng(&session.lock().unwrap_or_else(|p| p.into_inner()).id),
    };
    // Phase spans not yet shipped: rebind/execute spans of the current
    // batch, plus the previous batch's upload span.
    let mut pending_spans: Vec<PendingSpan> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        let known: BTreeSet<String> = workflows.keys().cloned().collect();
        let request = Value::obj(vec![
            ("max_jobs", Value::UInt(config.batch() as u64)),
            (
                "known",
                Value::Arr(known.iter().map(Value::str).collect()),
            ),
        ])
        .compact();
        let (addr, id) = fo.current();
        let lease = match pool.post_json(&addr, &format!("/api/workers/{id}/lease"), &request) {
            Ok(resp) if resp.status == 200 => match jsonlite::parse(&resp.text())
                .and_then(|v| wire::lease_from_value(&v))
            {
                Ok(lease) => {
                    fo.reset();
                    lease
                }
                Err(e) => {
                    obs::log!(
                        Level::Warn,
                        "lease_decode_failed",
                        "worker" => id.as_str(),
                        "error" => e.as_str(),
                    );
                    idle(&mut backoff, config, stop);
                    continue;
                }
            },
            // This coordinator does not know us — a takeover whose
            // registry replica missed our registration. Re-register
            // (keeping the session) or move on down the ring.
            Ok(resp) if resp.status == 404 => {
                if !fo.reregister(&mut stats) {
                    fo.rotate(&mut stats, stop, "re-registration refused");
                }
                continue;
            }
            // Coordinator answering but refusing (500, overload):
            // back off and retry — leases we held expire server-side
            // on their own.
            Ok(_) => {
                idle(&mut backoff, config, stop);
                continue;
            }
            // Connection lost: fail over to the next coordinator.
            Err(e) => {
                fo.rotate(&mut stats, stop, &format!("{e}"));
                continue;
            }
        };
        stats.leases += 1;
        // Adopt newly shipped campaign specs.
        for (campaign_id, spec) in lease.new_campaigns {
            if let Some(workflow) = build_workflow(&spec, registry, &executor) {
                workflows.insert(campaign_id, Arc::new(workflow));
            }
        }
        // Join jobs with their workflows and rebind the portable points.
        let rebind_started = Instant::now();
        let mut ready: Vec<ReadyJob> = Vec::new();
        for job in lease.jobs {
            let Some(workflow) = workflows.get(&job.campaign) else {
                stats.skipped += 1;
                obs::log!(
                    Level::Warn,
                    "job_skipped",
                    "worker" => id.as_str(),
                    "campaign" => job.campaign.as_str(),
                    "reason" => "campaign not rebuilt locally",
                );
                continue;
            };
            match wire::rebind_point(&job.point, workflow.modules()) {
                Ok(point) => ready.push(ReadyJob {
                    campaign: job.campaign,
                    workflow: workflow.clone(),
                    point,
                    sources: job.sources,
                }),
                Err(e) => {
                    stats.skipped += 1;
                    obs::log!(
                        Level::Warn,
                        "job_skipped",
                        "worker" => id.as_str(),
                        "campaign" => job.campaign.as_str(),
                        "reason" => e.as_str(),
                    );
                }
            }
        }
        if ready.is_empty() {
            stats.empty_leases += 1;
            idle(&mut backoff, config, stop);
            continue;
        }
        backoff = config.idle_backoff;
        let rebind_elapsed = rebind_started.elapsed().as_secs_f64();
        for (campaign, n) in count_per_campaign(ready.iter().map(|j| j.campaign.as_str())) {
            pending_spans.push(PendingSpan {
                campaign,
                name: format!("rebind ({n} jobs)"),
                start: rebind_started,
                duration: rebind_elapsed,
                failed: false,
            });
        }
        // Execute the batch in the local sandbox, `parallelism` at a
        // time.
        let outcomes: Vec<(String, ExperimentResult, Instant, f64)> =
            executor.run(ready.len(), |i| {
                let job = &ready[i];
                let started = Instant::now();
                let result = job
                    .workflow
                    .run_experiment_with_sources(&job.point, &job.sources);
                let duration = started.elapsed().as_secs_f64();
                (job.campaign.clone(), result, started, duration)
            });
        let mut results: Vec<(String, ExperimentResult)> = Vec::with_capacity(outcomes.len());
        for (campaign, result, started, duration) in outcomes {
            pending_spans.push(PendingSpan {
                campaign: campaign.clone(),
                name: format!("execute #{}", result.point_id),
                start: started,
                duration,
                failed: result.failed_round1(),
            });
            results.push((campaign, result));
        }
        stats.executed += results.len() as u64;
        // Stream the batch back with retry/backoff. Retrying a
        // possibly-delivered upload is safe: the coordinator records
        // results idempotently (first write wins). The pending spans
        // ride along, each anchored by its age relative to this send.
        let send = Instant::now();
        let spans: Vec<wire::WireSpan> = pending_spans
            .iter()
            .map(|s| wire::WireSpan {
                campaign: s.campaign.clone(),
                name: s.name.clone(),
                age: send
                    .checked_duration_since(s.start)
                    .unwrap_or_default()
                    .as_secs_f64(),
                duration: s.duration,
                failed: s.failed,
            })
            .collect();
        let mut body = wire::results_to_value(&results);
        if let Value::Obj(fields) = &mut body {
            fields.push(("trace".to_string(), Value::str(&lease.trace_id)));
            fields.push(("epoch".to_string(), Value::UInt(lease.epoch)));
            fields.push(("spans".to_string(), wire::spans_to_value(&spans)));
        }
        match upload_with_retry(
            &mut fo,
            &body.compact(),
            config.upload_retries,
            &mut stats,
            &upload_failures,
            stop,
        ) {
            Ok(reply) => {
                // Shipped spans now live coordinator-side; the upload
                // itself becomes a span on the next flush.
                pending_spans.clear();
                let upload_elapsed = send.elapsed().as_secs_f64();
                for (campaign, n) in
                    count_per_campaign(results.iter().map(|(c, _)| c.as_str()))
                {
                    pending_spans.push(PendingSpan {
                        campaign,
                        name: format!("upload ({n} results)"),
                        start: send,
                        duration: upload_elapsed,
                        failed: false,
                    });
                }
                // Free workflows of campaigns that just completed.
                if let Some(done) = reply.get("completed").and_then(Value::as_arr) {
                    for id in done.iter().filter_map(Value::as_str) {
                        workflows.remove(id);
                    }
                }
            }
            Err(_) => {
                // Abandon the batch: lease expiry (or the supersession
                // on our next lease) requeues the jobs and another
                // worker re-executes them. The spans die with the
                // batch — their results never landed.
                pending_spans.clear();
            }
        }
    }
    stats
}

/// Distinct campaigns with their batch-member counts, in first-seen
/// order.
fn count_per_campaign<'a>(ids: impl Iterator<Item = &'a str>) -> Vec<(String, usize)> {
    let mut counts: Vec<(String, usize)> = Vec::new();
    for id in ids {
        match counts.iter_mut().find(|(c, _)| c == id) {
            Some((_, n)) => *n += 1,
            None => counts.push((id.to_string(), 1)),
        }
    }
    counts
}

/// Uploads one result batch, `retries + 1` attempts in total. Each
/// attempt goes to the failover session's *current* coordinator: a
/// transport error rotates the ring (so an in-flight batch lands on
/// whichever coordinator answers), a 404 re-registers there first.
/// Success returns the coordinator's parsed reply. Exhaustion is
/// **surfaced**, not swallowed: the final error lands in the event log,
/// `stats.upload_failures`, and the process-wide
/// `fleet_upload_failures_total` counter before it is returned.
fn upload_with_retry(
    fo: &mut Failover<'_>,
    body: &str,
    retries: u32,
    stats: &mut WorkerStats,
    failures: &obs::Counter,
    stop: &AtomicBool,
) -> Result<Value, String> {
    let mut delay = Duration::from_millis(10);
    let mut last_error = String::new();
    for attempt in 0..=retries {
        let (addr, worker) = fo.current();
        let rotated = match fo
            .pool
            .post_json(&addr, &format!("/api/workers/{worker}/results"), body)
        {
            Ok(resp) if resp.status == 200 => {
                stats.uploads += 1;
                fo.reset();
                return Ok(jsonlite::parse(&resp.text()).unwrap_or(Value::Null));
            }
            Ok(resp) if resp.status == 404 => {
                last_error = format!("HTTP 404: {}", resp.text());
                if !fo.reregister(stats) {
                    fo.rotate(stats, stop, "re-registration refused");
                }
                true // the failover machinery already backed off
            }
            Ok(resp) => {
                last_error = format!("HTTP {}: {}", resp.status, resp.text());
                false
            }
            Err(e) => {
                last_error = format!("transport: {e}");
                fo.rotate(stats, stop, &last_error);
                true
            }
        };
        if attempt == retries {
            break;
        }
        stats.upload_retries += 1;
        obs::log!(
            Level::Warn,
            "upload_retry",
            "worker" => worker.as_str(),
            "attempt" => u64::from(attempt) + 1,
            "error" => last_error.as_str(),
        );
        if !rotated {
            sleep_stoppable(delay, stop);
            delay = (delay * 2).min(Duration::from_millis(500));
        }
    }
    stats.upload_failures += 1;
    failures.inc();
    let (_, worker) = fo.current();
    obs::log!(
        Level::Error,
        "upload_retries_exhausted",
        "worker" => worker.as_str(),
        "attempts" => u64::from(retries) + 1,
        "error" => last_error.as_str(),
    );
    Err(last_error)
}

fn build_workflow(
    spec: &CampaignSpec,
    registry: &HostRegistry,
    executor: &ParallelExecutor,
) -> Option<Workflow> {
    let host = registry.get(&spec.host)?;
    spec.build_workflow(host, executor.clone()).ok()
}

/// Bounded exponential idle wait, stop-aware.
fn idle(backoff: &mut Duration, config: &WorkerConfig, stop: &AtomicBool) {
    sleep_stoppable(*backoff, stop);
    *backoff = (*backoff * 2).min(config.idle_backoff_max);
}

/// Sleeps `total` in small slices, returning early on stop.
fn sleep_stoppable(total: Duration, stop: &AtomicBool) {
    let mut slept = Duration::ZERO;
    while slept < total && !stop.load(Ordering::SeqCst) {
        let slice = Duration::from_millis(10).min(total - slept);
        std::thread::sleep(slice);
        slept += slice;
    }
}

/// Seeds the jitter RNG from the process-global `RandomState` (no
/// external randomness dependency) plus a caller-supplied tag, so
/// workers sharing a host fan their retries out instead of thundering
/// together.
fn seed_rng(tag: &str) -> u64 {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    let mut hasher = RandomState::new().build_hasher();
    hasher.write(tag.as_bytes());
    hasher.finish() | 1 // xorshift must not start at 0
}

/// Uniform-ish jitter in `[delay/2, delay]` via xorshift64*.
fn jittered(rng: &mut u64, delay: Duration) -> Duration {
    *rng ^= *rng >> 12;
    *rng ^= *rng << 25;
    *rng ^= *rng >> 27;
    let r = rng.wrapping_mul(0x2545_F491_4F6C_DD1D);
    let half = delay.as_millis().max(1) as u64 / 2;
    Duration::from_millis(half.max(1) + r % half.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use httpd::{Request, Response, Router, Server, ServerConfig};

    #[test]
    fn upload_retry_exhaustion_is_surfaced_not_swallowed() {
        // A coordinator that always refuses uploads.
        let router = Router::new().route(
            "POST",
            "/api/workers/:id/results",
            |_req: &Request| Response::json(503, "{\"error\":\"overloaded\"}".to_string()),
        );
        let server = Server::bind("127.0.0.1:0", router, ServerConfig::default()).unwrap();
        let addr = server.addr().to_string();
        let pool = ClientPool::new();
        let config = WorkerConfig::new(addr.clone());
        let session = Arc::new(Mutex::new(Session {
            addr,
            id: "w-test".to_string(),
        }));
        let mut stats = WorkerStats::default();
        let failures = obs::global().counter(
            "fleet_upload_failures_total",
            "Result batches abandoned after exhausting every upload retry.",
        );
        let mut fo = Failover {
            pool: &pool,
            config: &config,
            session: &session,
            reconnects: obs::global().counter(
                "fleet_worker_reconnects_total",
                "Worker coordinator reconnects (failovers and re-registrations).",
            ),
            delay: config.reconnect_backoff,
            rng: seed_rng("w-test"),
        };
        let before = failures.value();
        let stop = AtomicBool::new(false);
        let err = upload_with_retry(
            &mut fo,
            "{\"results\": []}",
            2,
            &mut stats,
            &failures,
            &stop,
        )
        .unwrap_err();
        // The final error is returned, not discarded…
        assert!(err.contains("503"), "{err}");
        // …each non-final failure counted as a retry…
        assert_eq!(stats.upload_retries, 2);
        // …and the exhaustion surfaced in stats and the counter.
        assert_eq!(stats.upload_failures, 1);
        assert_eq!(stats.uploads, 0);
        assert_eq!(failures.value(), before + 1);
        server.shutdown();
    }

    #[test]
    fn transport_loss_rotates_the_coordinator_ring_and_counts() {
        // Two coordinators: the first address is unreachable (bound
        // then dropped), the second answers.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let router = Router::new().route(
            "POST",
            "/api/workers/:id/results",
            |_req: &Request| Response::json(200, "{\"completed\": []}".to_string()),
        );
        let server = Server::bind("127.0.0.1:0", router, ServerConfig::default()).unwrap();
        let live = server.addr().to_string();
        let pool = ClientPool::new();
        let config = WorkerConfig {
            reconnect_backoff: Duration::from_millis(5),
            ..WorkerConfig::new(dead.clone()).with_standby(live.clone())
        };
        let session = Arc::new(Mutex::new(Session {
            addr: dead,
            id: "w-rotate".to_string(),
        }));
        let mut stats = WorkerStats::default();
        let failures = obs::global().counter(
            "fleet_upload_failures_total",
            "Result batches abandoned after exhausting every upload retry.",
        );
        let reconnects = obs::global().counter(
            "fleet_worker_reconnects_total",
            "Worker coordinator reconnects (failovers and re-registrations).",
        );
        let before = reconnects.value();
        let mut fo = Failover {
            pool: &pool,
            config: &config,
            session: &session,
            reconnects,
            delay: config.reconnect_backoff,
            rng: seed_rng("w-rotate"),
        };
        let stop = AtomicBool::new(false);
        let reply = upload_with_retry(
            &mut fo,
            "{\"results\": []}",
            3,
            &mut stats,
            &failures,
            &stop,
        )
        .unwrap();
        // The batch landed on the standby after rotating off the dead
        // primary — counted, logged, never silently dropped.
        assert!(reply.get("completed").is_some());
        assert_eq!(stats.uploads, 1);
        assert!(stats.reconnects >= 1, "{stats:?}");
        assert!(fo.reconnects.value() > before);
        assert_eq!(
            session.lock().unwrap().addr,
            live,
            "session follows the ring"
        );
        server.shutdown();
    }
}
