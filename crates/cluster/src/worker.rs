//! The worker agent: pulls leases from a coordinator, executes the
//! experiments in the local sandbox, and streams results back.
//!
//! ```text
//!  register ─▶ loop: lease ─▶ build/reuse Workflow per campaign
//!     │                 │        (parse once, prepared-program reuse)
//!     │                 ▼
//!     │          ParallelExecutor::run (N experiments at once)
//!     │                 │
//!     │                 ▼
//!     │          upload results (retry + backoff; coordinator dedups,
//!     │          so retries are safe even after a mid-flight error)
//!     └─ heartbeat thread keeps the lease alive while batches run
//! ```
//!
//! Determinism: an experiment's outcome depends only on the campaign
//! spec, the injection point, and the rendered sources — all shipped on
//! the wire — plus the spec-seeded per-experiment RNG, so a result
//! computed here is byte-identical to one computed by the coordinator's
//! own pool.

use crate::wire;
use campaign::{CampaignSpec, HostRegistry};
use httpd::ClientPool;
use jsonlite::Value;
use profipy::workflow::Workflow;
use profipy::ExperimentResult;
use sandbox::{ParallelExecutor, SourceFile};
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Worker agent options.
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// Coordinator address (`host:port`).
    pub coordinator: String,
    /// Experiments executed concurrently.
    pub parallelism: usize,
    /// Jobs requested per lease (0 = `2 × parallelism`).
    pub max_batch: usize,
    /// Initial idle backoff when a lease comes back empty; doubles up
    /// to [`WorkerConfig::idle_backoff_max`].
    pub idle_backoff: Duration,
    /// Idle backoff ceiling.
    pub idle_backoff_max: Duration,
    /// Upload attempts per result batch before the batch is abandoned
    /// to lease expiry.
    pub upload_retries: u32,
}

impl WorkerConfig {
    /// Defaults for a coordinator at `addr`.
    pub fn new(coordinator: impl Into<String>) -> WorkerConfig {
        WorkerConfig {
            coordinator: coordinator.into(),
            parallelism: 2,
            max_batch: 0,
            idle_backoff: Duration::from_millis(25),
            idle_backoff_max: Duration::from_millis(500),
            upload_retries: 5,
        }
    }

    fn batch(&self) -> usize {
        if self.max_batch == 0 {
            (self.parallelism * 2).max(1)
        } else {
            self.max_batch
        }
    }
}

/// What an agent did over its lifetime.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Experiments executed.
    pub executed: u64,
    /// Leases pulled (empty ones included).
    pub leases: u64,
    /// Leases that came back without jobs.
    pub empty_leases: u64,
    /// Result batches uploaded successfully.
    pub uploads: u64,
    /// Upload attempts that failed and were retried.
    pub upload_retries: u64,
    /// Jobs skipped because their campaign could not be rebuilt
    /// locally (unknown host, rebind failure); lease expiry returns
    /// them to the pool for another worker.
    pub skipped: u64,
}

/// A running agent; stop it to get the stats back.
pub struct WorkerHandle {
    id: String,
    stop: Arc<AtomicBool>,
    main: Option<JoinHandle<WorkerStats>>,
    heartbeat: Option<JoinHandle<()>>,
}

impl WorkerHandle {
    /// The coordinator-assigned worker id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Signals the agent to stop after its current batch and joins it.
    pub fn stop(mut self) -> WorkerStats {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(heartbeat) = self.heartbeat.take() {
            let _ = heartbeat.join();
        }
        match self.main.take() {
            Some(main) => main.join().unwrap_or_default(),
            None => WorkerStats::default(),
        }
    }
}

/// The agent entry point.
pub struct WorkerAgent;

impl WorkerAgent {
    /// Registers with the coordinator and starts the lease/execute
    /// loop plus a heartbeat thread. The host `registry` must resolve
    /// every host name the distributed specs reference (mirror the
    /// coordinator's).
    ///
    /// # Errors
    ///
    /// Registration failures (coordinator unreachable or refusing).
    pub fn start(config: WorkerConfig, registry: HostRegistry) -> io::Result<WorkerHandle> {
        let pool = Arc::new(ClientPool::new());
        let register = pool.post_json(
            &config.coordinator,
            "/api/workers/register",
            &Value::obj(vec![(
                "parallelism",
                Value::UInt(config.parallelism.max(1) as u64),
            )])
            .compact(),
        )?;
        if register.status != 201 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("registration refused: {} {}", register.status, register.text()),
            ));
        }
        let reply = jsonlite::parse(&register.text())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let id = reply
            .get("id")
            .and_then(Value::as_str)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "registration without id"))?
            .to_string();
        let heartbeat_every = Duration::from_millis(
            reply
                .get("heartbeat_ms")
                .and_then(Value::as_u64)
                .unwrap_or(2000)
                .max(10),
        );
        let stop = Arc::new(AtomicBool::new(false));

        let hb_pool = pool.clone();
        let hb_stop = stop.clone();
        let hb_addr = config.coordinator.clone();
        let hb_id = id.clone();
        let heartbeat = std::thread::Builder::new()
            .name(format!("{hb_id}-heartbeat"))
            .spawn(move || {
                while !hb_stop.load(Ordering::SeqCst) {
                    // Sleep in small slices so stop() is prompt.
                    let mut slept = Duration::ZERO;
                    while slept < heartbeat_every && !hb_stop.load(Ordering::SeqCst) {
                        let slice = Duration::from_millis(20).min(heartbeat_every - slept);
                        std::thread::sleep(slice);
                        slept += slice;
                    }
                    if hb_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    // Best-effort: a missed beat only risks an early
                    // lease expiry, which the dedup makes harmless.
                    let _ = hb_pool.post_json(
                        &hb_addr,
                        &format!("/api/workers/{hb_id}/heartbeat"),
                        "{}",
                    );
                }
            })
            .expect("spawn heartbeat thread");

        let main_stop = stop.clone();
        let main_id = id.clone();
        let main = std::thread::Builder::new()
            .name(main_id.clone())
            .spawn(move || run_loop(&config, &registry, &pool, &main_id, &main_stop))
            .expect("spawn worker thread");

        Ok(WorkerHandle {
            id,
            stop,
            main: Some(main),
            heartbeat: Some(heartbeat),
        })
    }
}

/// One executable unit: a job joined with its campaign's workflow.
struct ReadyJob {
    campaign: String,
    workflow: Arc<Workflow>,
    point: injector::InjectionPoint,
    sources: Vec<SourceFile>,
}

fn run_loop(
    config: &WorkerConfig,
    registry: &HostRegistry,
    pool: &ClientPool,
    id: &str,
    stop: &AtomicBool,
) -> WorkerStats {
    let mut stats = WorkerStats::default();
    // Campaign id → locally rebuilt workflow (parsed + prepared once,
    // shared by every experiment of the campaign on this worker).
    let mut workflows: BTreeMap<String, Arc<Workflow>> = BTreeMap::new();
    let executor = ParallelExecutor::new(config.parallelism.max(1) + 1);
    let mut backoff = config.idle_backoff;
    let lease_path = format!("/api/workers/{id}/lease");
    let results_path = format!("/api/workers/{id}/results");
    while !stop.load(Ordering::SeqCst) {
        let known: BTreeSet<String> = workflows.keys().cloned().collect();
        let request = Value::obj(vec![
            ("max_jobs", Value::UInt(config.batch() as u64)),
            (
                "known",
                Value::Arr(known.iter().map(Value::str).collect()),
            ),
        ])
        .compact();
        let lease = match pool.post_json(&config.coordinator, &lease_path, &request) {
            Ok(resp) if resp.status == 200 => match jsonlite::parse(&resp.text())
                .and_then(|v| wire::lease_from_value(&v))
            {
                Ok(lease) => lease,
                Err(_) => {
                    idle(&mut backoff, config, stop);
                    continue;
                }
            },
            // Coordinator down, restarted, or refusing: back off and
            // retry — leases we held expire server-side on their own.
            _ => {
                idle(&mut backoff, config, stop);
                continue;
            }
        };
        stats.leases += 1;
        // Adopt newly shipped campaign specs.
        for (campaign_id, spec) in lease.new_campaigns {
            if let Some(workflow) = build_workflow(&spec, registry, &executor) {
                workflows.insert(campaign_id, Arc::new(workflow));
            }
        }
        // Join jobs with their workflows and rebind the portable points.
        let mut ready: Vec<ReadyJob> = Vec::new();
        for job in lease.jobs {
            let Some(workflow) = workflows.get(&job.campaign) else {
                stats.skipped += 1;
                continue;
            };
            match wire::rebind_point(&job.point, workflow.modules()) {
                Ok(point) => ready.push(ReadyJob {
                    campaign: job.campaign,
                    workflow: workflow.clone(),
                    point,
                    sources: job.sources,
                }),
                Err(_) => stats.skipped += 1,
            }
        }
        if ready.is_empty() {
            stats.empty_leases += 1;
            idle(&mut backoff, config, stop);
            continue;
        }
        backoff = config.idle_backoff;
        // Execute the batch in the local sandbox, `parallelism` at a
        // time.
        let results: Vec<(String, ExperimentResult)> = executor.run(ready.len(), |i| {
            let job = &ready[i];
            (
                job.campaign.clone(),
                job.workflow
                    .run_experiment_with_sources(&job.point, &job.sources),
            )
        });
        stats.executed += results.len() as u64;
        // Stream the batch back with retry/backoff. Retrying a
        // possibly-delivered upload is safe: the coordinator records
        // results idempotently (first write wins).
        let body = wire::results_to_value(&results).compact();
        let mut delay = Duration::from_millis(10);
        for attempt in 0..=config.upload_retries {
            match pool.post_json(&config.coordinator, &results_path, &body) {
                Ok(resp) if resp.status == 200 => {
                    stats.uploads += 1;
                    // Free workflows of campaigns that just completed.
                    if let Ok(v) = jsonlite::parse(&resp.text()) {
                        if let Some(done) = v.get("completed").and_then(Value::as_arr) {
                            for id in done.iter().filter_map(Value::as_str) {
                                workflows.remove(id);
                            }
                        }
                    }
                    break;
                }
                _ if attempt == config.upload_retries => {
                    // Abandon the batch: lease expiry will requeue the
                    // jobs and another worker (or this one, later) will
                    // re-execute them.
                    break;
                }
                _ => {
                    stats.upload_retries += 1;
                    std::thread::sleep(delay);
                    delay = (delay * 2).min(Duration::from_millis(500));
                }
            }
        }
    }
    stats
}

fn build_workflow(
    spec: &CampaignSpec,
    registry: &HostRegistry,
    executor: &ParallelExecutor,
) -> Option<Workflow> {
    let host = registry.get(&spec.host)?;
    spec.build_workflow(host, executor.clone()).ok()
}

/// Bounded exponential idle wait, stop-aware.
fn idle(backoff: &mut Duration, config: &WorkerConfig, stop: &AtomicBool) {
    let mut slept = Duration::ZERO;
    while slept < *backoff && !stop.load(Ordering::SeqCst) {
        let slice = Duration::from_millis(10).min(*backoff - slept);
        std::thread::sleep(slice);
        slept += slice;
    }
    *backoff = (*backoff * 2).min(config.idle_backoff_max);
}
