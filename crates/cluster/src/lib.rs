//! `cluster` — the distributed worker fleet: lease-based cluster
//! execution for campaigns.
//!
//! The paper (§IV) pitches ProFIPy as fault injection **as-a-service**
//! with container-isolated, scalable experiment execution. The
//! single-process service (crates `campaign` + `httpd`) caps campaign
//! throughput at one machine's executor pool; this crate scales the
//! *execution* horizontally while keeping planning, checkpointing, and
//! reporting centralized:
//!
//! * [`coordinator::Coordinator`] — wraps the persistent `JobQueue`
//!   with **time-bounded leases**: workers pull batches of experiments
//!   (injection point + portable mutant sources), heartbeat to keep
//!   their lease alive, and upload results idempotently (first write
//!   wins). A worker that goes silent gets its leased jobs requeued
//!   exactly once per expiry, so a killed worker costs one re-execution
//!   of its in-flight batch — never a lost or doubled experiment.
//! * [`server::FleetServer`] — mounts the fleet REST surface
//!   (`POST /api/workers/register|:id/lease|:id/heartbeat|:id/results`)
//!   onto the full campaign API, one `httpd` server for clients and
//!   workers alike, plus a background lease-expiry sweep.
//! * [`worker::WorkerAgent`] — the pull-based worker: registers,
//!   leases, executes in the local sandbox via the prepared-program
//!   path, and streams results back with retry/backoff over a
//!   keep-alive [`httpd::ClientPool`].
//!
//! **Crash tolerance** (the HA layer, pinned by `tests/ha.rs`):
//!
//! * [`walog::LeaseLog`] — a torn-tail-tolerant `fleet-leases.jsonl`
//!   WAL recording every lease grant/extend/expire/result, with
//!   periodic compaction snapshots, so a restarted or standby
//!   coordinator reconstructs in-flight leases instead of orphaning
//!   them. Every restart bumps a monotonic **epoch** stamped on leases
//!   and echoed by uploads — late uploads from a dead epoch are
//!   absorbed idempotently, and counted.
//! * [`standby::StandbyServer`] — the warm standby: tails the primary's
//!   logs over HTTP, detects primary death via missed probes, and
//!   promotes itself on the listener it bound at boot, within one lease
//!   period.
//! * Worker-side failover — [`worker::WorkerAgent`] takes an ordered
//!   coordinator list and rotates through it with jittered backoff on
//!   connection loss; it never exits silently.
//!
//! **The determinism invariant** (pinned by `tests/fleet.rs` and
//! `tests/ha.rs`): a campaign distributed over any number of workers —
//! including workers killed mid-lease, and including a *coordinator*
//! killed mid-lease and replaced by its standby — produces a report
//! **byte-identical** to the same campaign run single-node, because
//! results are deterministic functions of (spec, point, sources, seed)
//! and completion funnels through the engine's single-node `checkin`
//! path.

pub mod coordinator;
pub mod server;
pub mod standby;
pub mod walog;
pub mod wire;
pub mod worker;

pub use coordinator::{
    Coordinator, FleetConfig, FleetError, LeaseGrant, LeasedJob, RecoverySummary, ResultsSummary,
};
pub use server::FleetServer;
pub use standby::{StandbyConfig, StandbyServer};
pub use walog::{LeaseLog, WalState};
pub use worker::{WorkerAgent, WorkerConfig, WorkerHandle, WorkerStats};
