//! `cluster` — the distributed worker fleet: lease-based cluster
//! execution for campaigns.
//!
//! The paper (§IV) pitches ProFIPy as fault injection **as-a-service**
//! with container-isolated, scalable experiment execution. The
//! single-process service (crates `campaign` + `httpd`) caps campaign
//! throughput at one machine's executor pool; this crate scales the
//! *execution* horizontally while keeping planning, checkpointing, and
//! reporting centralized:
//!
//! * [`coordinator::Coordinator`] — wraps the persistent `JobQueue`
//!   with **time-bounded leases**: workers pull batches of experiments
//!   (injection point + portable mutant sources), heartbeat to keep
//!   their lease alive, and upload results idempotently (first write
//!   wins). A worker that goes silent gets its leased jobs requeued
//!   exactly once per expiry, so a killed worker costs one re-execution
//!   of its in-flight batch — never a lost or doubled experiment.
//! * [`server::FleetServer`] — mounts the fleet REST surface
//!   (`POST /api/workers/register|:id/lease|:id/heartbeat|:id/results`)
//!   onto the full campaign API, one `httpd` server for clients and
//!   workers alike, plus a background lease-expiry sweep.
//! * [`worker::WorkerAgent`] — the pull-based worker: registers,
//!   leases, executes in the local sandbox via the prepared-program
//!   path, and streams results back with retry/backoff over a
//!   keep-alive [`httpd::ClientPool`].
//!
//! **The determinism invariant** (pinned by `tests/fleet.rs`): a
//! campaign distributed over any number of workers — including workers
//! killed mid-lease — produces a report **byte-identical** to the same
//! campaign run single-node, because results are deterministic
//! functions of (spec, point, sources, seed) and completion funnels
//! through the engine's single-node `checkin` path.

pub mod coordinator;
pub mod server;
pub mod wire;
pub mod worker;

pub use coordinator::{Coordinator, FleetConfig, FleetError, LeaseGrant, LeasedJob, ResultsSummary};
pub use server::FleetServer;
pub use worker::{WorkerAgent, WorkerConfig, WorkerHandle, WorkerStats};
