//! The durable lease log (`fleet-leases.jsonl`): a torn-tail-tolerant
//! write-ahead log of lease state, the third leg of the repo's
//! append-only-log discipline (after campaign checkpoints and the
//! worker registry).
//!
//! Every lease transition appends one JSON line:
//!
//! ```text
//! {"ev":"epoch","n":2}                                 coordinator (re)start
//! {"ev":"grant","worker":"worker-000001",
//!  "jobs":[["job-000001",3],["job-000001",4]]}         lease granted (replaces)
//! {"ev":"extend","worker":"worker-000001"}             heartbeat extension
//! {"ev":"supersede","worker":"worker-000001"}          re-lease dropped the old one
//! {"ev":"expire","worker":"worker-000001"}             lease expired, jobs requeued
//! {"ev":"result","campaign":"job-000001","point":3}    job resulted, off every lease
//! {"ev":"snapshot","epoch":2,"leases":[...]}           compaction snapshot
//! ```
//!
//! A restarted (or warm-standby) coordinator replays the log into a
//! [`WalState`] — the set of leases that were in flight when the
//! previous coordinator died — and re-arms them instead of silently
//! orphaning the work (see `Coordinator::recover`). Like the checkpoint
//! log, a torn tail from a crash mid-append is detected and dropped;
//! every complete event before it still counts. The log compacts to a
//! single snapshot line on open and every [`SNAPSHOT_EVERY`] events, so
//! heartbeat-extension noise cannot grow it without bound.
//!
//! Deadlines are deliberately **not** persisted: wall-clock instants do
//! not survive a process (let alone a host) change. Replayed leases get
//! one fresh TTL from the moment of recovery — live workers that fail
//! over get a grace window to upload their in-flight batches, and a
//! dead worker's lease expires exactly once, requeueing exactly its
//! unresulted jobs.

use jsonlite::Value;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Events between compaction snapshots before the log is rewritten.
const SNAPSHOT_EVERY: usize = 512;

/// The lease state a log replays to: the coordinator epoch and the
/// jobs each worker held when the log was last written.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WalState {
    /// Monotonic coordinator epoch: bumped on every (re)start or
    /// takeover, stamped on every lease, echoed by result uploads —
    /// the guard that lets a new primary tell late uploads from the
    /// old epoch apart from its own.
    pub epoch: u64,
    /// Worker id → the `(campaign, point)` jobs its live lease holds.
    pub leases: BTreeMap<String, Vec<(String, u64)>>,
}

impl WalState {
    /// Whether any lease currently holds `(campaign, point)`.
    fn holds(&self, campaign: &str, point: u64) -> bool {
        self.leases
            .values()
            .any(|jobs| jobs.iter().any(|(c, p)| c == campaign && *p == point))
    }

    /// Applies one parsed event. Returns `false` for a malformed or
    /// unknown event — the load loop treats that as a torn tail.
    fn apply(&mut self, v: &Value) -> bool {
        let Some(ev) = v.get("ev").and_then(Value::as_str) else {
            return false;
        };
        match ev {
            "epoch" => match v.get("n").and_then(Value::as_u64) {
                Some(n) => {
                    self.epoch = n;
                    true
                }
                None => false,
            },
            "grant" => match (v.get("worker").and_then(Value::as_str), v.get("jobs")) {
                (Some(worker), Some(jobs)) => match parse_jobs(jobs) {
                    Some(jobs) => {
                        self.leases.insert(worker.to_string(), jobs);
                        true
                    }
                    None => false,
                },
                _ => false,
            },
            "extend" => v.get("worker").and_then(Value::as_str).is_some(),
            "expire" | "supersede" => match v.get("worker").and_then(Value::as_str) {
                Some(worker) => {
                    self.leases.remove(worker);
                    true
                }
                None => false,
            },
            "result" => match (
                v.get("campaign").and_then(Value::as_str),
                v.get("point").and_then(Value::as_u64),
            ) {
                (Some(campaign), Some(point)) => {
                    for jobs in self.leases.values_mut() {
                        jobs.retain(|(c, p)| !(c == campaign && *p == point));
                    }
                    self.leases.retain(|_, jobs| !jobs.is_empty());
                    true
                }
                _ => false,
            },
            "snapshot" => {
                let Some(epoch) = v.get("epoch").and_then(Value::as_u64) else {
                    return false;
                };
                let Some(entries) = v.get("leases").and_then(Value::as_arr) else {
                    return false;
                };
                let mut leases = BTreeMap::new();
                for entry in entries {
                    let (Some(worker), Some(jobs)) = (
                        entry.get("worker").and_then(Value::as_str),
                        entry.get("jobs").and_then(parse_jobs),
                    ) else {
                        return false;
                    };
                    leases.insert(worker.to_string(), jobs);
                }
                self.epoch = epoch;
                self.leases = leases;
                true
            }
            _ => false,
        }
    }
}

fn parse_jobs(v: &Value) -> Option<Vec<(String, u64)>> {
    v.as_arr()?
        .iter()
        .map(|pair| {
            let pair = pair.as_arr().filter(|p| p.len() == 2)?;
            Some((pair[0].as_str()?.to_string(), pair[1].as_u64()?))
        })
        .collect()
}

fn jobs_to_value(jobs: &[(String, u64)]) -> Value {
    Value::Arr(
        jobs.iter()
            .map(|(c, p)| Value::Arr(vec![Value::str(c), Value::UInt(*p)]))
            .collect(),
    )
}

/// The write-ahead lease log. In-memory when opened without a path
/// (coordinators without a data dir still keep the mirror, so epoch
/// semantics work uniformly).
pub struct LeaseLog {
    path: Option<PathBuf>,
    file: Option<File>,
    state: WalState,
    events_since_snapshot: usize,
}

impl LeaseLog {
    /// An ephemeral, in-memory log.
    pub fn in_memory() -> LeaseLog {
        LeaseLog {
            path: None,
            file: None,
            state: WalState::default(),
            events_since_snapshot: 0,
        }
    }

    /// Opens (or creates) the log at `path`, replaying it into the
    /// recovered [`WalState`]. Any torn tail or trailing garbage —
    /// crash mid-append — is dropped at the first unparseable line, and
    /// the log is compacted to a clean snapshot of the replayed state.
    ///
    /// # Errors
    ///
    /// I/O errors (a *corrupt* log never errors: the valid prefix
    /// wins).
    pub fn open(path: &Path) -> io::Result<LeaseLog> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut state = WalState::default();
        if let Ok(text) = std::fs::read_to_string(path) {
            for line in text.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                let Ok(value) = jsonlite::parse(line) else {
                    break; // torn tail: the valid prefix is the truth
                };
                if !state.apply(&value) {
                    break;
                }
            }
        }
        let mut log = LeaseLog {
            path: Some(path.to_path_buf()),
            file: None,
            state,
            events_since_snapshot: 0,
        };
        // Compact on open: repairs any torn tail and drops the event
        // history the snapshot already summarizes.
        log.compact()?;
        Ok(log)
    }

    /// The current mirror state (equals the recovered state right after
    /// [`LeaseLog::open`], before any new events are recorded).
    pub fn state(&self) -> &WalState {
        &self.state
    }

    /// Records an epoch bump (coordinator start or standby takeover).
    ///
    /// # Errors
    ///
    /// I/O errors appending.
    pub fn record_epoch(&mut self, n: u64) -> io::Result<()> {
        self.state.epoch = n;
        self.append(Value::obj(vec![
            ("ev", Value::str("epoch")),
            ("n", Value::UInt(n)),
        ]))
    }

    /// Records a lease grant: `worker` now holds exactly `jobs` (a
    /// grant replaces any previous lease — supersession is recorded
    /// separately before it). Empty grants are not worth a line.
    ///
    /// # Errors
    ///
    /// I/O errors appending.
    pub fn record_grant(&mut self, worker: &str, jobs: &[(String, u64)]) -> io::Result<()> {
        if jobs.is_empty() {
            return Ok(());
        }
        self.state.leases.insert(worker.to_string(), jobs.to_vec());
        self.append(Value::obj(vec![
            ("ev", Value::str("grant")),
            ("worker", Value::str(worker)),
            ("jobs", jobs_to_value(jobs)),
        ]))
    }

    /// Records a heartbeat lease extension. A no-op unless the worker
    /// holds a non-empty lease — idle polling must not grow the log.
    ///
    /// # Errors
    ///
    /// I/O errors appending.
    pub fn record_extend(&mut self, worker: &str) -> io::Result<()> {
        if !self.state.leases.contains_key(worker) {
            return Ok(());
        }
        self.append(Value::obj(vec![
            ("ev", Value::str("extend")),
            ("worker", Value::str(worker)),
        ]))
    }

    /// Records a lease expiry (jobs requeued). No-op without a lease.
    ///
    /// # Errors
    ///
    /// I/O errors appending.
    pub fn record_expire(&mut self, worker: &str) -> io::Result<()> {
        self.record_removal("expire", worker)
    }

    /// Records a lease supersession (a re-lease dropped the old one).
    /// No-op without a lease.
    ///
    /// # Errors
    ///
    /// I/O errors appending.
    pub fn record_supersede(&mut self, worker: &str) -> io::Result<()> {
        self.record_removal("supersede", worker)
    }

    fn record_removal(&mut self, ev: &str, worker: &str) -> io::Result<()> {
        if self.state.leases.remove(worker).is_none() {
            return Ok(());
        }
        self.append(Value::obj(vec![
            ("ev", Value::str(ev)),
            ("worker", Value::str(worker)),
        ]))
    }

    /// Records a result: the job leaves every lease. A no-op if no
    /// lease holds it (duplicate or single-shot upload).
    ///
    /// # Errors
    ///
    /// I/O errors appending.
    pub fn record_result(&mut self, campaign: &str, point: u64) -> io::Result<()> {
        if !self.state.holds(campaign, point) {
            return Ok(());
        }
        for jobs in self.state.leases.values_mut() {
            jobs.retain(|(c, p)| !(c == campaign && *p == point));
        }
        self.state.leases.retain(|_, jobs| !jobs.is_empty());
        self.append(Value::obj(vec![
            ("ev", Value::str("result")),
            ("campaign", Value::str(campaign)),
            ("point", Value::UInt(point)),
        ]))
    }

    fn append(&mut self, event: Value) -> io::Result<()> {
        let Some(path) = &self.path else {
            return Ok(()); // in-memory: the mirror is the log
        };
        if self.events_since_snapshot >= SNAPSHOT_EVERY {
            return self.compact();
        }
        if self.file.is_none() {
            self.file = Some(OpenOptions::new().create(true).append(true).open(path)?);
        }
        let file = self.file.as_mut().expect("opened above");
        writeln!(file, "{}", event.compact())?;
        file.sync_data()?;
        self.events_since_snapshot += 1;
        Ok(())
    }

    /// Rewrites the log as a single snapshot of the mirror state, via
    /// temp file + rename — a crash during compaction must not lose the
    /// durable state.
    fn compact(&mut self) -> io::Result<()> {
        let Some(path) = self.path.clone() else {
            return Ok(());
        };
        let snapshot = Value::obj(vec![
            ("ev", Value::str("snapshot")),
            ("epoch", Value::UInt(self.state.epoch)),
            (
                "leases",
                Value::Arr(
                    self.state
                        .leases
                        .iter()
                        .map(|(worker, jobs)| {
                            Value::obj(vec![
                                ("worker", Value::str(worker)),
                                ("jobs", jobs_to_value(jobs)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        self.file = None; // close the append handle before the rename
        let tmp = path.with_extension("jsonl.tmp");
        {
            let mut file = File::create(&tmp)?;
            writeln!(file, "{}", snapshot.compact())?;
            file.sync_data()?;
        }
        std::fs::rename(&tmp, &path)?;
        self.file = Some(OpenOptions::new().append(true).open(&path)?);
        self.events_since_snapshot = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "fleet-walog-{tag}-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn grants_and_results_replay() {
        let path = temp_path("replay");
        let _ = std::fs::remove_file(&path);
        {
            let mut log = LeaseLog::open(&path).unwrap();
            log.record_epoch(1).unwrap();
            log.record_grant("worker-000001", &[("job-000001".into(), 3), ("job-000001".into(), 4)])
                .unwrap();
            log.record_grant("worker-000002", &[("job-000001".into(), 5)])
                .unwrap();
            log.record_result("job-000001", 4).unwrap();
            log.record_expire("worker-000002").unwrap();
        }
        let log = LeaseLog::open(&path).unwrap();
        assert_eq!(log.state().epoch, 1);
        assert_eq!(
            log.state().leases,
            [("worker-000001".to_string(), vec![("job-000001".to_string(), 3)])]
                .into_iter()
                .collect()
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_and_garbage_are_dropped_and_repaired() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut log = LeaseLog::open(&path).unwrap();
            log.record_epoch(1).unwrap();
            log.record_grant("worker-000001", &[("job-000001".into(), 7)])
                .unwrap();
        }
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"ev\":\"grant\",\"worker\":\"worker-0").unwrap();
        }
        let log = LeaseLog::open(&path).unwrap();
        assert_eq!(log.state().epoch, 1);
        assert_eq!(log.state().leases.len(), 1);
        // The open compacted the file: one clean snapshot line.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1, "{text}");
        assert!(text.starts_with("{\"ev\":\"snapshot\""), "{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn idle_noise_is_not_logged() {
        let path = temp_path("idle");
        let _ = std::fs::remove_file(&path);
        {
            let mut log = LeaseLog::open(&path).unwrap();
            log.record_epoch(1).unwrap();
            // No lease: extends, expiries, supersessions, empty grants
            // and unknown results must not grow the log.
            log.record_extend("worker-000009").unwrap();
            log.record_expire("worker-000009").unwrap();
            log.record_supersede("worker-000009").unwrap();
            log.record_grant("worker-000009", &[]).unwrap();
            log.record_result("job-000001", 1).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        // snapshot (from open) + epoch only.
        assert_eq!(text.lines().count(), 2, "{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_keeps_state_and_bounds_the_file() {
        let path = temp_path("compact");
        let _ = std::fs::remove_file(&path);
        {
            let mut log = LeaseLog::open(&path).unwrap();
            log.record_epoch(3).unwrap();
            for i in 0..(SNAPSHOT_EVERY * 2) {
                let worker = format!("worker-{:06}", (i % 4) + 1);
                log.record_grant(&worker, &[("job-000001".to_string(), i as u64)])
                    .unwrap();
            }
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.lines().count() <= SNAPSHOT_EVERY + 1,
            "log compacted: {} lines",
            text.lines().count()
        );
        let log = LeaseLog::open(&path).unwrap();
        assert_eq!(log.state().epoch, 3);
        assert_eq!(log.state().leases.len(), 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn in_memory_log_keeps_the_mirror() {
        let mut log = LeaseLog::in_memory();
        log.record_epoch(1).unwrap();
        log.record_grant("w", &[("job-000001".into(), 1)]).unwrap();
        assert_eq!(log.state().epoch, 1);
        assert!(log.state().leases.contains_key("w"));
        log.record_result("job-000001", 1).unwrap();
        assert!(log.state().leases.is_empty());
    }
}
