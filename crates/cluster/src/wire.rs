//! JSON codecs for the fleet protocol.
//!
//! Everything on the wire is **portable**: injection points carry the
//! source spans of their window statements (via `injector::persist`) so
//! the worker process — which parses the campaign sources itself — can
//! re-bind them to its own ASTs, and experiment results reuse the
//! checkpoint codec (`campaign::persist`) so a remotely executed result
//! is recorded exactly as a local one would be.

use campaign::{result_from_value, result_to_value, CampaignSpec};
use injector::InjectionPoint;
use jsonlite::Value;
use profipy::ExperimentResult;
use pysrc::Module;
use sandbox::SourceFile;

use crate::coordinator::LeaseGrant;

/// A job as decoded by the worker: the point is still in portable form
/// and must be re-bound against the worker's parsed modules.
pub struct WireJob {
    /// Owning campaign id.
    pub campaign: String,
    /// Portable point value (one `injector::persist` portable entry).
    pub point: Value,
    /// The complete container source set for the experiment.
    pub sources: Vec<SourceFile>,
}

/// A decoded lease reply.
pub struct WireLease {
    /// Granted jobs.
    pub jobs: Vec<WireJob>,
    /// Campaign specs the worker did not previously know.
    pub new_campaigns: Vec<(String, CampaignSpec)>,
    /// Coordinator-stamped trace id for this lease (empty when talking
    /// to a coordinator predating tracing).
    pub trace_id: String,
    /// The coordinator epoch the lease was granted under (0 when
    /// talking to a coordinator predating epochs). The worker echoes it
    /// with the batch's result upload.
    pub epoch: u64,
}

/// One worker-side phase span shipped back with a result upload.
///
/// The span's wall-clock start is expressed as `age` — how many seconds
/// before the upload was *sent* the phase started — so the coordinator
/// can anchor it on its own clock (`campaign offset - age`) without any
/// cross-host clock agreement.
pub struct WireSpan {
    /// Owning campaign id (the trace key).
    pub campaign: String,
    /// Phase label (e.g. `"rebind (4 jobs)"`, `"execute #17"`).
    pub name: String,
    /// Seconds between the phase start and the upload send.
    pub age: f64,
    /// Phase duration in seconds.
    pub duration: f64,
    /// Whether the phase failed (round-1 failure for execute spans).
    pub failed: bool,
}

/// Serializes a lease grant for the wire.
///
/// # Errors
///
/// Point portability failures (a span that cannot be resolved — should
/// not happen for points scanned from the shipped sources).
pub fn lease_grant_to_value(grant: &LeaseGrant) -> Result<Value, String> {
    let mut jobs = Vec::with_capacity(grant.jobs.len());
    for job in &grant.jobs {
        let portable = injector::persist::points_to_portable_value(
            std::slice::from_ref(&job.point),
            &job.modules,
        )?;
        let point = portable
            .as_arr()
            .and_then(|a| a.first().cloned())
            .ok_or("portable point serialization produced no entry")?;
        jobs.push(Value::obj(vec![
            ("campaign", Value::str(&job.campaign)),
            ("point", point),
            (
                "sources",
                Value::Arr(
                    job.sources
                        .iter()
                        .map(|s| {
                            Value::Arr(vec![Value::str(&s.import_name), Value::str(&s.text)])
                        })
                        .collect(),
                ),
            ),
        ]));
    }
    Ok(Value::obj(vec![
        ("jobs", Value::Arr(jobs)),
        (
            "campaigns",
            Value::Arr(
                grant
                    .new_campaigns
                    .iter()
                    .map(|(id, spec)| {
                        Value::obj(vec![("id", Value::str(id)), ("spec", spec.to_value())])
                    })
                    .collect(),
            ),
        ),
        ("trace", Value::str(&grant.trace_id)),
        ("epoch", Value::UInt(grant.epoch)),
    ]))
}

/// Decodes a lease reply on the worker.
///
/// # Errors
///
/// Describes the malformed field.
pub fn lease_from_value(v: &Value) -> Result<WireLease, String> {
    let jobs = v
        .req("jobs")?
        .as_arr()
        .ok_or("'jobs' must be an array")?
        .iter()
        .map(|job| {
            let campaign = job
                .req("campaign")?
                .as_str()
                .ok_or("job 'campaign' must be a string")?
                .to_string();
            let sources = job
                .req("sources")?
                .as_arr()
                .ok_or("job 'sources' must be an array")?
                .iter()
                .map(|pair| {
                    let pair = pair
                        .as_arr()
                        .filter(|p| p.len() == 2)
                        .ok_or("'sources' entries must be [name, text] pairs")?;
                    match (pair[0].as_str(), pair[1].as_str()) {
                        (Some(n), Some(t)) => Ok(SourceFile {
                            import_name: n.to_string(),
                            text: t.to_string(),
                        }),
                        _ => Err("'sources' entries must be string pairs".to_string()),
                    }
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(WireJob {
                campaign,
                point: job.req("point")?.clone(),
                sources,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let new_campaigns = v
        .req("campaigns")?
        .as_arr()
        .ok_or("'campaigns' must be an array")?
        .iter()
        .map(|c| {
            Ok((
                c.req("id")?
                    .as_str()
                    .ok_or("campaign 'id' must be a string")?
                    .to_string(),
                CampaignSpec::from_value(c.req("spec")?)?,
            ))
        })
        .collect::<Result<Vec<_>, String>>()?;
    // Tolerant: absent on the wire means an older coordinator.
    let trace_id = v
        .get("trace")
        .and_then(Value::as_str)
        .unwrap_or_default()
        .to_string();
    let epoch = v.get("epoch").and_then(Value::as_u64).unwrap_or(0);
    Ok(WireLease {
        jobs,
        new_campaigns,
        trace_id,
        epoch,
    })
}

/// Re-binds a wire job's portable point against the worker's parsed
/// modules.
///
/// # Errors
///
/// A span that no longer resolves (the worker's sources diverged from
/// the coordinator's — impossible when the spec came over the wire).
pub fn rebind_point(point: &Value, modules: &[Module]) -> Result<InjectionPoint, String> {
    let points = injector::persist::points_from_portable_value(
        &Value::Arr(vec![point.clone()]),
        modules,
    )?;
    points
        .into_iter()
        .next()
        .ok_or_else(|| "portable point array was empty".to_string())
}

/// Serializes a result batch for upload.
pub fn results_to_value(results: &[(String, ExperimentResult)]) -> Value {
    Value::obj(vec![(
        "results",
        Value::Arr(
            results
                .iter()
                .map(|(campaign, result)| {
                    Value::obj(vec![
                        ("campaign", Value::str(campaign)),
                        ("result", result_to_value(result)),
                    ])
                })
                .collect(),
        ),
    )])
}

/// Decodes a result batch on the coordinator.
///
/// # Errors
///
/// Describes the malformed field.
pub fn results_from_value(v: &Value) -> Result<Vec<(String, ExperimentResult)>, String> {
    v.req("results")?
        .as_arr()
        .ok_or("'results' must be an array")?
        .iter()
        .map(|entry| {
            Ok((
                entry
                    .req("campaign")?
                    .as_str()
                    .ok_or("result 'campaign' must be a string")?
                    .to_string(),
                result_from_value(entry.req("result")?)?,
            ))
        })
        .collect()
}

/// Serializes worker phase spans for the upload payload.
pub fn spans_to_value(spans: &[WireSpan]) -> Value {
    Value::Arr(
        spans
            .iter()
            .map(|s| {
                Value::obj(vec![
                    ("campaign", Value::str(&s.campaign)),
                    ("name", Value::str(&s.name)),
                    ("age", Value::Float(s.age)),
                    ("duration", Value::Float(s.duration)),
                    ("failed", Value::Bool(s.failed)),
                ])
            })
            .collect(),
    )
}

/// Decodes worker phase spans on the coordinator. Tolerant: spans are
/// telemetry, so malformed entries are skipped, never rejected — a
/// worker that mangles its spans must not lose its results.
pub fn spans_from_value(v: &Value) -> Vec<WireSpan> {
    let Some(entries) = v.as_arr() else {
        return Vec::new();
    };
    entries
        .iter()
        .filter_map(|s| {
            Some(WireSpan {
                campaign: s.get("campaign")?.as_str()?.to_string(),
                name: s.get("name")?.as_str()?.to_string(),
                age: s.get("age")?.as_f64()?,
                duration: s.get("duration")?.as_f64()?,
                failed: matches!(s.get("failed"), Some(Value::Bool(true))),
            })
        })
        .collect()
}
