//! The coordinator's HTTP surface: the full campaign REST API plus the
//! fleet routes, served by one `httpd` server over one shared
//! [`CampaignService`].
//!
//! | Method | Path                          | Purpose                                  |
//! |--------|-------------------------------|------------------------------------------|
//! | POST   | `/api/workers/register`       | join the fleet (`{"parallelism": N}`)    |
//! | POST   | `/api/workers/:id/lease`      | pull a batch of experiments + specs      |
//! | POST   | `/api/workers/:id/heartbeat`  | keep the lease alive                     |
//! | POST   | `/api/workers/:id/results`    | upload executed results (idempotent)     |
//! | GET    | `/api/fleet/status`           | role + epoch (the standby's health probe)|
//! | GET    | `/api/fleet/manifest`         | replicable files with sizes and hashes   |
//! | GET    | `/api/fleet/file?name=&offset=`| raw file bytes from an offset (tailing) |
//!
//! The local drive thread is **disabled** in fleet mode: campaigns
//! queue until workers lease them, and a background tick thread sweeps
//! expired leases back into the pending pool.
//!
//! On boot the coordinator **recovers before it serves**: leases the
//! previous epoch left in the WAL are re-armed while the listener's
//! kernel backlog holds early connections, so no request can observe
//! (or race) a half-recovered fleet.

use crate::coordinator::{Coordinator, FleetConfig, FleetError};
use crate::wire;
use campaign::api::{error_response, json_body};
use campaign::{ApiConfig, ApiServer, CampaignService, EngineError, SharedService};
use httpd::{Request, Response, Router};
use jsonlite::Value;
use std::collections::BTreeSet;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// The running fleet coordinator: HTTP server + lease-expiry tick
/// thread over one shared [`CampaignService`].
pub struct FleetServer {
    api: Option<ApiServer>,
    coordinator: Option<Arc<Coordinator>>,
    tick_stop: Arc<AtomicBool>,
    tick: Option<JoinHandle<()>>,
}

impl FleetServer {
    /// Boots the coordinator on `addr` (port 0 for an ephemeral port).
    /// `api_config.local_drive` is forced off — in fleet mode the
    /// workers execute, the coordinator only leases and records.
    ///
    /// # Errors
    ///
    /// Socket bind or registry I/O failures.
    pub fn serve(
        addr: &str,
        service: CampaignService,
        api_config: ApiConfig,
        fleet_config: FleetConfig,
    ) -> Result<FleetServer, EngineError> {
        let listener = TcpListener::bind(addr)?;
        FleetServer::serve_listener(listener, service, api_config, fleet_config)
    }

    /// [`FleetServer::serve`] on an already-bound listener — how a
    /// promoted standby starts serving the address it bound at boot.
    /// WAL recovery runs **before** the HTTP server starts: connections
    /// queued in the kernel backlog are answered only once every
    /// replayed lease is re-armed.
    ///
    /// # Errors
    ///
    /// Registry/WAL I/O or recovery failures.
    pub fn serve_listener(
        listener: TcpListener,
        service: CampaignService,
        mut api_config: ApiConfig,
        fleet_config: FleetConfig,
    ) -> Result<FleetServer, EngineError> {
        api_config.local_drive = false;
        let shared = SharedService::new(service);
        shared.set_role("fleet");
        let coordinator = Arc::new(
            Coordinator::new(shared.clone(), fleet_config.clone()).map_err(|e| EngineError {
                message: format!("fleet registry: {e}"),
            })?,
        );
        coordinator.recover().map_err(|e| EngineError {
            message: format!("fleet recovery: {e}"),
        })?;
        let data_dir = fleet_config.data_dir.clone();
        let mount_coord = coordinator.clone();
        let api = ApiServer::serve_with_listener(listener, shared, api_config, move |router, shared| {
            // Metrics provider holds the coordinator weakly: the strong
            // references live in the route handlers and the FleetServer,
            // so shutdown can actually tear the state down.
            let weak = Arc::downgrade(&mount_coord);
            shared.add_metrics(Box::new(move |out| {
                if let Some(c) = weak.upgrade() {
                    c.append_metrics(out);
                }
            }));
            mount_fleet_routes(router, mount_coord, shared.clone(), data_dir)
        })?;
        let tick_stop = Arc::new(AtomicBool::new(false));
        let tick_coord = coordinator.clone();
        let stop_flag = tick_stop.clone();
        let interval = fleet_config.tick_interval;
        let tick = std::thread::Builder::new()
            .name("fleet-tick".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::SeqCst) {
                    tick_coord.tick();
                    std::thread::sleep(interval);
                }
            })
            .expect("spawn fleet tick thread");
        Ok(FleetServer {
            api: Some(api),
            coordinator: Some(coordinator),
            tick_stop,
            tick: Some(tick),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.api.as_ref().expect("server running").addr()
    }

    /// The coordinator (lease/requeue introspection for tests and
    /// embedders).
    pub fn coordinator(&self) -> &Arc<Coordinator> {
        self.coordinator.as_ref().expect("server running")
    }

    /// Graceful stop: join the tick thread, return every checked-out
    /// campaign to the queue (completing finished ones), drain HTTP,
    /// and hand the service back.
    pub fn shutdown(mut self) -> CampaignService {
        self.tick_stop.store(true, Ordering::SeqCst);
        if let Some(tick) = self.tick.take() {
            let _ = tick.join();
        }
        if let Some(coordinator) = self.coordinator.take() {
            let _ = coordinator.drain();
            // The remaining strong references live in the router's
            // handlers; ApiServer::shutdown joins the server, dropping
            // them (and with them the coordinator's SharedService).
            drop(coordinator);
        }
        self.api.take().expect("server running").shutdown()
    }

    /// Simulated crash (tests): stop serving **without** draining — the
    /// queue keeps its `Running` jobs, the WAL keeps its live leases,
    /// the registry keeps its workers. Exactly the disk state a killed
    /// process leaves behind for a standby to recover from.
    pub fn kill(mut self) {
        self.tick_stop.store(true, Ordering::SeqCst);
        if let Some(tick) = self.tick.take() {
            let _ = tick.join();
        }
        // No drain: dropping the coordinator leaves leases and checked-
        // out campaigns exactly as they were.
        self.coordinator.take();
        drop(self.api.take().expect("server running").shutdown());
    }
}

impl Drop for FleetServer {
    fn drop(&mut self) {
        self.tick_stop.store(true, Ordering::SeqCst);
    }
}

fn mount_fleet_routes(
    router: Router,
    coordinator: Arc<Coordinator>,
    shared: SharedService,
    data_dir: Option<PathBuf>,
) -> Router {
    let register = {
        let coordinator = coordinator.clone();
        let shared = shared.clone();
        move |req: &Request| {
            shared.count_request();
            register_worker(&coordinator, req)
        }
    };
    let status = {
        let coordinator = coordinator.clone();
        let shared = shared.clone();
        move |req: &Request| {
            shared.count_request();
            let _ = req;
            fleet_status(&coordinator)
        }
    };
    let manifest = {
        let dir = data_dir.clone();
        let coordinator = coordinator.clone();
        let shared = shared.clone();
        move |req: &Request| {
            shared.count_request();
            let _ = req;
            fleet_manifest(&coordinator, dir.as_deref())
        }
    };
    let file = {
        let dir = data_dir;
        let shared = shared.clone();
        move |req: &Request| {
            shared.count_request();
            fleet_file(dir.as_deref(), req)
        }
    };
    let lease = {
        let coordinator = coordinator.clone();
        let shared = shared.clone();
        move |req: &Request| {
            shared.count_request();
            lease_jobs(&coordinator, req)
        }
    };
    let heartbeat = {
        let coordinator = coordinator.clone();
        let shared = shared.clone();
        move |req: &Request| {
            shared.count_request();
            heartbeat_worker(&coordinator, req)
        }
    };
    let results = {
        move |req: &Request| {
            shared.count_request();
            upload_results(&coordinator, req)
        }
    };
    router
        .route("POST", "/api/workers/register", register)
        .route("POST", "/api/workers/:id/lease", lease)
        .route("POST", "/api/workers/:id/heartbeat", heartbeat)
        .route("POST", "/api/workers/:id/results", results)
        .route("GET", "/api/fleet/status", status)
        .route("GET", "/api/fleet/manifest", manifest)
        .route("GET", "/api/fleet/file", file)
}

// ---------- handlers ----------

fn register_worker(coordinator: &Coordinator, req: &Request) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(resp) => return *resp,
    };
    let parallelism = body
        .get("parallelism")
        .and_then(Value::as_u64)
        .unwrap_or(1)
        .max(1) as usize;
    match coordinator.register(parallelism) {
        Ok(id) => {
            let config = coordinator.config();
            Response::json(
                201,
                Value::obj(vec![
                    ("id", Value::str(&id)),
                    (
                        "lease_ttl_ms",
                        Value::UInt(config.lease_ttl.as_millis() as u64),
                    ),
                    (
                        "heartbeat_ms",
                        Value::UInt(config.heartbeat_interval.as_millis() as u64),
                    ),
                    (
                        "lease_batch_max",
                        Value::UInt(config.lease_batch_max as u64),
                    ),
                ])
                .pretty(),
            )
        }
        Err(e) => error_response(500, &format!("worker registry: {e}")),
    }
}

fn lease_jobs(coordinator: &Coordinator, req: &Request) -> Response {
    let worker = req.param("id").unwrap_or_default().to_string();
    let body = match json_body(req) {
        Ok(v) => v,
        Err(resp) => return *resp,
    };
    let max_jobs = body.get("max_jobs").and_then(Value::as_u64).unwrap_or(1) as usize;
    let known: BTreeSet<String> = body
        .get("known")
        .and_then(Value::as_arr)
        .map(|ids| {
            ids.iter()
                .filter_map(Value::as_str)
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default();
    match coordinator.lease(&worker, max_jobs, &known) {
        Ok(grant) => match wire::lease_grant_to_value(&grant) {
            Ok(value) => Response::json(200, value.pretty()),
            Err(e) => error_response(500, &format!("lease serialization: {e}")),
        },
        Err(e) => fleet_error_response(&e),
    }
}

fn heartbeat_worker(coordinator: &Coordinator, req: &Request) -> Response {
    let worker = req.param("id").unwrap_or_default().to_string();
    match coordinator.heartbeat(&worker) {
        Ok(extended) => Response::json(
            200,
            Value::obj(vec![("lease_extended", Value::Bool(extended))]).pretty(),
        ),
        Err(e) => fleet_error_response(&e),
    }
}

fn upload_results(coordinator: &Coordinator, req: &Request) -> Response {
    let worker = req.param("id").unwrap_or_default().to_string();
    let body = match json_body(req) {
        Ok(v) => v,
        Err(resp) => return *resp,
    };
    let results = match wire::results_from_value(&body) {
        Ok(results) => results,
        Err(e) => return error_response(422, &format!("invalid results: {e}")),
    };
    // Worker phase spans ride the upload; merge them into the campaign
    // timelines before recording the results (telemetry-tolerant: a
    // missing or malformed spans array never fails the upload).
    if let Some(spans) = body.get("spans") {
        let spans = wire::spans_from_value(spans);
        if !spans.is_empty() {
            coordinator.record_wire_spans(&worker, &spans);
        }
    }
    // The epoch the worker's lease was granted under (absent from
    // pre-epoch workers). Old-epoch uploads are absorbed, not rejected.
    let epoch = body.get("epoch").and_then(Value::as_u64);
    match coordinator.report_results_stamped_at(&worker, epoch, results, std::time::Instant::now())
    {
        Ok(summary) => Response::json(
            200,
            Value::obj(vec![
                ("accepted", Value::UInt(summary.accepted)),
                ("duplicates", Value::UInt(summary.duplicates)),
                (
                    "completed",
                    Value::Arr(summary.completed.iter().map(Value::str).collect()),
                ),
            ])
            .pretty(),
        ),
        Err(e) => fleet_error_response(&e),
    }
}

fn fleet_status(coordinator: &Coordinator) -> Response {
    Response::json(
        200,
        Value::obj(vec![
            ("role", Value::str("primary")),
            ("epoch", Value::UInt(coordinator.epoch())),
            (
                "lease_ttl_ms",
                Value::UInt(coordinator.config().lease_ttl.as_millis() as u64),
            ),
        ])
        .pretty(),
    )
}

/// The files a standby replicates, with sizes and content hashes so it
/// can tail appends cheaply and detect rewrites (compaction). `cache/`
/// is deliberately absent: mutant preparation is deterministic, a
/// promoted standby just re-prepares.
fn fleet_manifest(coordinator: &Coordinator, dir: Option<&Path>) -> Response {
    let mut files = Vec::new();
    if let Some(dir) = dir {
        let mut push = |name: String, path: &Path| {
            if let Ok(bytes) = std::fs::read(path) {
                files.push(Value::obj(vec![
                    ("name", Value::str(&name)),
                    ("size", Value::UInt(bytes.len() as u64)),
                    ("hash", Value::UInt(fnv1a64(&bytes))),
                ]));
            }
        };
        for log in ["fleet-workers.jsonl", "fleet-leases.jsonl"] {
            push(log.to_string(), &dir.join(log));
        }
        for sub in ["queue", "checkpoints"] {
            let Ok(entries) = std::fs::read_dir(dir.join(sub)) else {
                continue;
            };
            let mut names: Vec<String> = entries
                .filter_map(|e| e.ok()?.file_name().into_string().ok())
                .filter(|n| replicable_name(n))
                .collect();
            names.sort();
            for name in names {
                push(format!("{sub}/{name}"), &dir.join(sub).join(&name));
            }
        }
    }
    Response::json(
        200,
        Value::obj(vec![
            ("epoch", Value::UInt(coordinator.epoch())),
            ("files", Value::Arr(files)),
        ])
        .pretty(),
    )
}

fn fleet_file(dir: Option<&Path>, req: &Request) -> Response {
    let Some(dir) = dir else {
        return error_response(404, "coordinator has no data dir");
    };
    let mut name = None;
    let mut offset = 0u64;
    for pair in req.query.split('&') {
        match pair.split_once('=') {
            Some(("name", v)) => name = Some(v.to_string()),
            Some(("offset", v)) => offset = v.parse().unwrap_or(0),
            _ => {}
        }
    }
    let Some(name) = name else {
        return error_response(422, "missing 'name' query parameter");
    };
    if !replicable_path(&name) {
        return error_response(404, "file is not replicable");
    }
    let Ok(bytes) = std::fs::read(dir.join(&name)) else {
        return error_response(404, "no such file");
    };
    let tail = bytes.get(offset.min(bytes.len() as u64) as usize..).unwrap_or(&[]);
    Response::new(200)
        .header("Content-Type", "application/octet-stream")
        .with_body(tail.to_vec())
}

/// Whether `name` is a replicable relative path: one of the two fleet
/// logs, or a single well-formed filename under `queue/` or
/// `checkpoints/`. Everything else — absolute paths, `..`, nested
/// directories, odd characters — is rejected, so the file route can
/// never read outside the data dir.
fn replicable_path(name: &str) -> bool {
    if name == "fleet-workers.jsonl" || name == "fleet-leases.jsonl" {
        return true;
    }
    match name.split_once('/') {
        Some(("queue" | "checkpoints", file)) => replicable_name(file),
        _ => false,
    }
}

fn replicable_name(file: &str) -> bool {
    !file.is_empty()
        && !file.contains("..")
        && file
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

/// FNV-1a, the repo's dependency-free content hash: good enough to
/// detect a rewritten (compacted) log, not a cryptographic integrity
/// check.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------- helpers ----------

fn fleet_error_response(e: &FleetError) -> Response {
    match e {
        FleetError::UnknownWorker(_) => error_response(404, &e.to_string()),
        FleetError::Engine(_) | FleetError::Io(_) => error_response(500, &e.to_string()),
    }
}
