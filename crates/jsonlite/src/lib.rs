//! `jsonlite` — a dependency-free JSON layer for the workspace.
//!
//! The build environment is offline (no serde), so persistence across the
//! workspace — fault models (§IV-A "the fault model is stored in a JSON
//! file"), the campaign queue, checkpoints, and the scan cache — goes
//! through this small crate instead:
//!
//! * [`Value`] — a JSON document (object keys keep insertion order).
//! * [`parse`] — a strict recursive-descent parser.
//! * [`Value::pretty`] / [`Value::compact`] — serializers.
//! * [`stable_hash64`] — a seed-independent FNV-1a content hash used for
//!   cross-campaign cache keys.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer (fits i64, no fraction/exponent).
    Int(i64),
    /// Unsigned integer above `i64::MAX`.
    UInt(u64),
    /// Any other number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric payload as u64 (integers only, non-negative).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            Value::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// Numeric payload as i64.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    /// Numeric payload as f64 (any number).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Required-field lookup with a path-flavoured error.
    ///
    /// # Errors
    ///
    /// Describes the missing key.
    pub fn req(&self, key: &str) -> Result<&Value, String> {
        self.get(key)
            .ok_or_else(|| format!("missing field '{key}'"))
    }

    /// Serializes with 2-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    /// Serializes without whitespace.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    // Guarantee a re-parse as Float (never bare int syntax
                    // losing the type) while round-tripping the value.
                    // Rust's Display for f64 never uses an exponent and
                    // `{:.1}` is exact for integral floats, so both forms
                    // re-parse to the identical value.
                    if f.fract() == 0.0 {
                        let _ = write!(out, "{f:.1}");
                    } else {
                        let _ = write!(out, "{f}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                items[i].write(out, ind);
            }),
            Value::Obj(pairs) => write_seq(out, indent, '{', '}', pairs.len(), |out, i, ind| {
                write_escaped(out, &pairs[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                pairs[i].1.write(out, ind);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(level) = indent {
            out.push('\n');
            for _ in 0..(level + 1) * 2 {
                out.push(' ');
            }
        }
        item(out, i, indent.map(|l| l + 1));
    }
    if let Some(level) = indent {
        out.push('\n');
        for _ in 0..level * 2 {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Nesting-depth limit applied by [`parse`]. Deep enough for any
/// artifact this workspace persists, shallow enough that a crafted
/// `[[[[…` network body cannot blow the recursive parser's stack.
pub const DEFAULT_MAX_DEPTH: usize = 128;

/// Parses a JSON document with the [`DEFAULT_MAX_DEPTH`] nesting limit.
///
/// # Errors
///
/// A human-readable description with a byte offset.
pub fn parse(text: &str) -> Result<Value, String> {
    parse_with_depth_limit(text, DEFAULT_MAX_DEPTH)
}

/// Parses a JSON document, rejecting arrays/objects nested deeper than
/// `max_depth` — the knob for callers facing untrusted input (network
/// request bodies) or unusually deep trusted documents.
///
/// # Errors
///
/// A human-readable description with a byte offset.
pub fn parse_with_depth_limit(text: &str, max_depth: usize) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
        max_depth,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
    max_depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            ))
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Value::Null),
            Some(b't') => self.eat_keyword("true", Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected character at byte {}", self.pos)),
        }
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > self.max_depth {
            return Err(format!(
                "nesting deeper than {} levels at byte {}",
                self.max_depth, self.pos
            ));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        self.enter()?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the longest run without escapes/quotes.
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|&b| b != b'"' && b != b'\\' && b >= 0x20)
            {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs: decode \uD800-\uDBFF + \uDC00-\uDFFF.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    let lo_hex = self
                                        .bytes
                                        .get(self.pos + 2..self.pos + 6)
                                        .ok_or_else(|| "truncated surrogate".to_string())?;
                                    let lo = u32::from_str_radix(
                                        std::str::from_utf8(lo_hex)
                                            .map_err(|_| "bad surrogate".to_string())?,
                                        16,
                                    )
                                    .map_err(|_| "bad surrogate".to_string())?;
                                    self.pos += 6;
                                    // The low half must actually be a low
                                    // surrogate; anything else is a lone
                                    // high surrogate (and subtracting
                                    // 0xDC00 from it would underflow).
                                    if (0xDC00..0xE000).contains(&lo) {
                                        let combined =
                                            0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                        char::from_u32(combined)
                                    } else {
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| "invalid code point".to_string())?);
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                // RFC 8259: control characters must be escaped; a raw
                // one in an untrusted body is rejected, not absorbed.
                Some(_) => {
                    return Err(format!(
                        "unescaped control character in string at byte {}",
                        self.pos
                    ))
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

/// Seed-independent FNV-1a 64-bit hash of a byte string — stable across
/// processes and platforms, unlike `DefaultHasher`. Used for cache keys.
pub fn stable_hash64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Combines hashes order-sensitively (for multi-part cache keys).
pub fn combine_hash64(parts: &[u64]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for part in parts {
        for b in part.to_le_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    hash
}

/// Renders a hash as fixed-width hex (cache file names, keys).
pub fn hex64(h: u64) -> String {
    format!("{h:016x}")
}

/// Sorts object keys recursively — canonical form for hashing.
pub fn canonicalize(v: &Value) -> Value {
    match v {
        Value::Arr(items) => Value::Arr(items.iter().map(canonicalize).collect()),
        Value::Obj(pairs) => {
            let sorted: BTreeMap<&String, &Value> =
                pairs.iter().map(|(k, v)| (k, v)).collect();
            Value::Obj(
                sorted
                    .into_iter()
                    .map(|(k, v)| (k.clone(), canonicalize(v)))
                    .collect(),
            )
        }
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "1e3"] {
            let v = parse(text).unwrap();
            let back = parse(&v.compact()).unwrap();
            assert_eq!(v, back, "{text}");
        }
        assert_eq!(parse("42").unwrap(), Value::Int(42));
        assert_eq!(
            parse("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
    }

    #[test]
    fn roundtrip_structures() {
        let v = Value::obj(vec![
            ("name", Value::str("campaign-A")),
            ("seed", Value::UInt(u64::MAX - 1)),
            ("nested", Value::Arr(vec![Value::Int(-3), Value::Null])),
            ("text", Value::str("line1\nline2\t\"quoted\" \\ done")),
            ("unicode", Value::str("héllo 🦀 \u{1}")),
        ]);
        for serialized in [v.pretty(), v.compact()] {
            assert_eq!(parse(&serialized).unwrap(), v);
        }
    }

    #[test]
    fn object_order_is_preserved() {
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<&str> = v.as_obj().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["z", "a"]);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("{not json").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn stable_hash_is_stable() {
        // Pinned value: must never change across runs or platforms —
        // cache keys persist on disk.
        assert_eq!(stable_hash64(b""), 0xcbf29ce484222325);
        assert_eq!(stable_hash64(b"profipy"), stable_hash64(b"profipy"));
        assert_ne!(stable_hash64(b"a"), stable_hash64(b"b"));
        assert_ne!(combine_hash64(&[1, 2]), combine_hash64(&[2, 1]));
    }

    #[test]
    fn canonical_form_sorts_keys() {
        let a = parse(r#"{"b": 1, "a": {"y": 2, "x": 3}}"#).unwrap();
        let b = parse(r#"{"a": {"x": 3, "y": 2}, "b": 1}"#).unwrap();
        assert_eq!(canonicalize(&a), canonicalize(&b));
        assert_eq!(
            stable_hash64(canonicalize(&a).compact().as_bytes()),
            stable_hash64(canonicalize(&b).compact().as_bytes())
        );
    }

    #[test]
    fn floats_reparse_as_floats() {
        for f in [2.0, -0.0, 1e16, -1e18, 4.0e300] {
            let v = Value::Float(f);
            assert_eq!(parse(&v.compact()).unwrap(), v, "{f}");
        }
    }
}
