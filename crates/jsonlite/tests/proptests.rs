//! Property-based hardening tests for the JSON layer: round-trips over
//! adversarial strings (escape sequences, control characters, astral
//! and surrogate-boundary code points), surrogate-pair escape decoding,
//! and the nesting-depth limit — the properties a malicious network
//! request body would probe.

use jsonlite::{parse, parse_with_depth_limit, Value, DEFAULT_MAX_DEPTH};
use proptest::prelude::*;

/// Arbitrary well-formed text, biased toward the characters the
/// serializer must escape: quotes, backslashes, control characters,
/// multi-byte chars, and code points hugging the surrogate range.
fn arb_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            // ASCII incl. the escape-relevant punctuation.
            (0x20u32..0x7f).prop_map(|c| char::from_u32(c).unwrap()),
            Just('"'),
            Just('\\'),
            Just('/'),
            // Control characters (must serialize as \uXXXX or \n etc.).
            (0x00u32..0x20).prop_map(|c| char::from_u32(c).unwrap()),
            // Just outside the surrogate range on both sides.
            Just('\u{d7ff}'),
            Just('\u{e000}'),
            // BMP + astral (needs a surrogate pair in \u escapes).
            Just('\u{203d}'),
            Just('\u{1f980}'),
        ],
        0..24,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

/// Arbitrary JSON documents (finite floats; `UInt` only above
/// `i64::MAX`, matching what the parser can produce).
fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        ((i64::MAX as u64 + 1)..=u64::MAX).prop_map(Value::UInt),
        (0u32..1_000_000).prop_map(|n| Value::Float(f64::from(n) / 128.0)),
        arb_text().prop_map(Value::Str),
    ];
    leaf.prop_recursive(4, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::Arr),
            proptest::collection::vec(("[a-z_]{0,6}".prop_map(|k| k), inner), 0..4)
                .prop_map(Value::Obj),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    #[test]
    fn values_roundtrip_through_both_serializers(v in arb_value()) {
        for text in [v.compact(), v.pretty()] {
            let back = parse(&text).expect("serializer output reparses");
            prop_assert_eq!(&back, &v, "through {}", text);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn hostile_strings_roundtrip(s in arb_text()) {
        let v = Value::Str(s.clone());
        let text = v.compact();
        // Serialized form never leaks a raw control character.
        prop_assert!(text.chars().all(|c| c as u32 >= 0x20));
        prop_assert_eq!(parse(&text).expect("reparses"), v);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn surrogate_escapes_never_panic(hi in 0xd000u32..0xe000, lo in 0xd000u32..0xe000) {
        // Escape text straddling the surrogate range: lone surrogates
        // must be rejected, valid pairs must decode — and nothing may
        // panic.
        let lone = format!("\"\\u{hi:04x}\"");
        match parse(&lone) {
            Ok(Value::Str(s)) => {
                // Only non-surrogate code points may decode alone.
                prop_assert!(!(0xd800..0xe000).contains(&hi), "decoded {s:?}");
            }
            Ok(other) => prop_assert!(false, "unexpected {other:?}"),
            Err(_) => prop_assert!((0xd800..0xe000).contains(&hi)),
        }
        let paired = format!("\"\\u{hi:04x}\\u{lo:04x}\"");
        let valid_pair =
            (0xd800..0xdc00).contains(&hi) && (0xdc00..0xe000).contains(&lo);
        if valid_pair {
            let decoded = parse(&paired).expect("valid surrogate pair decodes");
            let expected = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
            prop_assert_eq!(
                decoded,
                Value::Str(char::from_u32(expected).unwrap().to_string())
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn nesting_depth_limit_is_exact(depth in 1usize..40, limit in 1usize..40) {
        // depth nested arrays wrapped around a scalar: parses iff
        // depth <= limit.
        let text = format!("{}0{}", "[".repeat(depth), "]".repeat(depth));
        let result = parse_with_depth_limit(&text, limit);
        if depth <= limit {
            prop_assert!(result.is_ok(), "depth {depth} limit {limit}");
        } else {
            let err = result.expect_err("over-deep input must be rejected");
            prop_assert!(err.contains("nesting deeper"), "{err}");
        }
        // Objects count against the same limit.
        let text = format!(
            "{}0{}",
            "{\"k\":".repeat(depth),
            "}".repeat(depth)
        );
        prop_assert_eq!(
            parse_with_depth_limit(&text, limit).is_ok(),
            depth <= limit
        );
    }
}

#[test]
fn high_surrogate_with_invalid_low_half_is_an_error_not_a_panic() {
    // Regression: the low escape after a high surrogate was decoded
    // without range-checking, so `lo - 0xDC00` underflowed (debug
    // panic) for any non-low-surrogate follower.
    for bad in [
        r#""\ud800A""#,
        r#""\ud800\u0041""#,
        r#""\ud800\ud900""#,
        r#""\ud800퀀""#,
    ] {
        assert!(parse(bad).is_err(), "{bad}");
    }
    // A proper pair still decodes.
    assert_eq!(
        parse(r#""\ud83e\udd80""#).unwrap(),
        Value::Str("\u{1f980}".to_string())
    );
}

#[test]
fn unescaped_control_characters_are_rejected() {
    for ctrl in ['\u{0}', '\u{1}', '\n', '\r', '\u{1f}'] {
        let text = format!("\"ab{ctrl}cd\"");
        let err = parse(&text).expect_err("raw control char must be rejected");
        assert!(err.contains("control character"), "{err}");
    }
    // The escaped forms are fine.
    assert_eq!(
        parse("\"ab\\ncd\\u0001\"").unwrap(),
        Value::Str("ab\ncd\u{1}".to_string())
    );
}

#[test]
fn default_depth_limit_guards_the_stack() {
    let deep = format!("{}0{}", "[".repeat(DEFAULT_MAX_DEPTH + 1), "]".repeat(DEFAULT_MAX_DEPTH + 1));
    assert!(parse(&deep).is_err());
    let ok = format!("{}0{}", "[".repeat(DEFAULT_MAX_DEPTH), "]".repeat(DEFAULT_MAX_DEPTH));
    assert!(parse(&ok).is_ok());
}
