//! Strategies: value generators with the upstream combinator surface.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn gen(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing the predicate (retrying).
    fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            f,
        }
    }

    /// Builds a recursive strategy: `recurse` receives the strategy for
    /// sub-values and returns the composite strategy. `depth` bounds the
    /// recursion; `_desired_size` / `_expected_branch` are accepted for
    /// upstream signature compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(current).boxed();
            current = Union::new(vec![leaf.clone(), branch]).boxed();
        }
        current
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

trait DynStrategy<T> {
    fn gen_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.gen(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen(&self, rng: &mut TestRng) -> T {
        self.inner.gen_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn gen(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn gen(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.gen(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 consecutive values",
            self.reason
        );
    }
}

/// Uniform choice among same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given options.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn gen(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].gen(rng)
    }
}

/// Always yields a clone of the given value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates one value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.coin()
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The canonical strategy for `A`.
pub struct Any<A>(PhantomData<A>);

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn gen(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.between_i128(self.start as i128, self.end as i128 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.between_i128(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident/$idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0);
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
    (A/0, B/1, C/2, D/3, E/4);
}

/// Size specification for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

/// See [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.min
            + rng.below((self.size.max - self.size.min + 1) as u64) as usize;
        (0..len).map(|_| self.element.gen(rng)).collect()
    }
}

/// See [`crate::option::of`].
pub struct OptionStrategy<S> {
    pub(crate) inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn gen(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.coin() {
            Some(self.inner.gen(rng))
        } else {
            None
        }
    }
}

// ---------------------------------------------------------------------
// Regex-pattern string strategies ("[a-z][a-z0-9_]{0,6}" etc.)
// ---------------------------------------------------------------------

enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
}

struct PatternPart {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<PatternPart> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut parts = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                assert!(
                    chars.get(i) != Some(&'^'),
                    "pattern strategy: negated classes unsupported in '{pattern}'"
                );
                while i < chars.len() && chars[i] != ']' {
                    let lo = if chars[i] == '\\' {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|c| *c != ']')
                    {
                        let hi = chars[i + 2];
                        assert!(lo <= hi, "pattern strategy: bad range in '{pattern}'");
                        ranges.push((lo, hi));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(
                    chars.get(i) == Some(&']'),
                    "pattern strategy: unterminated class in '{pattern}'"
                );
                i += 1;
                Atom::Class(ranges)
            }
            '\\' => {
                i += 1;
                let c = chars[i];
                i += 1;
                Atom::Literal(c)
            }
            c => {
                assert!(
                    !"(){}*+?|^$.".contains(c),
                    "pattern strategy: unsupported construct '{c}' in '{pattern}'"
                );
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("pattern strategy: unterminated quantifier")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                if let Some((lo, hi)) = body.split_once(',') {
                    (
                        lo.trim().parse().expect("bad quantifier"),
                        hi.trim().parse().expect("bad quantifier"),
                    )
                } else {
                    let n = body.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
        parts.push(PatternPart { atom, min, max });
    }
    parts
}

fn gen_pattern(parts: &[PatternPart], rng: &mut TestRng) -> String {
    let mut out = String::new();
    for part in parts {
        let count = part.min + rng.below((part.max - part.min + 1) as u64) as usize;
        for _ in 0..count {
            match &part.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(ranges) => {
                    let total: u64 = ranges
                        .iter()
                        .map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1)
                        .sum();
                    let mut pick = rng.below(total);
                    for (lo, hi) in ranges {
                        let span = (*hi as u64) - (*lo as u64) + 1;
                        if pick < span {
                            out.push(
                                char::from_u32(*lo as u32 + pick as u32)
                                    .expect("class range yields valid chars"),
                            );
                            break;
                        }
                        pick -= span;
                    }
                }
            }
        }
    }
    out
}

impl Strategy for &'static str {
    type Value = String;

    fn gen(&self, rng: &mut TestRng) -> String {
        let parts = parse_pattern(self);
        gen_pattern(&parts, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::for_case("strategy::tests", 0)
    }

    #[test]
    fn ranges_and_tuples() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (0u64..10).gen(&mut r);
            assert!(v < 10);
            let (a, b) = ((1i64..5), (0usize..=3)).gen(&mut r);
            assert!((1..5).contains(&a));
            assert!(b <= 3);
        }
    }

    #[test]
    fn pattern_strings_match_shape() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,6}".gen(&mut r);
            assert!((1..=7).contains(&s.len()), "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            let t = "[ -~]{0,16}".gen(&mut r);
            assert!(t.len() <= 16);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
            let dash = "[a-zA-Z0-9/_-]{1,24}".gen(&mut r);
            assert!(!dash.is_empty() && dash.len() <= 24);
        }
    }

    #[test]
    fn map_filter_union_vec() {
        let mut r = rng();
        let s = crate::collection::vec(
            crate::prop_oneof![Just(1i64), (10i64..20).prop_map(|v| v * 2)],
            2..5,
        )
        .prop_filter("nonempty", |v| !v.is_empty());
        for _ in 0..100 {
            let v = s.gen(&mut r);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x == 1 || (20..40).contains(&x)));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        let leaf = (0i64..10).prop_map(|n| n.to_string());
        let expr = leaf.prop_recursive(4, 32, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| format!("({a}+{b})"))
        });
        let mut r = rng();
        let mut saw_nested = false;
        for _ in 0..200 {
            let e = expr.gen(&mut r);
            assert!(e.len() < 4096);
            saw_nested |= e.contains('+');
        }
        assert!(saw_nested, "recursion should sometimes branch");
    }
}
