//! Offline drop-in subset of the `proptest` crate.
//!
//! The build environment has no crates.io access; this workspace-local shim
//! implements the slice of proptest the test suites use: the [`Strategy`]
//! trait with `prop_map` / `prop_filter` / `prop_recursive`, range and
//! regex-pattern strategies, `collection::vec`, `option::of`, `Just`,
//! `any`, the [`proptest!`] test macro, and the `prop_assert*` family.
//!
//! Differences from upstream: cases are generated from a fixed per-case
//! seed (fully deterministic runs) and there is **no shrinking** — a
//! failing case reports its inputs via `Debug` where available and its
//! case number always.

pub mod strategy;
pub mod test_runner;

/// `proptest::collection` — collection strategies.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy for `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `proptest::option` — `Option` strategies.
pub mod option {
    use crate::strategy::{OptionStrategy, Strategy};

    /// A strategy that yields `None` half the time and `Some(inner)`
    /// otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Everything a test file typically imports.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among strategies with the same value type.
///
/// All arms are boxed, so heterogeneous strategy types are fine as long
/// as they produce the same `Value`.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Fails the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current test case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    l,
                    r
                )
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "{}\n  left: `{:?}`\n right: `{:?}`",
                            format!($($fmt)+),
                            l,
                            r
                        )),
                    );
                }
            }
        }
    };
}

/// Fails the current test case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `(left != right)` — both `{:?}`",
                    l
                )
            }
        }
    };
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn parses(x in 0u64..100) { prop_assert!(x < 100); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case as u64,
                    );
                    $(
                        let $arg =
                            $crate::strategy::Strategy::gen(&($strat), &mut rng);
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(e) => {
                            panic!("proptest case #{case} of {}: {e}", stringify!($name));
                        }
                    }
                }
            }
        )*
    };
}
