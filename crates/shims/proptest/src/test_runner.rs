//! Test-runner types: config, per-case RNG, and case errors.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-test configuration (subset of upstream's).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The RNG driving strategy generation. Deterministic: seeded from the
/// test path and case number, so failures always reproduce.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// RNG for one test case.
    pub fn for_case(test_path: &str, case: u64) -> TestRng {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in test_path.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform value in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// Uniform value in `[lo, hi]` (inclusive, works for the full range).
    pub fn between_i128(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo <= hi);
        let width = (hi - lo) as u128 + 1;
        lo + ((self.next_u64() as u128) % width) as i128
    }

    /// Uniform bool.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property failed.
    Fail(String),
    /// The case was rejected (e.g. filter exhaustion); not a failure.
    Reject(String),
}

impl TestCaseError {
    /// A failed case.
    pub fn fail(msg: impl std::fmt::Display) -> TestCaseError {
        TestCaseError::Fail(msg.to_string())
    }

    /// A rejected case.
    pub fn reject(msg: impl std::fmt::Display) -> TestCaseError {
        TestCaseError::Reject(msg.to_string())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}
