//! Offline drop-in subset of the `criterion` crate.
//!
//! The build environment has no crates.io access; this workspace-local
//! shim keeps the benches compiling and runnable with wall-clock timing:
//! warm-up + `sample_size` timed samples per benchmark, mean/min/max
//! printed to stderr. No statistics engine, no HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

const DEFAULT_SAMPLE_SIZE: usize = 10;

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Runs one benchmark function.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), self.sample_size, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.throughput.clone(),
            &mut f,
        );
        self
    }

    /// Runs one benchmark parameterized by an input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.throughput.clone(),
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally parameterized.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.text)
    }
}

/// Per-iteration throughput annotation.
#[derive(Clone, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the benchmark closure; measures the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times the routine: one warm-up call, then `sample_size` measured
    /// calls.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        std::hint::black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Quick mode: `PROFIPY_BENCH_QUICK=1` caps every benchmark at one
/// timed sample (plus the warm-up call). CI uses it as a smoke run so
/// benches stay compiling *and running* on every push without paying
/// full measurement cost.
fn quick_mode() -> bool {
    std::env::var_os("PROFIPY_BENCH_QUICK").is_some_and(|v| v != "0" && !v.is_empty())
}

fn run_bench<F>(id: &str, sample_size: usize, throughput: Option<Throughput>, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let sample_size = if quick_mode() { 1 } else { sample_size };
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        eprintln!("bench {id:40} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().expect("nonempty");
    let max = bencher.samples.iter().max().expect("nonempty");
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean.as_secs_f64() > 0.0 => {
            format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean.as_secs_f64() > 0.0 => {
            format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    eprintln!(
        "bench {id:40} mean {mean:>12?}  min {min:>12?}  max {max:>12?}{rate}"
    );
}

/// Declares a group runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        // 1 warm-up + DEFAULT_SAMPLE_SIZE timed calls.
        assert_eq!(calls, 1 + DEFAULT_SAMPLE_SIZE as u32);
    }

    #[test]
    fn groups_and_ids() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Elements(100));
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::new("n", 7), &7usize, |b, &x| {
            b.iter(|| calls += x as u32)
        });
        group.bench_function(BenchmarkId::from_parameter(42), |b| b.iter(|| ()));
        group.finish();
        assert_eq!(calls, 7 * 4); // warm-up + 3 samples
    }
}
