//! Offline drop-in subset of the `rand` crate API.
//!
//! The build environment has no crates.io access, so this workspace-local
//! shim provides the slice of `rand` 0.8 the codebase uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! (`gen`, `gen_range`, `gen_bool`), and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ with a splitmix64 seed expander. Streams are
//! deterministic per seed but are **not** bit-compatible with upstream
//! `rand`; nothing in the workspace depends on upstream streams, only on
//! per-seed determinism.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen` can produce (subset of the `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range `Rng::gen_range` can sample a `T` from. Mirrors upstream's
/// generic shape so integer-literal inference flows from the call site's
/// expected type.
pub trait SampleRange<T> {
    /// Samples uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % width) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % width) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// Extension methods over any [`RngCore`] (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named RNGs.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Subset of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.5..1.5);
            assert!((0.5..1.5).contains(&f));
            let u = rng.gen_range(b'a'..=b'z');
            assert!(u.is_ascii_lowercase());
        }
    }

    #[test]
    fn float_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
