//! `trace` — Zipkin-style event timelines and failure visualization
//! (paper §IV-D: "The tool instruments selected RPC APIs in the target
//! software, and records their invocations ... visualized as events on
//! timelines").
//!
//! The `etcdsim` host records one [`Span`]-equivalent per API call; the
//! sandbox converts them into a [`Timeline`], and [`render_timeline`]
//! draws an ASCII chart (standing in for Zipkin's interactive plots).
//!
//! # Example
//!
//! ```
//! use trace::{Span, Timeline};
//!
//! let mut t = Timeline::new();
//! t.push(Span::new("client", "PUT /v2/keys/a", 0.00, 0.02).ok());
//! t.push(Span::new("client", "GET /v2/keys/a", 0.05, 0.01).err());
//! let art = trace::render_timeline(&t, 40);
//! assert!(art.contains("PUT /v2/keys/a"));
//! ```

pub mod json;
pub mod store;

pub use store::TraceStore;

use std::fmt::Write as _;

/// One traced operation.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// Service/component that performed the operation.
    pub service: String,
    /// Operation label (e.g. `"PUT /v2/keys/a"`).
    pub name: String,
    /// Start time (virtual seconds).
    pub start: f64,
    /// Duration (virtual seconds).
    pub duration: f64,
    /// Whether the operation failed.
    pub failed: bool,
}

impl Span {
    /// Creates a successful span.
    pub fn new(service: &str, name: &str, start: f64, duration: f64) -> Span {
        Span {
            service: service.to_string(),
            name: name.to_string(),
            start,
            duration,
            failed: false,
        }
    }

    /// Marks the span successful (builder-style).
    pub fn ok(mut self) -> Span {
        self.failed = false;
        self
    }

    /// Marks the span failed (builder-style).
    pub fn err(mut self) -> Span {
        self.failed = true;
        self
    }
}

/// An ordered collection of spans.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    spans: Vec<Span>,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Timeline {
        Timeline::default()
    }

    /// Appends a span.
    pub fn push(&mut self, span: Span) {
        self.spans.push(span);
    }

    /// The spans in insertion order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// End time of the last-finishing span.
    pub fn end_time(&self) -> f64 {
        self.spans
            .iter()
            .map(|s| s.start + s.duration)
            .fold(0.0, f64::max)
    }

    /// Number of failed spans.
    pub fn failures(&self) -> usize {
        self.spans.iter().filter(|s| s.failed).count()
    }
}

impl FromIterator<Span> for Timeline {
    fn from_iter<I: IntoIterator<Item = Span>>(iter: I) -> Timeline {
        Timeline {
            spans: iter.into_iter().collect(),
        }
    }
}

impl Extend<Span> for Timeline {
    fn extend<I: IntoIterator<Item = Span>>(&mut self, iter: I) {
        self.spans.extend(iter);
    }
}

/// Renders the timeline as an ASCII chart, one row per span:
/// `###` bars positioned proportionally, `!!!` for failed spans.
pub fn render_timeline(timeline: &Timeline, width: usize) -> String {
    let mut out = String::new();
    let total = timeline.end_time().max(1e-9);
    let label_width = timeline
        .spans()
        .iter()
        .map(|s| s.service.len() + s.name.len() + 3)
        .max()
        .unwrap_or(8)
        .min(48);
    let _ = writeln!(
        out,
        "{:label_width$} |{}| t=0..{:.3}s",
        "span",
        "-".repeat(width),
        total
    );
    for span in timeline.spans() {
        let label = format!("{} {}", span.service, span.name);
        let label = if label.len() > label_width {
            // Truncate on a char boundary: labels carry user-supplied
            // campaign/operation names, which may be multibyte.
            let cut = label_width.saturating_sub(1);
            let boundary = (0..=cut).rev().find(|i| label.is_char_boundary(*i));
            format!("{}…", &label[..boundary.unwrap_or(0)])
        } else {
            label
        };
        let begin = ((span.start / total) * width as f64).floor() as usize;
        let mut bar_len = ((span.duration / total) * width as f64).ceil() as usize;
        bar_len = bar_len.clamp(1, width.saturating_sub(begin).max(1));
        let fill = if span.failed { "!" } else { "#" };
        let _ = writeln!(
            out,
            "{:label_width$} |{}{}{}|",
            label,
            " ".repeat(begin.min(width)),
            fill.repeat(bar_len),
            " ".repeat(width.saturating_sub(begin + bar_len)),
        );
    }
    let _ = writeln!(
        out,
        "{} spans, {} failed",
        timeline.len(),
        timeline.failures()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Timeline {
        let mut t = Timeline::new();
        t.push(Span::new("client", "PUT /v2/keys/a", 0.0, 0.5));
        t.push(Span::new("client", "GET /v2/keys/a", 0.6, 0.2));
        t.push(Span::new("client", "DELETE /v2/keys/a", 0.9, 0.1).err());
        t
    }

    #[test]
    fn timeline_accumulates_spans() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert_eq!(t.failures(), 1);
        assert!((t.end_time() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn render_contains_labels_and_bars() {
        let art = render_timeline(&sample(), 40);
        assert!(art.contains("PUT /v2/keys/a"));
        assert!(art.contains('#'));
        assert!(art.contains('!'), "failed span rendered with !");
        assert!(art.contains("3 spans, 1 failed"));
    }

    #[test]
    fn render_handles_empty_timeline() {
        let art = render_timeline(&Timeline::new(), 20);
        assert!(art.contains("0 spans"));
    }

    #[test]
    fn bars_are_positioned_proportionally() {
        let mut t = Timeline::new();
        t.push(Span::new("a", "early", 0.0, 0.1));
        t.push(Span::new("a", "late", 0.9, 0.1));
        let art = render_timeline(&t, 40);
        let early_line = art.lines().nth(1).unwrap();
        let late_line = art.lines().nth(2).unwrap();
        assert!(early_line.find('#') < late_line.find('#'));
    }

    #[test]
    fn from_iterator_collects() {
        let t: Timeline = vec![Span::new("s", "x", 0.0, 1.0)].into_iter().collect();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn empty_timeline_output_is_stable() {
        let art = render_timeline(&Timeline::new(), 20);
        let expected = format!("{:8} |{}| t=0..0.000s\n0 spans, 0 failed\n", "span", "-".repeat(20));
        assert_eq!(art, expected);
    }

    #[test]
    fn zero_duration_spans_render_one_cell_bars() {
        let mut t = Timeline::new();
        t.push(Span::new("a", "instant", 0.0, 0.0));
        t.push(Span::new("a", "anchor", 0.0, 1.0));
        let art = render_timeline(&t, 30);
        let instant_line = art.lines().nth(1).unwrap();
        assert_eq!(
            instant_line.matches('#').count(),
            1,
            "zero-duration span draws exactly one cell: {instant_line}"
        );
        // Every span row stays exactly as wide as the chart.
        let rows: Vec<&str> = art.lines().skip(1).take(t.len()).collect();
        for row in &rows {
            assert_eq!(row.len(), rows[0].len(), "{art}");
        }
    }

    #[test]
    fn spans_wider_than_the_chart_clamp_without_panicking() {
        let mut t = Timeline::new();
        // Three mutually overlapping spans, one starting near the end
        // of the chart with a duration that would run past it.
        t.push(Span::new("a", "whole", 0.0, 10.0));
        t.push(Span::new("b", "tail", 9.5, 10.0).err());
        t.push(Span::new("c", "mid", 2.0, 9.0));
        let art = render_timeline(&t, 8);
        let rows: Vec<&str> = art.lines().skip(1).take(3).collect();
        for row in &rows {
            assert_eq!(row.len(), rows[0].len(), "bars must clamp to the chart:\n{art}");
        }
        assert!(art.contains('!'), "failed overlap keeps its marker");
        // Stable output: rendering twice is byte-identical.
        assert_eq!(art, render_timeline(&t, 8));
    }

    #[test]
    fn zero_width_chart_does_not_panic() {
        let mut t = Timeline::new();
        t.push(Span::new("a", "x", 0.0, 1.0));
        let art = render_timeline(&t, 0);
        assert!(art.contains("1 spans"));
    }

    #[test]
    fn multibyte_labels_truncate_on_char_boundaries() {
        let mut t = Timeline::new();
        t.push(Span::new("sërvïcé", &"émploi-très-long-ünïcode-".repeat(4), 0.0, 1.0));
        t.push(Span::new("a", "b", 0.5, 0.5));
        let art = render_timeline(&t, 24); // must not panic mid-char
        assert!(art.contains('…'));
    }
}
