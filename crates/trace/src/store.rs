//! [`TraceStore`] — per-campaign span accumulation for fleet-wide
//! tracing.
//!
//! The campaign engine `begin`s an entry when it first prepares a
//! campaign; every layer (engine, coordinator, workers via the wire
//! format) then records spans against the campaign id. Span `start`
//! times are seconds since the entry's epoch, so spans recorded on
//! different nodes merge onto one timeline.
//!
//! The store is bounded on both axes: at most `key_cap` campaigns
//! (oldest key evicted — ids are zero-padded so lexicographic order is
//! admission order) and at most `span_cap` spans per campaign (extra
//! spans are counted in `dropped`, never silently discarded).

use crate::{Span, Timeline};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Default per-campaign span cap.
pub const DEFAULT_SPAN_CAP: usize = 1024;
/// Default campaign-entry cap.
pub const DEFAULT_KEY_CAP: usize = 256;

struct Entry {
    epoch: Instant,
    spans: Vec<Span>,
    dropped: u64,
}

/// Thread-safe span store keyed by campaign id.
pub struct TraceStore {
    span_cap: usize,
    key_cap: usize,
    inner: Mutex<BTreeMap<String, Entry>>,
}

impl Default for TraceStore {
    fn default() -> TraceStore {
        TraceStore::new()
    }
}

impl TraceStore {
    pub fn new() -> TraceStore {
        TraceStore::with_caps(DEFAULT_SPAN_CAP, DEFAULT_KEY_CAP)
    }

    pub fn with_caps(span_cap: usize, key_cap: usize) -> TraceStore {
        TraceStore {
            span_cap: span_cap.max(1),
            key_cap: key_cap.max(1),
            inner: Mutex::new(BTreeMap::new()),
        }
    }

    /// Opens an entry for `key` (idempotent). The entry's epoch — the
    /// `t=0` of its timeline — is the first `begin` call.
    pub fn begin(&self, key: &str) {
        let mut inner = self.inner.lock().unwrap();
        if inner.contains_key(key) {
            return;
        }
        while inner.len() >= self.key_cap {
            let oldest = inner.keys().next().cloned().expect("non-empty map");
            inner.remove(&oldest);
        }
        inner.insert(
            key.to_string(),
            Entry {
                epoch: Instant::now(),
                spans: Vec::new(),
                dropped: 0,
            },
        );
    }

    /// Seconds elapsed since `key`'s epoch, or `None` for unknown keys.
    pub fn offset(&self, key: &str) -> Option<f64> {
        let inner = self.inner.lock().unwrap();
        inner.get(key).map(|e| e.epoch.elapsed().as_secs_f64())
    }

    /// Records a pre-built span (with `start` already relative to the
    /// entry's epoch). Returns `false` if the key is unknown or the
    /// span was dropped by the cap — recording never creates entries,
    /// so arbitrary keys (e.g. from a worker upload) cannot grow the
    /// store.
    pub fn record(&self, key: &str, span: Span) -> bool {
        let mut inner = self.inner.lock().unwrap();
        let Some(entry) = inner.get_mut(key) else {
            return false;
        };
        if entry.spans.len() >= self.span_cap {
            entry.dropped += 1;
            return false;
        }
        entry.spans.push(span);
        true
    }

    /// Records a span timed with wall-clock [`Instant`]s; the start
    /// offset is computed against the entry's epoch (clamped to 0 for
    /// spans that began before it).
    pub fn record_phase(
        &self,
        key: &str,
        service: &str,
        name: &str,
        started: Instant,
        duration: Duration,
        failed: bool,
    ) -> bool {
        let mut inner = self.inner.lock().unwrap();
        let Some(entry) = inner.get_mut(key) else {
            return false;
        };
        if entry.spans.len() >= self.span_cap {
            entry.dropped += 1;
            return false;
        }
        let start = started
            .checked_duration_since(entry.epoch)
            .unwrap_or(Duration::ZERO)
            .as_secs_f64();
        let mut span = Span::new(service, name, start, duration.as_secs_f64());
        span.failed = failed;
        entry.spans.push(span);
        true
    }

    /// The merged timeline for `key`, spans sorted by start time (then
    /// service, then name — a total order, so output is stable).
    pub fn timeline(&self, key: &str) -> Option<Timeline> {
        let inner = self.inner.lock().unwrap();
        let entry = inner.get(key)?;
        let mut spans = entry.spans.clone();
        spans.sort_by(|a, b| {
            a.start
                .partial_cmp(&b.start)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.service.cmp(&b.service))
                .then_with(|| a.name.cmp(&b.name))
        });
        Some(spans.into_iter().collect())
    }

    /// Spans dropped by the per-campaign cap.
    pub fn dropped(&self, key: &str) -> u64 {
        let inner = self.inner.lock().unwrap();
        inner.get(key).map(|e| e.dropped).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_requires_begin() {
        let store = TraceStore::new();
        assert!(!store.record("c1", Span::new("s", "x", 0.0, 1.0)));
        store.begin("c1");
        assert!(store.record("c1", Span::new("s", "x", 0.0, 1.0)));
        assert_eq!(store.timeline("c1").unwrap().len(), 1);
        assert!(store.timeline("nope").is_none());
    }

    #[test]
    fn span_cap_counts_drops() {
        let store = TraceStore::with_caps(2, 16);
        store.begin("c");
        for i in 0..5 {
            store.record("c", Span::new("s", &format!("op{i}"), i as f64, 0.1));
        }
        assert_eq!(store.timeline("c").unwrap().len(), 2);
        assert_eq!(store.dropped("c"), 3);
    }

    #[test]
    fn key_cap_evicts_oldest_key() {
        let store = TraceStore::with_caps(8, 2);
        store.begin("job-000001");
        store.begin("job-000002");
        store.begin("job-000003");
        assert!(store.timeline("job-000001").is_none(), "oldest evicted");
        assert!(store.timeline("job-000003").is_some());
    }

    #[test]
    fn timelines_sort_spans_by_start() {
        let store = TraceStore::new();
        store.begin("c");
        store.record("c", Span::new("b", "late", 2.0, 0.5));
        store.record("c", Span::new("a", "early", 0.5, 0.5));
        let t = store.timeline("c").unwrap();
        assert_eq!(t.spans()[0].name, "early");
        assert_eq!(t.spans()[1].name, "late");
    }

    #[test]
    fn record_phase_clamps_pre_epoch_starts() {
        let store = TraceStore::new();
        let before = Instant::now();
        std::thread::sleep(Duration::from_millis(2));
        store.begin("c");
        assert!(store.record_phase("c", "s", "x", before, Duration::from_millis(1), false));
        let t = store.timeline("c").unwrap();
        assert_eq!(t.spans()[0].start, 0.0);
    }
}
