//! JSON codecs for [`Span`]/[`Timeline`] — used by the campaign API's
//! trace endpoint and the cluster wire format.

use crate::{Span, Timeline};
use jsonlite::Value;

pub fn span_to_value(span: &Span) -> Value {
    Value::obj(vec![
        ("service", Value::str(&span.service)),
        ("name", Value::str(&span.name)),
        ("start", Value::Float(span.start)),
        ("duration", Value::Float(span.duration)),
        ("failed", Value::Bool(span.failed)),
    ])
}

pub fn span_from_value(v: &Value) -> Option<Span> {
    let mut span = Span::new(
        v.get("service")?.as_str()?,
        v.get("name")?.as_str()?,
        v.get("start")?.as_f64()?,
        v.get("duration")?.as_f64()?,
    );
    span.failed = v.get("failed").and_then(Value::as_bool).unwrap_or(false);
    Some(span)
}

pub fn timeline_to_value(timeline: &Timeline) -> Value {
    Value::Arr(timeline.spans().iter().map(span_to_value).collect())
}

pub fn timeline_from_value(v: &Value) -> Option<Timeline> {
    let spans = v.as_arr()?;
    spans.iter().map(span_from_value).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_round_trip_through_json() {
        let mut t = Timeline::new();
        t.push(Span::new("worker-01", "execute #4", 0.25, 0.125).err());
        t.push(Span::new("engine", "prepare", 0.0, 0.5));
        let text = timeline_to_value(&t).compact();
        let back = timeline_from_value(&jsonlite::parse(&text).unwrap()).unwrap();
        assert_eq!(back.spans(), t.spans());
    }

    #[test]
    fn missing_fields_decode_to_none() {
        let v = jsonlite::parse(r#"{"service":"s","name":"n"}"#).unwrap();
        assert!(span_from_value(&v).is_none());
    }
}
