//! `pysrc` — front end for the mini-Python subset used by the ProFIPy
//! reproduction.
//!
//! This crate stands in for CPython's `ast` module in the original paper:
//! it provides an indentation-aware [`lexer`], a recursive-descent
//! [`parser`] producing a spanned [`ast`], an [`unparse`]r that turns
//! ASTs back into source text, and [`visit`]ors used by the scanner and
//! mutator in the `injector` crate.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), pysrc::ParseError> {
//! let module = pysrc::parse_module("x = 1 + 2\n", "example.py")?;
//! assert_eq!(module.body.len(), 1);
//! let src = pysrc::unparse::unparse_module(&module);
//! assert_eq!(src, "x = 1 + 2\n");
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod token;
pub mod unparse;
pub mod visit;

pub use ast::{Module, NodeId};
pub use error::ParseError;
pub use parser::parse_module;
