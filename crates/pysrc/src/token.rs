//! Token definitions for the mini-Python lexer.

use crate::error::Span;
use std::fmt;

/// A lexical token with its source span.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Source span the token covers.
    pub span: Span,
}

/// The kind of a lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// Identifier (not a keyword).
    Ident(String),
    /// Reserved keyword.
    Keyword(Keyword),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal (decoded contents).
    Str(String),
    /// Operator or punctuation.
    Op(Op),
    /// Logical end of line.
    Newline,
    /// Increase of indentation level.
    Indent,
    /// Decrease of indentation level.
    Dedent,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Keyword(k) => write!(f, "keyword `{k}`"),
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::Float(v) => write!(f, "float `{v}`"),
            TokenKind::Str(_) => write!(f, "string literal"),
            TokenKind::Op(op) => write!(f, "`{op}`"),
            TokenKind::Newline => write!(f, "newline"),
            TokenKind::Indent => write!(f, "indent"),
            TokenKind::Dedent => write!(f, "dedent"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

macro_rules! keywords {
    ($($variant:ident => $text:literal),* $(,)?) => {
        /// Reserved words of the mini-Python subset.
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
        pub enum Keyword {
            $(#[doc = $text] $variant),*
        }

        impl Keyword {
            /// Looks up a keyword from its spelling.
            pub fn from_text(s: &str) -> Option<Keyword> {
                match s {
                    $($text => Some(Keyword::$variant),)*
                    _ => None,
                }
            }

            /// The source spelling of the keyword.
            pub fn as_str(self) -> &'static str {
                match self {
                    $(Keyword::$variant => $text,)*
                }
            }
        }

        impl fmt::Display for Keyword {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.as_str())
            }
        }
    };
}

keywords! {
    And => "and",
    As => "as",
    Assert => "assert",
    Break => "break",
    Class => "class",
    Continue => "continue",
    Def => "def",
    Del => "del",
    Elif => "elif",
    Else => "else",
    Except => "except",
    False => "False",
    Finally => "finally",
    For => "for",
    From => "from",
    Global => "global",
    If => "if",
    Import => "import",
    In => "in",
    Is => "is",
    Lambda => "lambda",
    None => "None",
    Not => "not",
    Or => "or",
    Pass => "pass",
    Raise => "raise",
    Return => "return",
    True => "True",
    Try => "try",
    While => "while",
    With => "with",
}

macro_rules! ops {
    ($($variant:ident => $text:literal),* $(,)?) => {
        /// Operators and punctuation.
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
        pub enum Op {
            $(#[doc = $text] $variant),*
        }

        impl Op {
            /// The source spelling of the operator.
            pub fn as_str(self) -> &'static str {
                match self {
                    $(Op::$variant => $text,)*
                }
            }
        }

        impl fmt::Display for Op {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.as_str())
            }
        }
    };
}

ops! {
    Plus => "+",
    Minus => "-",
    Star => "*",
    DoubleStar => "**",
    Slash => "/",
    DoubleSlash => "//",
    Percent => "%",
    At => "@",
    Amp => "&",
    Pipe => "|",
    Caret => "^",
    Tilde => "~",
    Shl => "<<",
    Shr => ">>",
    Lt => "<",
    Gt => ">",
    Le => "<=",
    Ge => ">=",
    Eq => "==",
    Ne => "!=",
    Assign => "=",
    PlusAssign => "+=",
    MinusAssign => "-=",
    StarAssign => "*=",
    SlashAssign => "/=",
    DoubleSlashAssign => "//=",
    PercentAssign => "%=",
    LParen => "(",
    RParen => ")",
    LBracket => "[",
    RBracket => "]",
    LBrace => "{",
    RBrace => "}",
    Comma => ",",
    Colon => ":",
    Dot => ".",
    Semicolon => ";",
    Arrow => "->",
}
