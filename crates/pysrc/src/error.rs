//! Parse errors with source positions.

use std::fmt;

/// A position in a source file (1-based line, 0-based column).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 0-based column (in characters).
    pub col: u32,
}

impl Pos {
    /// Creates a position.
    pub fn new(line: u32, col: u32) -> Self {
        Pos { line, col }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A half-open span of source text.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Start position (inclusive).
    pub lo: Pos,
    /// End position (exclusive).
    pub hi: Pos,
}

impl Span {
    /// Creates a span between two positions.
    pub fn new(lo: Pos, hi: Pos) -> Self {
        Span { lo, hi }
    }

    /// A span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.lo, self.hi)
    }
}

/// Error produced while lexing or parsing mini-Python source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Where the error occurred.
    pub span: Span,
    /// File the error occurred in.
    pub file: String,
}

impl ParseError {
    /// Creates a parse error.
    pub fn new(message: impl Into<String>, span: Span, file: impl Into<String>) -> Self {
        ParseError {
            message: message.into(),
            span,
            file: file.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.file, self.span.lo, self.message)
    }
}

impl std::error::Error for ParseError {}
