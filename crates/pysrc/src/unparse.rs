//! AST → source text. The output is canonical mini-Python (4-space
//! indents, normalized spacing) and is guaranteed to re-parse to a
//! structurally identical AST (property-tested in the crate tests).

use crate::ast::*;

/// Renders a whole module as source text.
pub fn unparse_module(module: &Module) -> String {
    let mut out = String::new();
    for stmt in &module.body {
        write_stmt(&mut out, stmt, 0);
    }
    out
}

/// Renders a single statement (including its trailing newline and any
/// nested blocks) at indent level 0.
pub fn unparse_stmt(stmt: &Stmt) -> String {
    let mut out = String::new();
    write_stmt(&mut out, stmt, 0);
    out
}

/// Renders an expression.
pub fn unparse_expr(expr: &Expr) -> String {
    let mut out = String::new();
    write_expr(&mut out, expr, 0);
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn write_block(out: &mut String, body: &[Stmt], level: usize) {
    if body.is_empty() {
        indent(out, level);
        out.push_str("pass\n");
    } else {
        for s in body {
            write_stmt(out, s, level);
        }
    }
}

fn write_stmt(out: &mut String, stmt: &Stmt, level: usize) {
    indent(out, level);
    match &stmt.kind {
        StmtKind::Expr(e) => {
            write_expr(out, e, 0);
            out.push('\n');
        }
        StmtKind::Assign { targets, value } => {
            for t in targets {
                write_expr(out, t, 0);
                out.push_str(" = ");
            }
            write_expr(out, value, 0);
            out.push('\n');
        }
        StmtKind::AugAssign { target, op, value } => {
            write_expr(out, target, 0);
            out.push(' ');
            out.push_str(op.as_str());
            out.push_str("= ");
            write_expr(out, value, 0);
            out.push('\n');
        }
        StmtKind::Return(v) => {
            out.push_str("return");
            if let Some(v) = v {
                out.push(' ');
                write_expr(out, v, 0);
            }
            out.push('\n');
        }
        StmtKind::Pass => out.push_str("pass\n"),
        StmtKind::Break => out.push_str("break\n"),
        StmtKind::Continue => out.push_str("continue\n"),
        StmtKind::Del(targets) => {
            out.push_str("del ");
            for (i, t) in targets.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, t, 0);
            }
            out.push('\n');
        }
        StmtKind::Assert { test, msg } => {
            out.push_str("assert ");
            write_expr(out, test, 0);
            if let Some(m) = msg {
                out.push_str(", ");
                write_expr(out, m, 0);
            }
            out.push('\n');
        }
        StmtKind::Global(names) => {
            out.push_str("global ");
            out.push_str(&names.join(", "));
            out.push('\n');
        }
        StmtKind::Import(aliases) => {
            out.push_str("import ");
            write_aliases(out, aliases);
            out.push('\n');
        }
        StmtKind::FromImport { module, names } => {
            out.push_str("from ");
            out.push_str(module);
            out.push_str(" import ");
            write_aliases(out, names);
            out.push('\n');
        }
        StmtKind::If { branches, orelse } => {
            for (i, (test, body)) in branches.iter().enumerate() {
                if i > 0 {
                    indent(out, level);
                    out.push_str("elif ");
                } else {
                    out.push_str("if ");
                }
                write_expr(out, test, 0);
                out.push_str(":\n");
                write_block(out, body, level + 1);
            }
            if !orelse.is_empty() {
                indent(out, level);
                out.push_str("else:\n");
                write_block(out, orelse, level + 1);
            }
        }
        StmtKind::While { test, body, orelse } => {
            out.push_str("while ");
            write_expr(out, test, 0);
            out.push_str(":\n");
            write_block(out, body, level + 1);
            if !orelse.is_empty() {
                indent(out, level);
                out.push_str("else:\n");
                write_block(out, orelse, level + 1);
            }
        }
        StmtKind::For {
            target,
            iter,
            body,
            orelse,
        } => {
            out.push_str("for ");
            write_target(out, target);
            out.push_str(" in ");
            write_expr(out, iter, 0);
            out.push_str(":\n");
            write_block(out, body, level + 1);
            if !orelse.is_empty() {
                indent(out, level);
                out.push_str("else:\n");
                write_block(out, orelse, level + 1);
            }
        }
        StmtKind::FuncDef { name, params, body } => {
            out.push_str("def ");
            out.push_str(name);
            out.push('(');
            write_params(out, params);
            out.push_str("):\n");
            write_block(out, body, level + 1);
        }
        StmtKind::ClassDef { name, bases, body } => {
            out.push_str("class ");
            out.push_str(name);
            if !bases.is_empty() {
                out.push('(');
                for (i, b) in bases.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_expr(out, b, 0);
                }
                out.push(')');
            }
            out.push_str(":\n");
            write_block(out, body, level + 1);
        }
        StmtKind::Try {
            body,
            handlers,
            orelse,
            finalbody,
        } => {
            out.push_str("try:\n");
            write_block(out, body, level + 1);
            for h in handlers {
                indent(out, level);
                out.push_str("except");
                if let Some(t) = &h.exc_type {
                    out.push(' ');
                    write_expr(out, t, 0);
                    if let Some(n) = &h.name {
                        out.push_str(" as ");
                        out.push_str(n);
                    }
                }
                out.push_str(":\n");
                write_block(out, &h.body, level + 1);
            }
            if !orelse.is_empty() {
                indent(out, level);
                out.push_str("else:\n");
                write_block(out, orelse, level + 1);
            }
            if !finalbody.is_empty() {
                indent(out, level);
                out.push_str("finally:\n");
                write_block(out, finalbody, level + 1);
            }
        }
        StmtKind::Raise { exc, cause } => {
            out.push_str("raise");
            if let Some(e) = exc {
                out.push(' ');
                write_expr(out, e, 0);
                if let Some(c) = cause {
                    out.push_str(" from ");
                    write_expr(out, c, 0);
                }
            }
            out.push('\n');
        }
        StmtKind::With { items, body } => {
            out.push_str("with ");
            for (i, (ctx, target)) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, ctx, 0);
                if let Some(t) = target {
                    out.push_str(" as ");
                    write_expr(out, t, 0);
                }
            }
            out.push_str(":\n");
            write_block(out, body, level + 1);
        }
    }
}

fn write_aliases(out: &mut String, aliases: &[ImportAlias]) {
    for (i, a) in aliases.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&a.name);
        if let Some(alias) = &a.alias {
            out.push_str(" as ");
            out.push_str(alias);
        }
    }
}

fn write_params(out: &mut String, params: &[Param]) {
    for (i, p) in params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match p.kind {
            ParamKind::Star => out.push('*'),
            ParamKind::DoubleStar => out.push_str("**"),
            ParamKind::Normal => {}
        }
        out.push_str(&p.name);
        if let Some(d) = &p.default {
            out.push('=');
            write_expr(out, d, 0);
        }
    }
}

/// `for` targets: bare tuples print without parentheses.
fn write_target(out: &mut String, target: &Expr) {
    if let ExprKind::Tuple(items) = &target.kind {
        if !items.is_empty() {
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, item, 0);
            }
            return;
        }
    }
    write_expr(out, target, 0);
}

/// Precedence table for parenthesization. Higher binds tighter.
fn precedence(expr: &Expr) -> u8 {
    match &expr.kind {
        ExprKind::Lambda { .. } => 1,
        ExprKind::IfExp { .. } => 2,
        ExprKind::BoolOp { op, .. } => match op {
            BoolOpKind::Or => 3,
            BoolOpKind::And => 4,
        },
        ExprKind::Unary {
            op: UnaryOp::Not, ..
        } => 5,
        ExprKind::Compare { .. } => 6,
        ExprKind::Binary { op, .. } => match op {
            BinOp::BitOr => 7,
            BinOp::BitXor => 8,
            BinOp::BitAnd => 9,
            BinOp::Shl | BinOp::Shr => 10,
            BinOp::Add | BinOp::Sub => 11,
            BinOp::Mul | BinOp::Div | BinOp::FloorDiv | BinOp::Mod => 12,
            BinOp::Pow => 14,
        },
        ExprKind::Unary { .. } => 13,
        ExprKind::Starred(_) => 15,
        _ => 20,
    }
}

fn write_child(out: &mut String, child: &Expr, min_prec: u8) {
    if precedence(child) < min_prec {
        out.push('(');
        write_expr(out, child, 0);
        out.push(')');
    } else {
        write_expr(out, child, min_prec);
    }
}

fn write_expr(out: &mut String, expr: &Expr, _ambient: u8) {
    match &expr.kind {
        ExprKind::Num(Number::Int(v)) => {
            if *v < 0 {
                // Negative literal needs parens in contexts like `(-1).foo`;
                // we only synthesize them in plain positions, so plain text.
                out.push_str(&v.to_string());
            } else {
                out.push_str(&v.to_string());
            }
        }
        ExprKind::Num(Number::Float(v)) => {
            let s = format!("{v}");
            out.push_str(&s);
            if !s.contains('.') && !s.contains('e') && !s.contains("inf") && !s.contains("NaN") {
                out.push_str(".0");
            }
        }
        ExprKind::Str(s) => {
            out.push('\'');
            for c in s.chars() {
                match c {
                    '\\' => out.push_str("\\\\"),
                    '\'' => out.push_str("\\'"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    '\0' => out.push_str("\\0"),
                    c => out.push(c),
                }
            }
            out.push('\'');
        }
        ExprKind::Bool(true) => out.push_str("True"),
        ExprKind::Bool(false) => out.push_str("False"),
        ExprKind::NoneLit => out.push_str("None"),
        ExprKind::Name(n) => out.push_str(n),
        ExprKind::Attribute { value, attr } => {
            // A numeric-literal base must be parenthesized: `905.attr`
            // would lex as a float followed by a name.
            if matches!(value.kind, ExprKind::Num(_)) {
                out.push('(');
                write_expr(out, value, 0);
                out.push(')');
            } else {
                write_child(out, value, 16);
            }
            out.push('.');
            out.push_str(attr);
        }
        ExprKind::Subscript { value, index } => {
            write_child(out, value, 16);
            out.push('[');
            write_expr(out, index, 0);
            out.push(']');
        }
        ExprKind::Slice { lower, upper, step } => {
            if let Some(l) = lower {
                write_expr(out, l, 0);
            }
            out.push(':');
            if let Some(u) = upper {
                write_expr(out, u, 0);
            }
            if let Some(s) = step {
                out.push(':');
                write_expr(out, s, 0);
            }
        }
        ExprKind::Call { func, args } => {
            write_child(out, func, 16);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                match a {
                    Arg::Pos(e) => write_expr(out, e, 0),
                    Arg::Kw(n, e) => {
                        out.push_str(n);
                        out.push('=');
                        write_expr(out, e, 0);
                    }
                    Arg::Star(e) => {
                        out.push('*');
                        write_expr(out, e, 0);
                    }
                    Arg::DoubleStar(e) => {
                        out.push_str("**");
                        write_expr(out, e, 0);
                    }
                }
            }
            out.push(')');
        }
        ExprKind::Unary { op, operand } => match op {
            UnaryOp::Not => {
                out.push_str("not ");
                write_child(out, operand, 5);
            }
            UnaryOp::Neg => {
                out.push('-');
                write_child(out, operand, 13);
            }
            UnaryOp::Pos => {
                out.push('+');
                write_child(out, operand, 13);
            }
            UnaryOp::Invert => {
                out.push('~');
                write_child(out, operand, 13);
            }
        },
        ExprKind::Binary { left, op, right } => {
            let prec = precedence(expr);
            // Left-associative except Pow.
            if *op == BinOp::Pow {
                write_child(out, left, prec + 1);
                out.push_str(" ** ");
                write_child(out, right, prec);
            } else {
                write_child(out, left, prec);
                out.push(' ');
                out.push_str(op.as_str());
                out.push(' ');
                write_child(out, right, prec + 1);
            }
        }
        ExprKind::BoolOp { op, values } => {
            let prec = precedence(expr);
            let sep = match op {
                BoolOpKind::And => " and ",
                BoolOpKind::Or => " or ",
            };
            for (i, v) in values.iter().enumerate() {
                if i > 0 {
                    out.push_str(sep);
                }
                write_child(out, v, prec + 1);
            }
        }
        ExprKind::Compare {
            left,
            ops,
            comparators,
        } => {
            write_child(out, left, 7);
            for (op, c) in ops.iter().zip(comparators) {
                out.push(' ');
                out.push_str(op.as_str());
                out.push(' ');
                write_child(out, c, 7);
            }
        }
        ExprKind::Lambda { params, body } => {
            out.push_str("lambda");
            if !params.is_empty() {
                out.push(' ');
                write_params(out, params);
            }
            out.push_str(": ");
            write_expr(out, body, 0);
        }
        ExprKind::IfExp { test, body, orelse } => {
            write_child(out, body, 3);
            out.push_str(" if ");
            write_child(out, test, 3);
            out.push_str(" else ");
            write_child(out, orelse, 2);
        }
        ExprKind::Tuple(items) => {
            out.push('(');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, item, 0);
            }
            if items.len() == 1 {
                out.push(',');
            }
            out.push(')');
        }
        ExprKind::List(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, item, 0);
            }
            out.push(']');
        }
        ExprKind::Dict(pairs) => {
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, k, 0);
                out.push_str(": ");
                write_expr(out, v, 0);
            }
            out.push('}');
        }
        ExprKind::Set(items) => {
            out.push('{');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, item, 0);
            }
            out.push('}');
        }
        ExprKind::ListComp {
            elt,
            target,
            iter,
            ifs,
        } => {
            out.push('[');
            write_expr(out, elt, 0);
            out.push_str(" for ");
            write_target(out, target);
            out.push_str(" in ");
            write_child(out, iter, 3);
            for cond in ifs {
                out.push_str(" if ");
                write_child(out, cond, 3);
            }
            out.push(']');
        }
        ExprKind::Starred(inner) => {
            out.push('*');
            write_child(out, inner, 16);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    fn roundtrip(src: &str) {
        let m1 = parse_module(src, "t.py").unwrap();
        let printed = unparse_module(&m1);
        let m2 = parse_module(&printed, "t.py")
            .unwrap_or_else(|e| panic!("reparse failed for:\n{printed}\nerror: {e}"));
        let printed2 = unparse_module(&m2);
        assert_eq!(printed, printed2, "unparse not a fixpoint for:\n{src}");
    }

    #[test]
    fn roundtrips_statements() {
        roundtrip("x = 1\ny = x + 2\n");
        roundtrip("def f(a, b=1, *args, **kw):\n    return a + b\n");
        roundtrip("class C(Base):\n    def m(self):\n        pass\n");
        roundtrip("if a:\n    b()\nelif c:\n    d()\nelse:\n    e()\n");
        roundtrip("for k, v in d.items():\n    print(k, v)\nelse:\n    done()\n");
        roundtrip("while x < 10:\n    x += 1\n");
        roundtrip("try:\n    f()\nexcept E as e:\n    g()\nfinally:\n    h()\n");
        roundtrip("with open('f') as fh:\n    fh.read()\n");
        roundtrip("raise ValueError('bad') from err\n");
        roundtrip("import os, sys\nfrom a.b import c as d\n");
        roundtrip("del x, y\nassert x, 'msg'\nglobal g\n");
    }

    #[test]
    fn roundtrips_expressions() {
        roundtrip("r = (1 + 2) * 3\n");
        roundtrip("r = 1 + 2 * 3\n");
        roundtrip("r = -x ** 2\n");
        roundtrip("r = not a and b or c\n");
        roundtrip("r = a < b <= c\n");
        roundtrip("r = x if c else y\n");
        roundtrip("r = lambda a, b=2: a * b\n");
        roundtrip("r = [x for x in xs if x]\n");
        roundtrip("r = {'k': v, 'k2': v2}\n");
        roundtrip("r = (1,)\n");
        roundtrip("r = s[1:2:3]\n");
        roundtrip("r = f(a, k=b, *c, **d)\n");
        roundtrip("r = a.b.c(d)[e]\n");
        roundtrip("r = x is not None\n");
        roundtrip("r = 'quote \\' and \\\\ backslash\\n'\n");
    }

    #[test]
    fn parenthesizes_nested_precedence() {
        let m = parse_module("r = (a + b) * c\n", "t.py").unwrap();
        let s = unparse_module(&m);
        assert_eq!(s, "r = (a + b) * c\n");
    }

    #[test]
    fn empty_block_prints_pass() {
        use crate::ast::*;
        let stmt = Stmt::synth(StmtKind::If {
            branches: vec![(Expr::name("c"), vec![])],
            orelse: vec![],
        });
        assert_eq!(unparse_stmt(&stmt), "if c:\n    pass\n");
    }

    #[test]
    fn float_formatting_reparses() {
        roundtrip("x = 1.0\ny = 2.5e10\nz = 0.001\n");
    }

    #[test]
    fn attribute_on_numeric_literal_is_parenthesized() {
        // Found by the AST-generator proptest: `905.attr` lexes as a
        // float followed by a name; the base must be parenthesized.
        use crate::ast::*;
        let expr = Expr::synth(ExprKind::Attribute {
            value: Box::new(Expr::int(905)),
            attr: "bit_length".into(),
        });
        let stmt = Stmt::synth(StmtKind::Expr(expr));
        let printed = unparse_stmt(&stmt);
        assert_eq!(printed, "(905).bit_length\n");
        crate::parser::parse_module(&printed, "t.py").unwrap();
    }
}
