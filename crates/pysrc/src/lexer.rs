//! Indentation-aware lexer for the mini-Python subset.
//!
//! Produces a token stream with explicit [`TokenKind::Newline`],
//! [`TokenKind::Indent`] and [`TokenKind::Dedent`] tokens, mirroring
//! CPython's tokenizer. Blank lines and comment-only lines emit no
//! tokens; indentation is ignored inside brackets.

use crate::error::{ParseError, Pos, Span};
use crate::token::{Keyword, Op, Token, TokenKind};

/// Lexes an entire source file into a token vector (terminated by
/// [`TokenKind::Eof`]).
///
/// # Errors
///
/// Returns [`ParseError`] on malformed numbers, unterminated strings,
/// inconsistent indentation, or unexpected characters.
pub fn lex(source: &str, file: &str) -> Result<Vec<Token>, ParseError> {
    Lexer::new(source, file).run()
}

struct Lexer<'s> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    file: &'s str,
    tokens: Vec<Token>,
    indents: Vec<u32>,
    bracket_depth: usize,
    at_line_start: bool,
}

impl<'s> Lexer<'s> {
    fn new(source: &str, file: &'s str) -> Lexer<'s> {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            col: 0,
            file,
            tokens: Vec::new(),
            indents: vec![0],
            bracket_depth: 0,
            at_line_start: true,
        }
    }

    fn here(&self) -> Pos {
        Pos::new(self.line, self.col)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn peek3(&self) -> Option<char> {
        self.chars.get(self.pos + 2).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 0;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, msg: impl Into<String>, lo: Pos) -> ParseError {
        ParseError::new(msg, Span::new(lo, self.here()), self.file)
    }

    fn push(&mut self, kind: TokenKind, lo: Pos) {
        let span = Span::new(lo, self.here());
        self.tokens.push(Token { kind, span });
    }

    fn run(mut self) -> Result<Vec<Token>, ParseError> {
        while self.pos < self.chars.len() {
            if self.at_line_start && self.bracket_depth == 0 {
                self.handle_indentation()?;
                if self.pos >= self.chars.len() {
                    break;
                }
            }
            let lo = self.here();
            let c = match self.peek() {
                Some(c) => c,
                None => break,
            };
            match c {
                '\n' => {
                    self.bump();
                    if self.bracket_depth == 0 {
                        // Collapse consecutive newlines.
                        if !matches!(
                            self.tokens.last().map(|t| &t.kind),
                            Some(TokenKind::Newline) | None
                        ) {
                            self.push(TokenKind::Newline, lo);
                        }
                        self.at_line_start = true;
                    }
                }
                ' ' | '\t' | '\r' => {
                    self.bump();
                }
                '#' => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                '\\' if self.peek2() == Some('\n') => {
                    self.bump();
                    self.bump();
                }
                '"' | '\'' => self.lex_string()?,
                c if c.is_ascii_digit() => self.lex_number()?,
                '.' if self.peek2().is_some_and(|c| c.is_ascii_digit()) => self.lex_number()?,
                c if c.is_alphabetic() || c == '_' => self.lex_ident(),
                _ => self.lex_op()?,
            }
        }
        // Final newline + dedents.
        if !matches!(
            self.tokens.last().map(|t| &t.kind),
            Some(TokenKind::Newline) | None
        ) {
            let lo = self.here();
            self.push(TokenKind::Newline, lo);
        }
        while self.indents.len() > 1 {
            self.indents.pop();
            let lo = self.here();
            self.push(TokenKind::Dedent, lo);
        }
        let lo = self.here();
        self.push(TokenKind::Eof, lo);
        Ok(self.tokens)
    }

    fn handle_indentation(&mut self) -> Result<(), ParseError> {
        loop {
            let lo = self.here();
            let mut width = 0u32;
            while let Some(c) = self.peek() {
                match c {
                    ' ' => {
                        width += 1;
                        self.bump();
                    }
                    '\t' => {
                        width += 8 - (width % 8);
                        self.bump();
                    }
                    _ => break,
                }
            }
            match self.peek() {
                // Blank or comment-only line: swallow it entirely.
                Some('\n') => {
                    self.bump();
                    continue;
                }
                Some('#') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                    continue;
                }
                None => {
                    self.at_line_start = false;
                    return Ok(());
                }
                Some(_) => {
                    let current = *self.indents.last().expect("indent stack never empty");
                    if width > current {
                        self.indents.push(width);
                        self.push(TokenKind::Indent, lo);
                    } else if width < current {
                        while *self.indents.last().expect("indent stack never empty") > width {
                            self.indents.pop();
                            self.push(TokenKind::Dedent, lo);
                        }
                        if *self.indents.last().expect("indent stack never empty") != width {
                            return Err(self.err("inconsistent dedent", lo));
                        }
                    }
                    self.at_line_start = false;
                    return Ok(());
                }
            }
        }
    }

    fn lex_string(&mut self) -> Result<(), ParseError> {
        let lo = self.here();
        let quote = self.bump().expect("caller checked quote");
        // Triple-quoted?
        let triple = self.peek() == Some(quote) && self.peek2() == Some(quote);
        if triple {
            self.bump();
            self.bump();
        }
        let mut out = String::new();
        loop {
            let c = match self.peek() {
                Some(c) => c,
                None => return Err(self.err("unterminated string literal", lo)),
            };
            if triple {
                if c == quote && self.peek2() == Some(quote) && self.peek3() == Some(quote) {
                    self.bump();
                    self.bump();
                    self.bump();
                    break;
                }
            } else if c == quote {
                self.bump();
                break;
            } else if c == '\n' {
                return Err(self.err("newline in single-quoted string", lo));
            }
            if c == '\\' {
                self.bump();
                let esc = self
                    .bump()
                    .ok_or_else(|| self.err("unterminated escape", lo))?;
                match esc {
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    'r' => out.push('\r'),
                    '0' => out.push('\0'),
                    '\\' => out.push('\\'),
                    '\'' => out.push('\''),
                    '"' => out.push('"'),
                    '\n' => {}
                    other => {
                        // Unknown escapes are kept verbatim, like CPython.
                        out.push('\\');
                        out.push(other);
                    }
                }
            } else {
                out.push(c);
                self.bump();
            }
        }
        self.push(TokenKind::Str(out), lo);
        Ok(())
    }

    fn lex_number(&mut self) -> Result<(), ParseError> {
        let lo = self.here();
        let mut text = String::new();
        let mut is_float = false;
        // Hex literal.
        if self.peek() == Some('0') && matches!(self.peek2(), Some('x') | Some('X')) {
            self.bump();
            self.bump();
            let mut hex = String::new();
            while let Some(c) = self.peek() {
                if c.is_ascii_hexdigit() || c == '_' {
                    if c != '_' {
                        hex.push(c);
                    }
                    self.bump();
                } else {
                    break;
                }
            }
            let value = i64::from_str_radix(&hex, 16)
                .map_err(|e| self.err(format!("invalid hex literal: {e}"), lo))?;
            self.push(TokenKind::Int(value), lo);
            return Ok(());
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == '_' {
                if c != '_' {
                    text.push(c);
                }
                self.bump();
            } else if c == '.' && !is_float && self.peek2() != Some('.') {
                is_float = true;
                text.push('.');
                self.bump();
            } else if (c == 'e' || c == 'E')
                && self
                    .peek2()
                    .is_some_and(|n| n.is_ascii_digit() || n == '+' || n == '-')
            {
                is_float = true;
                text.push(c);
                self.bump();
                if matches!(self.peek(), Some('+') | Some('-')) {
                    text.push(self.bump().expect("sign present"));
                }
            } else {
                break;
            }
        }
        let kind = if is_float {
            let v: f64 = text
                .parse()
                .map_err(|e| self.err(format!("invalid float literal: {e}"), lo))?;
            TokenKind::Float(v)
        } else {
            let v: i64 = text
                .parse()
                .map_err(|e| self.err(format!("invalid integer literal: {e}"), lo))?;
            TokenKind::Int(v)
        };
        self.push(kind, lo);
        Ok(())
    }

    fn lex_ident(&mut self) {
        let lo = self.here();
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let kind = match Keyword::from_text(&text) {
            Some(kw) => TokenKind::Keyword(kw),
            None => TokenKind::Ident(text),
        };
        self.push(kind, lo);
    }

    fn lex_op(&mut self) -> Result<(), ParseError> {
        let lo = self.here();
        let c = self.bump().expect("caller checked non-empty");
        let two = |l: &Lexer<'_>| l.peek();
        let op = match c {
            '+' => {
                if two(self) == Some('=') {
                    self.bump();
                    Op::PlusAssign
                } else {
                    Op::Plus
                }
            }
            '-' => match two(self) {
                Some('=') => {
                    self.bump();
                    Op::MinusAssign
                }
                Some('>') => {
                    self.bump();
                    Op::Arrow
                }
                _ => Op::Minus,
            },
            '*' => match two(self) {
                Some('*') => {
                    self.bump();
                    Op::DoubleStar
                }
                Some('=') => {
                    self.bump();
                    Op::StarAssign
                }
                _ => Op::Star,
            },
            '/' => match two(self) {
                Some('/') => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        Op::DoubleSlashAssign
                    } else {
                        Op::DoubleSlash
                    }
                }
                Some('=') => {
                    self.bump();
                    Op::SlashAssign
                }
                _ => Op::Slash,
            },
            '%' => {
                if two(self) == Some('=') {
                    self.bump();
                    Op::PercentAssign
                } else {
                    Op::Percent
                }
            }
            '@' => Op::At,
            '&' => Op::Amp,
            '|' => Op::Pipe,
            '^' => Op::Caret,
            '~' => Op::Tilde,
            '<' => match two(self) {
                Some('=') => {
                    self.bump();
                    Op::Le
                }
                Some('<') => {
                    self.bump();
                    Op::Shl
                }
                _ => Op::Lt,
            },
            '>' => match two(self) {
                Some('=') => {
                    self.bump();
                    Op::Ge
                }
                Some('>') => {
                    self.bump();
                    Op::Shr
                }
                _ => Op::Gt,
            },
            '=' => {
                if two(self) == Some('=') {
                    self.bump();
                    Op::Eq
                } else {
                    Op::Assign
                }
            }
            '!' => {
                if two(self) == Some('=') {
                    self.bump();
                    Op::Ne
                } else {
                    return Err(self.err("unexpected character `!`", lo));
                }
            }
            '(' => {
                self.bracket_depth += 1;
                Op::LParen
            }
            ')' => {
                self.bracket_depth = self.bracket_depth.saturating_sub(1);
                Op::RParen
            }
            '[' => {
                self.bracket_depth += 1;
                Op::LBracket
            }
            ']' => {
                self.bracket_depth = self.bracket_depth.saturating_sub(1);
                Op::RBracket
            }
            '{' => {
                self.bracket_depth += 1;
                Op::LBrace
            }
            '}' => {
                self.bracket_depth = self.bracket_depth.saturating_sub(1);
                Op::RBrace
            }
            ',' => Op::Comma,
            ':' => Op::Colon,
            '.' => Op::Dot,
            ';' => Op::Semicolon,
            other => {
                return Err(self.err(format!("unexpected character `{other}`"), lo));
            }
        };
        self.push(TokenKind::Op(op), lo);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src, "t.py").unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_assignment() {
        let k = kinds("x = 1\n");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Op(Op::Assign),
                TokenKind::Int(1),
                TokenKind::Newline,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn indentation_produces_indent_dedent() {
        let k = kinds("if a:\n    b = 1\nc = 2\n");
        assert!(k.contains(&TokenKind::Indent));
        assert!(k.contains(&TokenKind::Dedent));
    }

    #[test]
    fn nested_blocks_emit_matching_dedents() {
        let k = kinds("if a:\n    if b:\n        c = 1\n");
        let indents = k.iter().filter(|t| **t == TokenKind::Indent).count();
        let dedents = k.iter().filter(|t| **t == TokenKind::Dedent).count();
        assert_eq!(indents, 2);
        assert_eq!(dedents, 2);
    }

    #[test]
    fn brackets_suppress_newlines() {
        let k = kinds("f(a,\n  b)\n");
        let newlines = k.iter().filter(|t| **t == TokenKind::Newline).count();
        assert_eq!(newlines, 1);
    }

    #[test]
    fn blank_and_comment_lines_are_skipped() {
        let k = kinds("a = 1\n\n# comment\n   # indented comment\nb = 2\n");
        assert!(!k.contains(&TokenKind::Indent));
        let newlines = k.iter().filter(|t| **t == TokenKind::Newline).count();
        assert_eq!(newlines, 2);
    }

    #[test]
    fn string_escapes_decode() {
        let k = kinds(r#"s = "a\nb\t\"q\"""#);
        assert!(k.contains(&TokenKind::Str("a\nb\t\"q\"".into())));
    }

    #[test]
    fn triple_quoted_string() {
        let k = kinds("s = \"\"\"line1\nline2\"\"\"\n");
        assert!(k.contains(&TokenKind::Str("line1\nline2".into())));
    }

    #[test]
    fn numbers_int_float_hex() {
        let k = kinds("a = 42\nb = 3.5\nc = 0xff\nd = 1e3\n");
        assert!(k.contains(&TokenKind::Int(42)));
        assert!(k.contains(&TokenKind::Float(3.5)));
        assert!(k.contains(&TokenKind::Int(255)));
        assert!(k.contains(&TokenKind::Float(1000.0)));
    }

    #[test]
    fn keywords_recognized() {
        let k = kinds("def f():\n    return None\n");
        assert!(k.contains(&TokenKind::Keyword(Keyword::Def)));
        assert!(k.contains(&TokenKind::Keyword(Keyword::Return)));
        assert!(k.contains(&TokenKind::Keyword(Keyword::None)));
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("s = \"abc\n", "t.py").is_err());
    }

    #[test]
    fn inconsistent_dedent_is_error() {
        assert!(lex("if a:\n        b = 1\n   c = 2\n", "t.py").is_err());
    }

    #[test]
    fn line_continuation_backslash() {
        let k = kinds("a = 1 + \\\n    2\n");
        let newlines = k.iter().filter(|t| **t == TokenKind::Newline).count();
        assert_eq!(newlines, 1);
        assert!(!k.contains(&TokenKind::Indent));
    }

    #[test]
    fn two_char_operators() {
        let k = kinds("a == b != c <= d >= e // f ** g\n");
        assert!(k.contains(&TokenKind::Op(Op::Eq)));
        assert!(k.contains(&TokenKind::Op(Op::Ne)));
        assert!(k.contains(&TokenKind::Op(Op::Le)));
        assert!(k.contains(&TokenKind::Op(Op::Ge)));
        assert!(k.contains(&TokenKind::Op(Op::DoubleSlash)));
        assert!(k.contains(&TokenKind::Op(Op::DoubleStar)));
    }
}
