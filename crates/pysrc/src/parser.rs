//! Recursive-descent parser for the mini-Python subset.

use crate::ast::*;
use crate::error::{ParseError, Span};
use crate::lexer::lex;
use crate::token::{Keyword, Op, Token, TokenKind};

/// Parses a source file into a [`Module`].
///
/// # Errors
///
/// Returns [`ParseError`] on any lexical or syntactic error.
///
/// # Example
///
/// ```
/// let m = pysrc::parse_module("def f(x):\n    return x + 1\n", "m.py").unwrap();
/// assert_eq!(m.body.len(), 1);
/// ```
pub fn parse_module(source: &str, file: &str) -> Result<Module, ParseError> {
    let tokens = lex(source, file)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        file: file.to_string(),
    };
    let body = parser.parse_block_until_eof()?;
    Ok(Module {
        name: file.to_string(),
        body,
    })
}

/// Parses a single expression (used by the DSL compiler for literal
/// pattern fragments).
///
/// # Errors
///
/// Returns [`ParseError`] if the input is not exactly one expression.
pub fn parse_expr(source: &str, file: &str) -> Result<Expr, ParseError> {
    let tokens = lex(source, file)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        file: file.to_string(),
    };
    let e = parser.expr()?;
    parser.eat_newlines();
    parser.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    file: String,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at_op(&self, op: Op) -> bool {
        matches!(self.peek(), TokenKind::Op(o) if *o == op)
    }

    fn at_kw(&self, kw: Keyword) -> bool {
        matches!(self.peek(), TokenKind::Keyword(k) if *k == kw)
    }

    fn eat_op(&mut self, op: Op) -> bool {
        if self.at_op(op) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.peek_span(), &self.file)
    }

    fn expect_op(&mut self, op: Op) -> Result<Span, ParseError> {
        if self.at_op(op) {
            Ok(self.bump().span)
        } else {
            Err(self.err(format!("expected `{op}`, found {}", self.peek())))
        }
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<Span, ParseError> {
        if self.at_kw(kw) {
            Ok(self.bump().span)
        } else {
            Err(self.err(format!("expected `{kw}`, found {}", self.peek())))
        }
    }

    fn expect_newline(&mut self) -> Result<(), ParseError> {
        // A semicolon also terminates a simple statement.
        if self.eat_op(Op::Semicolon) {
            let _ = matches!(self.peek(), TokenKind::Newline) && {
                self.bump();
                true
            };
            return Ok(());
        }
        match self.peek() {
            TokenKind::Newline => {
                self.bump();
                Ok(())
            }
            TokenKind::Eof | TokenKind::Dedent => Ok(()),
            other => Err(self.err(format!("expected end of statement, found {other}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.err(format!("expected end of input, found {}", self.peek())))
        }
    }

    fn eat_newlines(&mut self) {
        while matches!(self.peek(), TokenKind::Newline) {
            self.bump();
        }
    }

    fn parse_block_until_eof(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut body = Vec::new();
        self.eat_newlines();
        while !matches!(self.peek(), TokenKind::Eof) {
            body.push(self.statement()?);
            self.eat_newlines();
        }
        Ok(body)
    }

    /// Parses an indented suite after a `:`, or a simple statement on
    /// the same line (`if x: return`).
    fn suite(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_op(Op::Colon)?;
        if matches!(self.peek(), TokenKind::Newline) {
            self.bump();
            if !matches!(self.peek(), TokenKind::Indent) {
                return Err(self.err("expected an indented block"));
            }
            self.bump();
            let mut body = Vec::new();
            self.eat_newlines();
            while !matches!(self.peek(), TokenKind::Dedent | TokenKind::Eof) {
                body.push(self.statement()?);
                self.eat_newlines();
            }
            if matches!(self.peek(), TokenKind::Dedent) {
                self.bump();
            }
            Ok(body)
        } else {
            // Inline suite: one or more simple statements separated by `;`.
            let mut body = vec![self.simple_statement()?];
            while !matches!(self.peek(), TokenKind::Newline | TokenKind::Eof) {
                body.push(self.simple_statement()?);
            }
            if matches!(self.peek(), TokenKind::Newline) {
                self.bump();
            }
            Ok(body)
        }
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        match self.peek() {
            TokenKind::Keyword(Keyword::If) => self.if_stmt(),
            TokenKind::Keyword(Keyword::While) => self.while_stmt(),
            TokenKind::Keyword(Keyword::For) => self.for_stmt(),
            TokenKind::Keyword(Keyword::Def) => self.func_def(),
            TokenKind::Keyword(Keyword::Class) => self.class_def(),
            TokenKind::Keyword(Keyword::Try) => self.try_stmt(),
            TokenKind::Keyword(Keyword::With) => self.with_stmt(),
            _ => {
                let s = self.simple_statement()?;
                self.expect_newline()?;
                Ok(s)
            }
        }
    }

    fn simple_statement(&mut self) -> Result<Stmt, ParseError> {
        let lo = self.peek_span();
        let kind = match self.peek().clone() {
            TokenKind::Keyword(Keyword::Return) => {
                self.bump();
                if matches!(
                    self.peek(),
                    TokenKind::Newline | TokenKind::Eof | TokenKind::Op(Op::Semicolon)
                ) {
                    StmtKind::Return(None)
                } else {
                    StmtKind::Return(Some(self.expr_or_tuple()?))
                }
            }
            TokenKind::Keyword(Keyword::Pass) => {
                self.bump();
                StmtKind::Pass
            }
            TokenKind::Keyword(Keyword::Break) => {
                self.bump();
                StmtKind::Break
            }
            TokenKind::Keyword(Keyword::Continue) => {
                self.bump();
                StmtKind::Continue
            }
            TokenKind::Keyword(Keyword::Del) => {
                self.bump();
                let mut targets = vec![self.expr()?];
                while self.eat_op(Op::Comma) {
                    targets.push(self.expr()?);
                }
                StmtKind::Del(targets)
            }
            TokenKind::Keyword(Keyword::Assert) => {
                self.bump();
                let test = self.expr()?;
                let msg = if self.eat_op(Op::Comma) {
                    Some(self.expr()?)
                } else {
                    None
                };
                StmtKind::Assert { test, msg }
            }
            TokenKind::Keyword(Keyword::Global) => {
                self.bump();
                let mut names = vec![self.expect_ident()?];
                while self.eat_op(Op::Comma) {
                    names.push(self.expect_ident()?);
                }
                StmtKind::Global(names)
            }
            TokenKind::Keyword(Keyword::Raise) => {
                self.bump();
                if matches!(
                    self.peek(),
                    TokenKind::Newline | TokenKind::Eof | TokenKind::Op(Op::Semicolon)
                ) {
                    StmtKind::Raise {
                        exc: None,
                        cause: None,
                    }
                } else {
                    let exc = self.expr()?;
                    let cause = if self.eat_kw(Keyword::From) {
                        Some(self.expr()?)
                    } else {
                        None
                    };
                    StmtKind::Raise {
                        exc: Some(exc),
                        cause,
                    }
                }
            }
            TokenKind::Keyword(Keyword::Import) => {
                self.bump();
                let mut modules = vec![self.import_alias()?];
                while self.eat_op(Op::Comma) {
                    modules.push(self.import_alias()?);
                }
                StmtKind::Import(modules)
            }
            TokenKind::Keyword(Keyword::From) => {
                self.bump();
                let module = self.dotted_name()?;
                self.expect_kw(Keyword::Import)?;
                let mut names = vec![self.import_alias()?];
                while self.eat_op(Op::Comma) {
                    names.push(self.import_alias()?);
                }
                StmtKind::FromImport { module, names }
            }
            _ => {
                // Expression, assignment, or augmented assignment.
                let first = self.expr_or_tuple()?;
                if self.at_op(Op::Assign) {
                    let mut targets = vec![first];
                    let mut value = None;
                    while self.eat_op(Op::Assign) {
                        let next = self.expr_or_tuple()?;
                        if self.at_op(Op::Assign) {
                            targets.push(next);
                        } else {
                            value = Some(next);
                        }
                    }
                    StmtKind::Assign {
                        targets,
                        value: value.expect("loop exits only after seeing a value"),
                    }
                } else if let Some(op) = self.aug_assign_op() {
                    self.bump();
                    let value = self.expr_or_tuple()?;
                    StmtKind::AugAssign {
                        target: first,
                        op,
                        value,
                    }
                } else {
                    StmtKind::Expr(first)
                }
            }
        };
        let hi = self.tokens[self.pos.saturating_sub(1)].span;
        Ok(Stmt {
            id: NodeId::fresh(),
            span: lo.to(hi),
            kind,
        })
    }

    fn aug_assign_op(&self) -> Option<BinOp> {
        match self.peek() {
            TokenKind::Op(Op::PlusAssign) => Some(BinOp::Add),
            TokenKind::Op(Op::MinusAssign) => Some(BinOp::Sub),
            TokenKind::Op(Op::StarAssign) => Some(BinOp::Mul),
            TokenKind::Op(Op::SlashAssign) => Some(BinOp::Div),
            TokenKind::Op(Op::DoubleSlashAssign) => Some(BinOp::FloorDiv),
            TokenKind::Op(Op::PercentAssign) => Some(BinOp::Mod),
            _ => None,
        }
    }

    fn import_alias(&mut self) -> Result<ImportAlias, ParseError> {
        let name = self.dotted_name()?;
        let alias = if self.eat_kw(Keyword::As) {
            Some(self.expect_ident()?)
        } else {
            None
        };
        Ok(ImportAlias { name, alias })
    }

    fn dotted_name(&mut self) -> Result<String, ParseError> {
        let mut name = self.expect_ident()?;
        while self.at_op(Op::Dot) {
            self.bump();
            name.push('.');
            name.push_str(&self.expect_ident()?);
        }
        Ok(name)
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        let lo = self.expect_kw(Keyword::If)?;
        let mut branches = Vec::new();
        let test = self.expr()?;
        let body = self.suite()?;
        branches.push((test, body));
        let mut orelse = Vec::new();
        loop {
            self.eat_newlines();
            if self.at_kw(Keyword::Elif) {
                self.bump();
                let test = self.expr()?;
                let body = self.suite()?;
                branches.push((test, body));
            } else if self.at_kw(Keyword::Else) {
                self.bump();
                orelse = self.suite()?;
                break;
            } else {
                break;
            }
        }
        Ok(Stmt {
            id: NodeId::fresh(),
            span: lo,
            kind: StmtKind::If { branches, orelse },
        })
    }

    fn while_stmt(&mut self) -> Result<Stmt, ParseError> {
        let lo = self.expect_kw(Keyword::While)?;
        let test = self.expr()?;
        let body = self.suite()?;
        self.eat_newlines();
        let orelse = if self.eat_kw(Keyword::Else) {
            self.suite()?
        } else {
            Vec::new()
        };
        Ok(Stmt {
            id: NodeId::fresh(),
            span: lo,
            kind: StmtKind::While { test, body, orelse },
        })
    }

    fn for_stmt(&mut self) -> Result<Stmt, ParseError> {
        let lo = self.expect_kw(Keyword::For)?;
        let target = self.target_list()?;
        self.expect_kw(Keyword::In)?;
        let iter = self.expr_or_tuple()?;
        let body = self.suite()?;
        self.eat_newlines();
        let orelse = if self.eat_kw(Keyword::Else) {
            self.suite()?
        } else {
            Vec::new()
        };
        Ok(Stmt {
            id: NodeId::fresh(),
            span: lo,
            kind: StmtKind::For {
                target,
                iter,
                body,
                orelse,
            },
        })
    }

    /// `a` or `a, b` (loop targets); produces a tuple for multiple names.
    fn target_list(&mut self) -> Result<Expr, ParseError> {
        let lo = self.peek_span();
        let first = self.postfix_expr()?;
        if self.at_op(Op::Comma) {
            let mut items = vec![first];
            while self.eat_op(Op::Comma) {
                if self.at_kw(Keyword::In) {
                    break;
                }
                items.push(self.postfix_expr()?);
            }
            Ok(Expr {
                id: NodeId::fresh(),
                span: lo,
                kind: ExprKind::Tuple(items),
            })
        } else {
            Ok(first)
        }
    }

    fn func_def(&mut self) -> Result<Stmt, ParseError> {
        let lo = self.expect_kw(Keyword::Def)?;
        let name = self.expect_ident()?;
        self.expect_op(Op::LParen)?;
        let params = self.param_list()?;
        self.expect_op(Op::RParen)?;
        let body = self.suite()?;
        Ok(Stmt {
            id: NodeId::fresh(),
            span: lo,
            kind: StmtKind::FuncDef { name, params, body },
        })
    }

    fn param_list(&mut self) -> Result<Vec<Param>, ParseError> {
        let mut params = Vec::new();
        while !self.at_op(Op::RParen) {
            let kind = if self.eat_op(Op::DoubleStar) {
                ParamKind::DoubleStar
            } else if self.eat_op(Op::Star) {
                ParamKind::Star
            } else {
                ParamKind::Normal
            };
            let name = self.expect_ident()?;
            let default = if self.eat_op(Op::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            params.push(Param {
                name,
                default,
                kind,
            });
            if !self.eat_op(Op::Comma) {
                break;
            }
        }
        Ok(params)
    }

    fn class_def(&mut self) -> Result<Stmt, ParseError> {
        let lo = self.expect_kw(Keyword::Class)?;
        let name = self.expect_ident()?;
        let mut bases = Vec::new();
        if self.eat_op(Op::LParen) {
            while !self.at_op(Op::RParen) {
                bases.push(self.expr()?);
                if !self.eat_op(Op::Comma) {
                    break;
                }
            }
            self.expect_op(Op::RParen)?;
        }
        let body = self.suite()?;
        Ok(Stmt {
            id: NodeId::fresh(),
            span: lo,
            kind: StmtKind::ClassDef { name, bases, body },
        })
    }

    fn try_stmt(&mut self) -> Result<Stmt, ParseError> {
        let lo = self.expect_kw(Keyword::Try)?;
        let body = self.suite()?;
        let mut handlers = Vec::new();
        let mut orelse = Vec::new();
        let mut finalbody = Vec::new();
        loop {
            self.eat_newlines();
            if self.at_kw(Keyword::Except) {
                self.bump();
                let (exc_type, name) = if self.at_op(Op::Colon) {
                    (None, None)
                } else {
                    let e = self.expr()?;
                    let name = if self.eat_kw(Keyword::As) {
                        Some(self.expect_ident()?)
                    } else {
                        None
                    };
                    (Some(e), name)
                };
                let hbody = self.suite()?;
                handlers.push(ExceptHandler {
                    exc_type,
                    name,
                    body: hbody,
                });
            } else if self.at_kw(Keyword::Else) {
                self.bump();
                orelse = self.suite()?;
            } else if self.at_kw(Keyword::Finally) {
                self.bump();
                finalbody = self.suite()?;
                break;
            } else {
                break;
            }
        }
        if handlers.is_empty() && finalbody.is_empty() {
            return Err(self.err("`try` requires at least one `except` or `finally`"));
        }
        Ok(Stmt {
            id: NodeId::fresh(),
            span: lo,
            kind: StmtKind::Try {
                body,
                handlers,
                orelse,
                finalbody,
            },
        })
    }

    fn with_stmt(&mut self) -> Result<Stmt, ParseError> {
        let lo = self.expect_kw(Keyword::With)?;
        let mut items = Vec::new();
        loop {
            let ctx = self.expr()?;
            let target = if self.eat_kw(Keyword::As) {
                Some(self.postfix_expr()?)
            } else {
                None
            };
            items.push((ctx, target));
            if !self.eat_op(Op::Comma) {
                break;
            }
        }
        let body = self.suite()?;
        Ok(Stmt {
            id: NodeId::fresh(),
            span: lo,
            kind: StmtKind::With { items, body },
        })
    }

    // ----- expressions -----

    /// Expression possibly followed by `, expr ...` forming a tuple
    /// (used in statement contexts: RHS of assignments, `return`).
    fn expr_or_tuple(&mut self) -> Result<Expr, ParseError> {
        let lo = self.peek_span();
        let first = self.expr()?;
        if self.at_op(Op::Comma) {
            let mut items = vec![first];
            while self.eat_op(Op::Comma) {
                if matches!(
                    self.peek(),
                    TokenKind::Newline
                        | TokenKind::Eof
                        | TokenKind::Op(Op::Assign)
                        | TokenKind::Op(Op::RParen)
                        | TokenKind::Op(Op::Semicolon)
                ) {
                    break;
                }
                items.push(self.expr()?);
            }
            Ok(Expr {
                id: NodeId::fresh(),
                span: lo,
                kind: ExprKind::Tuple(items),
            })
        } else {
            Ok(first)
        }
    }

    /// Full expression (lambda / conditional level).
    pub(crate) fn expr(&mut self) -> Result<Expr, ParseError> {
        if self.at_kw(Keyword::Lambda) {
            let lo = self.bump().span;
            let mut params = Vec::new();
            if !self.at_op(Op::Colon) {
                loop {
                    let name = self.expect_ident()?;
                    let default = if self.eat_op(Op::Assign) {
                        Some(self.expr()?)
                    } else {
                        None
                    };
                    params.push(Param {
                        name,
                        default,
                        kind: ParamKind::Normal,
                    });
                    if !self.eat_op(Op::Comma) {
                        break;
                    }
                }
            }
            self.expect_op(Op::Colon)?;
            let body = Box::new(self.expr()?);
            return Ok(Expr {
                id: NodeId::fresh(),
                span: lo,
                kind: ExprKind::Lambda { params, body },
            });
        }
        let lo = self.peek_span();
        let body = self.or_expr()?;
        if self.at_kw(Keyword::If) {
            self.bump();
            let test = Box::new(self.or_expr()?);
            self.expect_kw(Keyword::Else)?;
            let orelse = Box::new(self.expr()?);
            Ok(Expr {
                id: NodeId::fresh(),
                span: lo,
                kind: ExprKind::IfExp {
                    test,
                    body: Box::new(body),
                    orelse,
                },
            })
        } else {
            Ok(body)
        }
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let lo = self.peek_span();
        let first = self.and_expr()?;
        if self.at_kw(Keyword::Or) {
            let mut values = vec![first];
            while self.eat_kw(Keyword::Or) {
                values.push(self.and_expr()?);
            }
            Ok(Expr {
                id: NodeId::fresh(),
                span: lo,
                kind: ExprKind::BoolOp {
                    op: BoolOpKind::Or,
                    values,
                },
            })
        } else {
            Ok(first)
        }
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let lo = self.peek_span();
        let first = self.not_expr()?;
        if self.at_kw(Keyword::And) {
            let mut values = vec![first];
            while self.eat_kw(Keyword::And) {
                values.push(self.not_expr()?);
            }
            Ok(Expr {
                id: NodeId::fresh(),
                span: lo,
                kind: ExprKind::BoolOp {
                    op: BoolOpKind::And,
                    values,
                },
            })
        } else {
            Ok(first)
        }
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.at_kw(Keyword::Not) {
            let lo = self.bump().span;
            let operand = Box::new(self.not_expr()?);
            Ok(Expr {
                id: NodeId::fresh(),
                span: lo,
                kind: ExprKind::Unary {
                    op: UnaryOp::Not,
                    operand,
                },
            })
        } else {
            self.comparison()
        }
    }

    fn cmp_op(&mut self) -> Option<CmpOp> {
        let op = match self.peek() {
            TokenKind::Op(Op::Eq) => CmpOp::Eq,
            TokenKind::Op(Op::Ne) => CmpOp::Ne,
            TokenKind::Op(Op::Lt) => CmpOp::Lt,
            TokenKind::Op(Op::Le) => CmpOp::Le,
            TokenKind::Op(Op::Gt) => CmpOp::Gt,
            TokenKind::Op(Op::Ge) => CmpOp::Ge,
            TokenKind::Keyword(Keyword::In) => CmpOp::In,
            TokenKind::Keyword(Keyword::Is) => {
                self.bump();
                if self.at_kw(Keyword::Not) {
                    self.bump();
                    return Some(CmpOp::IsNot);
                }
                return Some(CmpOp::Is);
            }
            TokenKind::Keyword(Keyword::Not) => {
                // `not in`
                if matches!(
                    self.tokens.get(self.pos + 1).map(|t| &t.kind),
                    Some(TokenKind::Keyword(Keyword::In))
                ) {
                    self.bump();
                    self.bump();
                    return Some(CmpOp::NotIn);
                }
                return None;
            }
            _ => return None,
        };
        self.bump();
        Some(op)
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        let lo = self.peek_span();
        let left = self.bitor()?;
        let mut ops = Vec::new();
        let mut comparators = Vec::new();
        while let Some(op) = self.cmp_op() {
            ops.push(op);
            comparators.push(self.bitor()?);
        }
        if ops.is_empty() {
            Ok(left)
        } else {
            Ok(Expr {
                id: NodeId::fresh(),
                span: lo,
                kind: ExprKind::Compare {
                    left: Box::new(left),
                    ops,
                    comparators,
                },
            })
        }
    }

    fn binary_level(
        &mut self,
        next: fn(&mut Parser) -> Result<Expr, ParseError>,
        table: &[(Op, BinOp)],
    ) -> Result<Expr, ParseError> {
        let lo = self.peek_span();
        let mut left = next(self)?;
        'outer: loop {
            for (tok, op) in table {
                if self.at_op(*tok) {
                    self.bump();
                    let right = next(self)?;
                    left = Expr {
                        id: NodeId::fresh(),
                        span: lo,
                        kind: ExprKind::Binary {
                            left: Box::new(left),
                            op: *op,
                            right: Box::new(right),
                        },
                    };
                    continue 'outer;
                }
            }
            break;
        }
        Ok(left)
    }

    fn bitor(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(Parser::bitxor, &[(Op::Pipe, BinOp::BitOr)])
    }

    fn bitxor(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(Parser::bitand, &[(Op::Caret, BinOp::BitXor)])
    }

    fn bitand(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(Parser::shift, &[(Op::Amp, BinOp::BitAnd)])
    }

    fn shift(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            Parser::arith,
            &[(Op::Shl, BinOp::Shl), (Op::Shr, BinOp::Shr)],
        )
    }

    fn arith(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            Parser::term,
            &[(Op::Plus, BinOp::Add), (Op::Minus, BinOp::Sub)],
        )
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            Parser::factor,
            &[
                (Op::Star, BinOp::Mul),
                (Op::Slash, BinOp::Div),
                (Op::DoubleSlash, BinOp::FloorDiv),
                (Op::Percent, BinOp::Mod),
            ],
        )
    }

    fn factor(&mut self) -> Result<Expr, ParseError> {
        let lo = self.peek_span();
        let op = match self.peek() {
            TokenKind::Op(Op::Minus) => Some(UnaryOp::Neg),
            TokenKind::Op(Op::Plus) => Some(UnaryOp::Pos),
            TokenKind::Op(Op::Tilde) => Some(UnaryOp::Invert),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = Box::new(self.factor()?);
            return Ok(Expr {
                id: NodeId::fresh(),
                span: lo,
                kind: ExprKind::Unary { op, operand },
            });
        }
        self.power()
    }

    fn power(&mut self) -> Result<Expr, ParseError> {
        let lo = self.peek_span();
        let base = self.postfix_expr()?;
        if self.eat_op(Op::DoubleStar) {
            // Right-associative.
            let exp = self.factor()?;
            Ok(Expr {
                id: NodeId::fresh(),
                span: lo,
                kind: ExprKind::Binary {
                    left: Box::new(base),
                    op: BinOp::Pow,
                    right: Box::new(exp),
                },
            })
        } else {
            Ok(base)
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let lo = self.peek_span();
        let mut e = self.atom()?;
        loop {
            if self.at_op(Op::Dot) {
                self.bump();
                let attr = self.expect_ident()?;
                e = Expr {
                    id: NodeId::fresh(),
                    span: lo,
                    kind: ExprKind::Attribute {
                        value: Box::new(e),
                        attr,
                    },
                };
            } else if self.at_op(Op::LParen) {
                self.bump();
                let args = self.call_args()?;
                self.expect_op(Op::RParen)?;
                e = Expr {
                    id: NodeId::fresh(),
                    span: lo,
                    kind: ExprKind::Call {
                        func: Box::new(e),
                        args,
                    },
                };
            } else if self.at_op(Op::LBracket) {
                self.bump();
                let index = self.subscript_index()?;
                self.expect_op(Op::RBracket)?;
                e = Expr {
                    id: NodeId::fresh(),
                    span: lo,
                    kind: ExprKind::Subscript {
                        value: Box::new(e),
                        index: Box::new(index),
                    },
                };
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn call_args(&mut self) -> Result<Vec<Arg>, ParseError> {
        let mut args = Vec::new();
        while !self.at_op(Op::RParen) {
            if self.eat_op(Op::DoubleStar) {
                args.push(Arg::DoubleStar(self.expr()?));
            } else if self.eat_op(Op::Star) {
                args.push(Arg::Star(self.expr()?));
            } else if matches!(self.peek(), TokenKind::Ident(_))
                && matches!(
                    self.tokens.get(self.pos + 1).map(|t| &t.kind),
                    Some(TokenKind::Op(Op::Assign))
                )
            {
                let name = self.expect_ident()?;
                self.bump(); // `=`
                args.push(Arg::Kw(name, self.expr()?));
            } else {
                args.push(Arg::Pos(self.expr()?));
            }
            if !self.eat_op(Op::Comma) {
                break;
            }
        }
        Ok(args)
    }

    fn subscript_index(&mut self) -> Result<Expr, ParseError> {
        let lo = self.peek_span();
        // Slice forms: [:], [a:], [:b], [a:b], [a:b:c]
        let lower = if self.at_op(Op::Colon) {
            None
        } else {
            Some(Box::new(self.expr()?))
        };
        if self.eat_op(Op::Colon) {
            let upper = if self.at_op(Op::RBracket) || self.at_op(Op::Colon) {
                None
            } else {
                Some(Box::new(self.expr()?))
            };
            let step = if self.eat_op(Op::Colon) {
                if self.at_op(Op::RBracket) {
                    None
                } else {
                    Some(Box::new(self.expr()?))
                }
            } else {
                None
            };
            Ok(Expr {
                id: NodeId::fresh(),
                span: lo,
                kind: ExprKind::Slice { lower, upper, step },
            })
        } else {
            let e = *lower.expect("non-slice subscript must have an index expression");
            // Tuple index `d[a, b]`.
            if self.at_op(Op::Comma) {
                let mut items = vec![e];
                while self.eat_op(Op::Comma) {
                    if self.at_op(Op::RBracket) {
                        break;
                    }
                    items.push(self.expr()?);
                }
                Ok(Expr {
                    id: NodeId::fresh(),
                    span: lo,
                    kind: ExprKind::Tuple(items),
                })
            } else {
                Ok(e)
            }
        }
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        let lo = self.peek_span();
        let kind = match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                ExprKind::Num(Number::Int(v))
            }
            TokenKind::Float(v) => {
                self.bump();
                ExprKind::Num(Number::Float(v))
            }
            TokenKind::Str(s) => {
                self.bump();
                // Adjacent string literal concatenation.
                let mut out = s;
                while let TokenKind::Str(next) = self.peek().clone() {
                    out.push_str(&next);
                    self.bump();
                }
                ExprKind::Str(out)
            }
            TokenKind::Keyword(Keyword::True) => {
                self.bump();
                ExprKind::Bool(true)
            }
            TokenKind::Keyword(Keyword::False) => {
                self.bump();
                ExprKind::Bool(false)
            }
            TokenKind::Keyword(Keyword::None) => {
                self.bump();
                ExprKind::NoneLit
            }
            TokenKind::Ident(name) => {
                self.bump();
                ExprKind::Name(name)
            }
            TokenKind::Op(Op::Star) => {
                self.bump();
                let inner = self.postfix_expr()?;
                ExprKind::Starred(Box::new(inner))
            }
            TokenKind::Op(Op::LParen) => {
                self.bump();
                if self.eat_op(Op::RParen) {
                    ExprKind::Tuple(Vec::new())
                } else {
                    let first = self.expr()?;
                    if self.at_op(Op::Comma) {
                        let mut items = vec![first];
                        while self.eat_op(Op::Comma) {
                            if self.at_op(Op::RParen) {
                                break;
                            }
                            items.push(self.expr()?);
                        }
                        self.expect_op(Op::RParen)?;
                        ExprKind::Tuple(items)
                    } else {
                        self.expect_op(Op::RParen)?;
                        // Parenthesized expression: transparent.
                        return Ok(first);
                    }
                }
            }
            TokenKind::Op(Op::LBracket) => {
                self.bump();
                if self.eat_op(Op::RBracket) {
                    ExprKind::List(Vec::new())
                } else {
                    let first = self.expr()?;
                    if self.at_kw(Keyword::For) {
                        self.bump();
                        let target = Box::new(self.target_list()?);
                        self.expect_kw(Keyword::In)?;
                        // CPython parses the iterable and filters of a
                        // comprehension at `or_test` level so a trailing
                        // `if` starts a filter, not a conditional expr.
                        let iter = Box::new(self.or_expr()?);
                        let mut ifs = Vec::new();
                        while self.eat_kw(Keyword::If) {
                            ifs.push(self.or_expr()?);
                        }
                        self.expect_op(Op::RBracket)?;
                        ExprKind::ListComp {
                            elt: Box::new(first),
                            target,
                            iter,
                            ifs,
                        }
                    } else {
                        let mut items = vec![first];
                        while self.eat_op(Op::Comma) {
                            if self.at_op(Op::RBracket) {
                                break;
                            }
                            items.push(self.expr()?);
                        }
                        self.expect_op(Op::RBracket)?;
                        ExprKind::List(items)
                    }
                }
            }
            TokenKind::Op(Op::LBrace) => {
                self.bump();
                if self.eat_op(Op::RBrace) {
                    ExprKind::Dict(Vec::new())
                } else {
                    let first_key = self.expr()?;
                    if self.eat_op(Op::Colon) {
                        let first_val = self.expr()?;
                        let mut pairs = vec![(first_key, first_val)];
                        while self.eat_op(Op::Comma) {
                            if self.at_op(Op::RBrace) {
                                break;
                            }
                            let k = self.expr()?;
                            self.expect_op(Op::Colon)?;
                            let v = self.expr()?;
                            pairs.push((k, v));
                        }
                        self.expect_op(Op::RBrace)?;
                        ExprKind::Dict(pairs)
                    } else {
                        let mut items = vec![first_key];
                        while self.eat_op(Op::Comma) {
                            if self.at_op(Op::RBrace) {
                                break;
                            }
                            items.push(self.expr()?);
                        }
                        self.expect_op(Op::RBrace)?;
                        ExprKind::Set(items)
                    }
                }
            }
            other => return Err(self.err(format!("expected expression, found {other}"))),
        };
        Ok(Expr {
            id: NodeId::fresh(),
            span: lo,
            kind,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Module {
        parse_module(src, "t.py").unwrap()
    }

    #[test]
    fn parses_assignment_and_expression() {
        let m = parse("x = 1 + 2 * 3\nf(x)\n");
        assert_eq!(m.body.len(), 2);
        assert!(matches!(m.body[0].kind, StmtKind::Assign { .. }));
        assert!(matches!(m.body[1].kind, StmtKind::Expr(_)));
    }

    #[test]
    fn precedence_mul_over_add() {
        let m = parse("x = 1 + 2 * 3\n");
        let StmtKind::Assign { value, .. } = &m.body[0].kind else {
            panic!("expected assign")
        };
        let ExprKind::Binary { op, right, .. } = &value.kind else {
            panic!("expected binary")
        };
        assert_eq!(*op, BinOp::Add);
        assert!(matches!(
            right.kind,
            ExprKind::Binary {
                op: BinOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn parses_function_with_defaults_and_star_args() {
        let m = parse("def f(a, b=2, *args, **kwargs):\n    return a\n");
        let StmtKind::FuncDef { params, .. } = &m.body[0].kind else {
            panic!("expected funcdef")
        };
        assert_eq!(params.len(), 4);
        assert!(params[1].default.is_some());
        assert_eq!(params[2].kind, ParamKind::Star);
        assert_eq!(params[3].kind, ParamKind::DoubleStar);
    }

    #[test]
    fn parses_class_with_methods() {
        let m = parse("class C(Base):\n    def m(self):\n        pass\n");
        let StmtKind::ClassDef { name, bases, body } = &m.body[0].kind else {
            panic!("expected classdef")
        };
        assert_eq!(name, "C");
        assert_eq!(bases.len(), 1);
        assert_eq!(body.len(), 1);
    }

    #[test]
    fn parses_try_except_else_finally() {
        let m = parse(
            "try:\n    f()\nexcept ValueError as e:\n    g(e)\nexcept:\n    pass\nelse:\n    h()\nfinally:\n    k()\n",
        );
        let StmtKind::Try {
            handlers,
            orelse,
            finalbody,
            ..
        } = &m.body[0].kind
        else {
            panic!("expected try")
        };
        assert_eq!(handlers.len(), 2);
        assert_eq!(handlers[0].name.as_deref(), Some("e"));
        assert!(handlers[1].exc_type.is_none());
        assert_eq!(orelse.len(), 1);
        assert_eq!(finalbody.len(), 1);
    }

    #[test]
    fn parses_if_elif_else() {
        let m = parse("if a:\n    x = 1\nelif b:\n    x = 2\nelse:\n    x = 3\n");
        let StmtKind::If { branches, orelse } = &m.body[0].kind else {
            panic!("expected if")
        };
        assert_eq!(branches.len(), 2);
        assert_eq!(orelse.len(), 1);
    }

    #[test]
    fn parses_chained_comparison() {
        let m = parse("r = 0 <= x < 10\n");
        let StmtKind::Assign { value, .. } = &m.body[0].kind else {
            panic!()
        };
        let ExprKind::Compare {
            ops, comparators, ..
        } = &value.kind
        else {
            panic!("expected comparison")
        };
        assert_eq!(ops, &[CmpOp::Le, CmpOp::Lt]);
        assert_eq!(comparators.len(), 2);
    }

    #[test]
    fn parses_call_with_keyword_and_star_args() {
        let m = parse("f(1, key=2, *rest, **kw)\n");
        let StmtKind::Expr(e) = &m.body[0].kind else {
            panic!()
        };
        let ExprKind::Call { args, .. } = &e.kind else {
            panic!("expected call")
        };
        assert!(matches!(args[0], Arg::Pos(_)));
        assert!(matches!(args[1], Arg::Kw(ref n, _) if n == "key"));
        assert!(matches!(args[2], Arg::Star(_)));
        assert!(matches!(args[3], Arg::DoubleStar(_)));
    }

    #[test]
    fn parses_for_with_tuple_target() {
        let m = parse("for k, v in d.items():\n    print(k)\n");
        let StmtKind::For { target, .. } = &m.body[0].kind else {
            panic!()
        };
        assert!(matches!(target.kind, ExprKind::Tuple(ref t) if t.len() == 2));
    }

    #[test]
    fn parses_imports() {
        let m = parse("import os\nimport urllib.request as req\nfrom etcd import Client\n");
        assert!(matches!(m.body[0].kind, StmtKind::Import(_)));
        let StmtKind::Import(aliases) = &m.body[1].kind else {
            panic!()
        };
        assert_eq!(aliases[0].name, "urllib.request");
        assert_eq!(aliases[0].alias.as_deref(), Some("req"));
        assert!(matches!(m.body[2].kind, StmtKind::FromImport { .. }));
    }

    #[test]
    fn parses_slices() {
        let m = parse("a = s[1:2]\nb = s[:3]\nc = s[::2]\nd = s[i]\n");
        assert_eq!(m.body.len(), 4);
    }

    #[test]
    fn parses_dict_set_list_tuple() {
        let m = parse("d = {'a': 1, 'b': 2}\ns = {1, 2}\nl = [1, 2]\nt = (1, 2)\ne = ()\n");
        assert_eq!(m.body.len(), 5);
    }

    #[test]
    fn parses_list_comprehension() {
        let m = parse("xs = [x * 2 for x in range(10) if x > 1]\n");
        let StmtKind::Assign { value, .. } = &m.body[0].kind else {
            panic!()
        };
        assert!(matches!(value.kind, ExprKind::ListComp { .. }));
    }

    #[test]
    fn parses_lambda_and_ifexp() {
        let m = parse("f = lambda x, y=1: x + y\nv = a if c else b\n");
        assert_eq!(m.body.len(), 2);
    }

    #[test]
    fn parses_with_statement() {
        let m = parse("with open('f') as fh:\n    fh.read()\n");
        assert!(matches!(m.body[0].kind, StmtKind::With { .. }));
    }

    #[test]
    fn parses_inline_suite() {
        let m = parse("if x: return 1\n");
        let StmtKind::If { branches, .. } = &m.body[0].kind else {
            panic!()
        };
        assert_eq!(branches[0].1.len(), 1);
    }

    #[test]
    fn parses_aug_assign() {
        let m = parse("x += 1\ny //= 2\n");
        assert!(
            matches!(m.body[0].kind, StmtKind::AugAssign { op: BinOp::Add, .. })
        );
        assert!(matches!(
            m.body[1].kind,
            StmtKind::AugAssign {
                op: BinOp::FloorDiv,
                ..
            }
        ));
    }

    #[test]
    fn parses_multi_target_assignment() {
        let m = parse("a = b = 3\n");
        let StmtKind::Assign { targets, .. } = &m.body[0].kind else {
            panic!()
        };
        assert_eq!(targets.len(), 2);
    }

    #[test]
    fn parses_raise_from() {
        let m = parse("raise ValueError('x') from err\nraise\n");
        assert!(matches!(
            m.body[0].kind,
            StmtKind::Raise {
                exc: Some(_),
                cause: Some(_)
            }
        ));
        assert!(matches!(
            m.body[1].kind,
            StmtKind::Raise {
                exc: None,
                cause: None
            }
        ));
    }

    #[test]
    fn parses_not_in_and_is_not() {
        let m = parse("a = x not in y\nb = x is not None\n");
        for (i, expected) in [(0usize, CmpOp::NotIn), (1, CmpOp::IsNot)] {
            let StmtKind::Assign { value, .. } = &m.body[i].kind else {
                panic!()
            };
            let ExprKind::Compare { ops, .. } = &value.kind else {
                panic!("expected compare")
            };
            assert_eq!(ops[0], expected);
        }
    }

    #[test]
    fn node_ids_are_unique() {
        let m = parse("x = 1\ny = 2\n");
        assert_ne!(m.body[0].id, m.body[1].id);
    }

    #[test]
    fn error_on_bad_syntax() {
        assert!(parse_module("def f(:\n    pass\n", "t.py").is_err());
        assert!(parse_module("x = = 1\n", "t.py").is_err());
        assert!(parse_module("try:\n    pass\n", "t.py").is_err());
    }

    #[test]
    fn parse_single_expr() {
        let e = super::parse_expr("a.b(1, x=2)", "t.py").unwrap();
        assert!(matches!(e.kind, ExprKind::Call { .. }));
        assert!(super::parse_expr("a b", "t.py").is_err());
    }
}
