//! AST traversal utilities used by the scanner, mutator, and coverage
//! instrumentation.
//!
//! Two flavors:
//!
//! * [`walk_blocks`] / [`walk_blocks_mut`] — visit every *statement
//!   block* (a `Vec<Stmt>`) in a module, which is the unit the matcher
//!   operates on (patterns match consecutive statements within one
//!   block).
//! * [`walk_exprs`] / [`walk_exprs_mut`] — visit every expression in a
//!   statement tree (used for expression-level injection points).

use crate::ast::*;

/// Identifies where a block sits, for reporting (function/class path).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct BlockContext {
    /// Enclosing `def`/`class` names, outermost first.
    pub scope: Vec<String>,
}

impl BlockContext {
    /// Dotted rendering (`Class.method`), or `"<module>"` at top level.
    pub fn dotted(&self) -> String {
        if self.scope.is_empty() {
            "<module>".to_string()
        } else {
            self.scope.join(".")
        }
    }
}

/// Calls `f` on every statement block in the module body (including the
/// body itself), passing the enclosing scope path.
pub fn walk_blocks<'a>(module: &'a Module, f: &mut dyn FnMut(&'a [Stmt], &BlockContext)) {
    let mut ctx = BlockContext::default();
    f(&module.body, &ctx);
    for s in &module.body {
        walk_stmt_blocks(s, &mut ctx, f);
    }
}

fn walk_stmt_blocks<'a>(
    stmt: &'a Stmt,
    ctx: &mut BlockContext,
    f: &mut dyn FnMut(&'a [Stmt], &BlockContext),
) {
    let mut visit_block = |body: &'a [Stmt], ctx: &mut BlockContext| {
        f(body, ctx);
        for s in body {
            walk_stmt_blocks(s, ctx, f);
        }
    };
    match &stmt.kind {
        StmtKind::If { branches, orelse } => {
            for (_, body) in branches {
                visit_block(body, ctx);
            }
            visit_block(orelse, ctx);
        }
        StmtKind::While { body, orelse, .. } | StmtKind::For { body, orelse, .. } => {
            visit_block(body, ctx);
            visit_block(orelse, ctx);
        }
        StmtKind::FuncDef { name, body, .. } | StmtKind::ClassDef { name, body, .. } => {
            ctx.scope.push(name.clone());
            visit_block(body, ctx);
            ctx.scope.pop();
        }
        StmtKind::Try {
            body,
            handlers,
            orelse,
            finalbody,
        } => {
            visit_block(body, ctx);
            for h in handlers {
                visit_block(&h.body, ctx);
            }
            visit_block(orelse, ctx);
            visit_block(finalbody, ctx);
        }
        StmtKind::With { body, .. } => visit_block(body, ctx),
        _ => {}
    }
}

/// Calls `f` on every mutable statement block in the module. `f` may
/// splice statements in and out; children of the (possibly modified)
/// block are visited afterwards.
pub fn walk_blocks_mut(module: &mut Module, f: &mut dyn FnMut(&mut Vec<Stmt>)) {
    f(&mut module.body);
    for s in &mut module.body {
        walk_stmt_blocks_mut(s, f);
    }
}

fn walk_stmt_blocks_mut(stmt: &mut Stmt, f: &mut dyn FnMut(&mut Vec<Stmt>)) {
    let mut visit = |body: &mut Vec<Stmt>| {
        f(body);
        for s in body {
            walk_stmt_blocks_mut(s, f);
        }
    };
    match &mut stmt.kind {
        StmtKind::If { branches, orelse } => {
            for (_, body) in branches {
                visit(body);
            }
            visit(orelse);
        }
        StmtKind::While { body, orelse, .. } | StmtKind::For { body, orelse, .. } => {
            visit(body);
            visit(orelse);
        }
        StmtKind::FuncDef { body, .. } | StmtKind::ClassDef { body, .. } => visit(body),
        StmtKind::Try {
            body,
            handlers,
            orelse,
            finalbody,
        } => {
            visit(body);
            for h in handlers {
                visit(&mut h.body);
            }
            visit(orelse);
            visit(finalbody);
        }
        StmtKind::With { body, .. } => visit(body),
        _ => {}
    }
}

/// Calls `f` on every expression reachable from `stmt` (pre-order).
pub fn walk_exprs<'a>(stmt: &'a Stmt, f: &mut dyn FnMut(&'a Expr)) {
    match &stmt.kind {
        StmtKind::Expr(e) => walk_expr(e, f),
        StmtKind::Assign { targets, value } => {
            for t in targets {
                walk_expr(t, f);
            }
            walk_expr(value, f);
        }
        StmtKind::AugAssign { target, value, .. } => {
            walk_expr(target, f);
            walk_expr(value, f);
        }
        StmtKind::Return(Some(e)) => walk_expr(e, f),
        StmtKind::Return(None)
        | StmtKind::Pass
        | StmtKind::Break
        | StmtKind::Continue
        | StmtKind::Global(_)
        | StmtKind::Import(_)
        | StmtKind::FromImport { .. } => {}
        StmtKind::Del(targets) => {
            for t in targets {
                walk_expr(t, f);
            }
        }
        StmtKind::Assert { test, msg } => {
            walk_expr(test, f);
            if let Some(m) = msg {
                walk_expr(m, f);
            }
        }
        StmtKind::If { branches, orelse } => {
            for (test, body) in branches {
                walk_expr(test, f);
                for s in body {
                    walk_exprs(s, f);
                }
            }
            for s in orelse {
                walk_exprs(s, f);
            }
        }
        StmtKind::While { test, body, orelse } => {
            walk_expr(test, f);
            for s in body.iter().chain(orelse) {
                walk_exprs(s, f);
            }
        }
        StmtKind::For {
            target,
            iter,
            body,
            orelse,
        } => {
            walk_expr(target, f);
            walk_expr(iter, f);
            for s in body.iter().chain(orelse) {
                walk_exprs(s, f);
            }
        }
        StmtKind::FuncDef { params, body, .. } => {
            for p in params {
                if let Some(d) = &p.default {
                    walk_expr(d, f);
                }
            }
            for s in body {
                walk_exprs(s, f);
            }
        }
        StmtKind::ClassDef { bases, body, .. } => {
            for b in bases {
                walk_expr(b, f);
            }
            for s in body {
                walk_exprs(s, f);
            }
        }
        StmtKind::Try {
            body,
            handlers,
            orelse,
            finalbody,
        } => {
            for s in body {
                walk_exprs(s, f);
            }
            for h in handlers {
                if let Some(t) = &h.exc_type {
                    walk_expr(t, f);
                }
                for s in &h.body {
                    walk_exprs(s, f);
                }
            }
            for s in orelse.iter().chain(finalbody) {
                walk_exprs(s, f);
            }
        }
        StmtKind::Raise { exc, cause } => {
            if let Some(e) = exc {
                walk_expr(e, f);
            }
            if let Some(c) = cause {
                walk_expr(c, f);
            }
        }
        StmtKind::With { items, body } => {
            for (ctx, target) in items {
                walk_expr(ctx, f);
                if let Some(t) = target {
                    walk_expr(t, f);
                }
            }
            for s in body {
                walk_exprs(s, f);
            }
        }
    }
}

/// Pre-order walk over an expression tree.
pub fn walk_expr<'a>(expr: &'a Expr, f: &mut dyn FnMut(&'a Expr)) {
    f(expr);
    match &expr.kind {
        ExprKind::Attribute { value, .. } => walk_expr(value, f),
        ExprKind::Subscript { value, index } => {
            walk_expr(value, f);
            walk_expr(index, f);
        }
        ExprKind::Slice { lower, upper, step } => {
            for e in [lower, upper, step].into_iter().flatten() {
                walk_expr(e, f);
            }
        }
        ExprKind::Call { func, args } => {
            walk_expr(func, f);
            for a in args {
                walk_expr(a.value(), f);
            }
        }
        ExprKind::Unary { operand, .. } => walk_expr(operand, f),
        ExprKind::Binary { left, right, .. } => {
            walk_expr(left, f);
            walk_expr(right, f);
        }
        ExprKind::BoolOp { values, .. } => {
            for v in values {
                walk_expr(v, f);
            }
        }
        ExprKind::Compare {
            left, comparators, ..
        } => {
            walk_expr(left, f);
            for c in comparators {
                walk_expr(c, f);
            }
        }
        ExprKind::Lambda { params, body } => {
            for p in params {
                if let Some(d) = &p.default {
                    walk_expr(d, f);
                }
            }
            walk_expr(body, f);
        }
        ExprKind::IfExp { test, body, orelse } => {
            walk_expr(test, f);
            walk_expr(body, f);
            walk_expr(orelse, f);
        }
        ExprKind::Tuple(items) | ExprKind::List(items) | ExprKind::Set(items) => {
            for i in items {
                walk_expr(i, f);
            }
        }
        ExprKind::Dict(pairs) => {
            for (k, v) in pairs {
                walk_expr(k, f);
                walk_expr(v, f);
            }
        }
        ExprKind::ListComp {
            elt,
            target,
            iter,
            ifs,
        } => {
            walk_expr(elt, f);
            walk_expr(target, f);
            walk_expr(iter, f);
            for c in ifs {
                walk_expr(c, f);
            }
        }
        ExprKind::Starred(inner) => walk_expr(inner, f),
        ExprKind::Num(_)
        | ExprKind::Str(_)
        | ExprKind::Bool(_)
        | ExprKind::NoneLit
        | ExprKind::Name(_) => {}
    }
}

/// Post-order mutable walk over every expression in a statement,
/// including nested statements. `f` may rewrite the expression in place.
pub fn walk_exprs_mut(stmt: &mut Stmt, f: &mut dyn FnMut(&mut Expr)) {
    match &mut stmt.kind {
        StmtKind::Expr(e) => walk_expr_mut(e, f),
        StmtKind::Assign { targets, value } => {
            for t in targets {
                walk_expr_mut(t, f);
            }
            walk_expr_mut(value, f);
        }
        StmtKind::AugAssign { target, value, .. } => {
            walk_expr_mut(target, f);
            walk_expr_mut(value, f);
        }
        StmtKind::Return(Some(e)) => walk_expr_mut(e, f),
        StmtKind::Return(None)
        | StmtKind::Pass
        | StmtKind::Break
        | StmtKind::Continue
        | StmtKind::Global(_)
        | StmtKind::Import(_)
        | StmtKind::FromImport { .. } => {}
        StmtKind::Del(targets) => {
            for t in targets {
                walk_expr_mut(t, f);
            }
        }
        StmtKind::Assert { test, msg } => {
            walk_expr_mut(test, f);
            if let Some(m) = msg {
                walk_expr_mut(m, f);
            }
        }
        StmtKind::If { branches, orelse } => {
            for (test, body) in branches {
                walk_expr_mut(test, f);
                for s in body {
                    walk_exprs_mut(s, f);
                }
            }
            for s in orelse {
                walk_exprs_mut(s, f);
            }
        }
        StmtKind::While { test, body, orelse } => {
            walk_expr_mut(test, f);
            for s in body.iter_mut().chain(orelse) {
                walk_exprs_mut(s, f);
            }
        }
        StmtKind::For {
            target,
            iter,
            body,
            orelse,
        } => {
            walk_expr_mut(target, f);
            walk_expr_mut(iter, f);
            for s in body.iter_mut().chain(orelse) {
                walk_exprs_mut(s, f);
            }
        }
        StmtKind::FuncDef { params, body, .. } => {
            for p in params {
                if let Some(d) = &mut p.default {
                    walk_expr_mut(d, f);
                }
            }
            for s in body {
                walk_exprs_mut(s, f);
            }
        }
        StmtKind::ClassDef { bases, body, .. } => {
            for b in bases {
                walk_expr_mut(b, f);
            }
            for s in body {
                walk_exprs_mut(s, f);
            }
        }
        StmtKind::Try {
            body,
            handlers,
            orelse,
            finalbody,
        } => {
            for s in body {
                walk_exprs_mut(s, f);
            }
            for h in handlers {
                if let Some(t) = &mut h.exc_type {
                    walk_expr_mut(t, f);
                }
                for s in &mut h.body {
                    walk_exprs_mut(s, f);
                }
            }
            for s in orelse.iter_mut().chain(finalbody) {
                walk_exprs_mut(s, f);
            }
        }
        StmtKind::Raise { exc, cause } => {
            if let Some(e) = exc {
                walk_expr_mut(e, f);
            }
            if let Some(c) = cause {
                walk_expr_mut(c, f);
            }
        }
        StmtKind::With { items, body } => {
            for (ctx, target) in items {
                walk_expr_mut(ctx, f);
                if let Some(t) = target {
                    walk_expr_mut(t, f);
                }
            }
            for s in body {
                walk_exprs_mut(s, f);
            }
        }
    }
}

/// Post-order mutable walk over one expression tree.
pub fn walk_expr_mut(expr: &mut Expr, f: &mut dyn FnMut(&mut Expr)) {
    match &mut expr.kind {
        ExprKind::Attribute { value, .. } => walk_expr_mut(value, f),
        ExprKind::Subscript { value, index } => {
            walk_expr_mut(value, f);
            walk_expr_mut(index, f);
        }
        ExprKind::Slice { lower, upper, step } => {
            for e in [lower, upper, step].into_iter().flatten() {
                walk_expr_mut(e, f);
            }
        }
        ExprKind::Call { func, args } => {
            walk_expr_mut(func, f);
            for a in args {
                walk_expr_mut(a.value_mut(), f);
            }
        }
        ExprKind::Unary { operand, .. } => walk_expr_mut(operand, f),
        ExprKind::Binary { left, right, .. } => {
            walk_expr_mut(left, f);
            walk_expr_mut(right, f);
        }
        ExprKind::BoolOp { values, .. } => {
            for v in values {
                walk_expr_mut(v, f);
            }
        }
        ExprKind::Compare {
            left, comparators, ..
        } => {
            walk_expr_mut(left, f);
            for c in comparators {
                walk_expr_mut(c, f);
            }
        }
        ExprKind::Lambda { params, body } => {
            for p in params {
                if let Some(d) = &mut p.default {
                    walk_expr_mut(d, f);
                }
            }
            walk_expr_mut(body, f);
        }
        ExprKind::IfExp { test, body, orelse } => {
            walk_expr_mut(test, f);
            walk_expr_mut(body, f);
            walk_expr_mut(orelse, f);
        }
        ExprKind::Tuple(items) | ExprKind::List(items) | ExprKind::Set(items) => {
            for i in items {
                walk_expr_mut(i, f);
            }
        }
        ExprKind::Dict(pairs) => {
            for (k, v) in pairs {
                walk_expr_mut(k, f);
                walk_expr_mut(v, f);
            }
        }
        ExprKind::ListComp {
            elt,
            target,
            iter,
            ifs,
        } => {
            walk_expr_mut(elt, f);
            walk_expr_mut(target, f);
            walk_expr_mut(iter, f);
            for c in ifs {
                walk_expr_mut(c, f);
            }
        }
        ExprKind::Starred(inner) => walk_expr_mut(inner, f),
        ExprKind::Num(_)
        | ExprKind::Str(_)
        | ExprKind::Bool(_)
        | ExprKind::NoneLit
        | ExprKind::Name(_) => {}
    }
    f(expr);
}

/// Calls `f` on every identifier a name resolver will touch: `Name`
/// references, `Attribute` names, binding names (`def`/`class`,
/// parameters, import aliases, `except .. as`), and `global`
/// declarations — across all nesting levels.
///
/// This is the resolver's pre-pass hook: `pyrt`'s prepare pass feeds
/// the collected identifiers through its bulk interner in one shot
/// (one lock acquisition per module instead of one per identifier).
pub fn walk_identifiers<'a>(body: &'a [Stmt], f: &mut dyn FnMut(&'a str)) {
    // Statement-level binding names at any nesting depth (expressions
    // are handled by one walk_exprs pass per top-level statement, which
    // already descends into every nested block).
    fn binding_names<'a>(stmt: &'a Stmt, f: &mut dyn FnMut(&'a str)) {
        match &stmt.kind {
            StmtKind::FuncDef { name, params, body } => {
                f(name);
                for p in params {
                    f(&p.name);
                }
                for s in body {
                    binding_names(s, f);
                }
            }
            StmtKind::ClassDef { name, body, .. } => {
                f(name);
                for s in body {
                    binding_names(s, f);
                }
            }
            StmtKind::Global(names) => {
                for n in names {
                    f(n);
                }
            }
            StmtKind::Import(aliases) | StmtKind::FromImport { names: aliases, .. } => {
                for a in aliases {
                    f(&a.name);
                    if let Some(alias) = &a.alias {
                        f(alias);
                    }
                }
            }
            StmtKind::If { branches, orelse } => {
                for (_, b) in branches {
                    for s in b {
                        binding_names(s, f);
                    }
                }
                for s in orelse {
                    binding_names(s, f);
                }
            }
            StmtKind::While { body, orelse, .. } | StmtKind::For { body, orelse, .. } => {
                for s in body.iter().chain(orelse) {
                    binding_names(s, f);
                }
            }
            StmtKind::Try {
                body,
                handlers,
                orelse,
                finalbody,
            } => {
                for s in body.iter().chain(orelse).chain(finalbody) {
                    binding_names(s, f);
                }
                for h in handlers {
                    if let Some(n) = &h.name {
                        f(n);
                    }
                    for s in &h.body {
                        binding_names(s, f);
                    }
                }
            }
            StmtKind::With { body, .. } => {
                for s in body {
                    binding_names(s, f);
                }
            }
            _ => {}
        }
    }
    for stmt in body {
        walk_exprs(stmt, &mut |e| match &e.kind {
            ExprKind::Name(n) => f(n),
            ExprKind::Attribute { attr, .. } => f(attr),
            ExprKind::Lambda { params, .. } => {
                for p in params {
                    f(&p.name);
                }
            }
            _ => {}
        });
        binding_names(stmt, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    #[test]
    fn walk_blocks_visits_nested_scopes() {
        let m = parse_module(
            "class C:\n    def m(self):\n        if x:\n            pass\n",
            "t.py",
        )
        .unwrap();
        let mut scopes = Vec::new();
        walk_blocks(&m, &mut |_, ctx| scopes.push(ctx.dotted()));
        assert!(scopes.contains(&"<module>".to_string()));
        assert!(scopes.contains(&"C".to_string()));
        assert!(scopes.contains(&"C.m".to_string()));
    }

    #[test]
    fn walk_exprs_finds_all_calls() {
        let m = parse_module("x = f(g(1), h(2))\n", "t.py").unwrap();
        let mut calls = 0;
        walk_exprs(&m.body[0], &mut |e| {
            if matches!(e.kind, crate::ast::ExprKind::Call { .. }) {
                calls += 1;
            }
        });
        assert_eq!(calls, 3);
    }

    #[test]
    fn walk_identifiers_covers_all_scopes() {
        let m = parse_module(
            concat!(
                "import os as system\n",
                "GLOBAL = 1\n",
                "def outer(par):\n",
                "    global GLOBAL\n",
                "    try:\n",
                "        obj.attr = par\n",
                "    except ValueError as err:\n",
                "        pass\n",
                "    def inner():\n",
                "        return lambda lam_par: lam_par\n",
                "class C:\n",
                "    field = 2\n",
            ),
            "t.py",
        )
        .unwrap();
        let mut seen = std::collections::HashSet::new();
        walk_identifiers(&m.body, &mut |n| {
            seen.insert(n.to_string());
        });
        for expected in [
            "os", "system", "GLOBAL", "outer", "par", "obj", "attr", "ValueError", "err",
            "inner", "lam_par", "C", "field",
        ] {
            assert!(seen.contains(expected), "missing identifier {expected}");
        }
    }

    #[test]
    fn walk_exprs_mut_rewrites() {
        let mut m = parse_module("x = 1 + 2\n", "t.py").unwrap();
        walk_exprs_mut(&mut m.body[0], &mut |e| {
            if let crate::ast::ExprKind::Num(crate::ast::Number::Int(v)) = &mut e.kind {
                *v *= 10;
            }
        });
        let s = crate::unparse::unparse_module(&m);
        assert_eq!(s, "x = 10 + 20\n");
    }

    #[test]
    fn walk_blocks_mut_can_splice() {
        let mut m = parse_module("def f():\n    a()\n    b()\n", "t.py").unwrap();
        walk_blocks_mut(&mut m, &mut |block| {
            if block.len() == 2 {
                block.remove(0);
            }
        });
        let s = crate::unparse::unparse_module(&m);
        assert_eq!(s, "def f():\n    b()\n");
    }
}
