//! Abstract syntax tree for the mini-Python subset.
//!
//! Every statement and expression carries a unique [`NodeId`] (used by the
//! injector to address fault-injection points) and a [`Span`] for
//! diagnostics and reports.

use crate::error::Span;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};

/// Unique identity of an AST node within a process.
///
/// Ids are allocated from a process-global counter so nodes created
/// during mutation never collide with parsed nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

static NEXT_NODE_ID: AtomicU32 = AtomicU32::new(1);

impl NodeId {
    /// Placeholder id for synthesized nodes that never need identity.
    pub const DUMMY: NodeId = NodeId(0);

    /// Allocates a fresh, process-unique id.
    pub fn fresh() -> NodeId {
        NodeId(NEXT_NODE_ID.fetch_add(1, Ordering::Relaxed))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A parsed source file.
#[derive(Clone, Debug, PartialEq)]
pub struct Module {
    /// Logical name (usually the file path).
    pub name: String,
    /// Top-level statements.
    pub body: Vec<Stmt>,
}

/// A statement with identity and span.
#[derive(Clone, Debug, PartialEq)]
pub struct Stmt {
    /// Unique node id.
    pub id: NodeId,
    /// Source span.
    pub span: Span,
    /// The statement payload.
    pub kind: StmtKind,
}

impl Stmt {
    /// Creates a statement with a fresh id and dummy span (for synthesized
    /// code produced by the mutator).
    pub fn synth(kind: StmtKind) -> Stmt {
        Stmt {
            id: NodeId::fresh(),
            span: Span::default(),
            kind,
        }
    }
}

/// One `except` clause of a `try` statement.
#[derive(Clone, Debug, PartialEq)]
pub struct ExceptHandler {
    /// Exception type expression (`None` = bare `except:`).
    pub exc_type: Option<Expr>,
    /// Binding name (`except E as name`).
    pub name: Option<String>,
    /// Handler body.
    pub body: Vec<Stmt>,
}

/// A function parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Default value, if any.
    pub default: Option<Expr>,
    /// Parameter kind (positional, `*args`, `**kwargs`).
    pub kind: ParamKind,
}

impl Param {
    /// A plain positional parameter without a default.
    pub fn plain(name: impl Into<String>) -> Param {
        Param {
            name: name.into(),
            default: None,
            kind: ParamKind::Normal,
        }
    }
}

/// Kind of a function parameter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParamKind {
    /// Ordinary positional/keyword parameter.
    Normal,
    /// `*args` rest parameter.
    Star,
    /// `**kwargs` rest parameter.
    DoubleStar,
}

/// Statement kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum StmtKind {
    /// An expression evaluated for its side effects.
    Expr(Expr),
    /// `a = b = value` (one or more targets).
    Assign {
        /// Assignment targets, outermost first.
        targets: Vec<Expr>,
        /// Assigned value.
        value: Expr,
    },
    /// `target op= value`.
    AugAssign {
        /// Assignment target.
        target: Expr,
        /// The arithmetic operator.
        op: BinOp,
        /// Right-hand side.
        value: Expr,
    },
    /// `return [value]`.
    Return(Option<Expr>),
    /// `pass`.
    Pass,
    /// `break`.
    Break,
    /// `continue`.
    Continue,
    /// `del target, ...`.
    Del(Vec<Expr>),
    /// `assert test[, msg]`.
    Assert {
        /// The asserted condition.
        test: Expr,
        /// Optional failure message.
        msg: Option<Expr>,
    },
    /// `global name, ...`.
    Global(Vec<String>),
    /// `import module [as alias], ...`.
    Import(Vec<ImportAlias>),
    /// `from module import name [as alias], ...`.
    FromImport {
        /// Source module.
        module: String,
        /// Imported names.
        names: Vec<ImportAlias>,
    },
    /// `if`/`elif` chain with optional `else`.
    If {
        /// `(condition, body)` per `if`/`elif` branch, in order.
        branches: Vec<(Expr, Vec<Stmt>)>,
        /// `else` body (possibly empty).
        orelse: Vec<Stmt>,
    },
    /// `while test: body [else: orelse]`.
    While {
        /// Loop condition.
        test: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// `else` body (possibly empty).
        orelse: Vec<Stmt>,
    },
    /// `for target in iter: body [else: orelse]`.
    For {
        /// Loop variable(s).
        target: Expr,
        /// Iterated expression.
        iter: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// `else` body (possibly empty).
        orelse: Vec<Stmt>,
    },
    /// `def name(params): body`.
    FuncDef {
        /// Function name.
        name: String,
        /// Parameter list.
        params: Vec<Param>,
        /// Function body.
        body: Vec<Stmt>,
    },
    /// `class name(bases): body`.
    ClassDef {
        /// Class name.
        name: String,
        /// Base class expressions.
        bases: Vec<Expr>,
        /// Class body.
        body: Vec<Stmt>,
    },
    /// `try/except/else/finally`.
    Try {
        /// `try` body.
        body: Vec<Stmt>,
        /// `except` clauses.
        handlers: Vec<ExceptHandler>,
        /// `else` body (possibly empty).
        orelse: Vec<Stmt>,
        /// `finally` body (possibly empty).
        finalbody: Vec<Stmt>,
    },
    /// `raise [exc [from cause]]`.
    Raise {
        /// Raised exception (None = re-raise).
        exc: Option<Expr>,
        /// `from` cause.
        cause: Option<Expr>,
    },
    /// `with item [as name], ...: body`.
    With {
        /// `(context expression, optional target)` pairs.
        items: Vec<(Expr, Option<Expr>)>,
        /// Body.
        body: Vec<Stmt>,
    },
}

/// `module [as alias]` or `name [as alias]` in imports.
#[derive(Clone, Debug, PartialEq)]
pub struct ImportAlias {
    /// Dotted module or plain name.
    pub name: String,
    /// Optional `as` alias.
    pub alias: Option<String>,
}

/// An expression with identity and span.
#[derive(Clone, Debug, PartialEq)]
pub struct Expr {
    /// Unique node id.
    pub id: NodeId,
    /// Source span.
    pub span: Span,
    /// The expression payload.
    pub kind: ExprKind,
}

impl Expr {
    /// Creates an expression with a fresh id and dummy span (for
    /// synthesized code produced by the mutator).
    pub fn synth(kind: ExprKind) -> Expr {
        Expr {
            id: NodeId::fresh(),
            span: Span::default(),
            kind,
        }
    }

    /// Convenience constructor for a synthesized name expression.
    pub fn name(name: impl Into<String>) -> Expr {
        Expr::synth(ExprKind::Name(name.into()))
    }

    /// Convenience constructor for a synthesized string literal.
    pub fn str(value: impl Into<String>) -> Expr {
        Expr::synth(ExprKind::Str(value.into()))
    }

    /// Convenience constructor for a synthesized integer literal.
    pub fn int(value: i64) -> Expr {
        Expr::synth(ExprKind::Num(Number::Int(value)))
    }

    /// Renders the dotted path of a name/attribute chain
    /// (`utils.execute` → `Some("utils.execute")`), or `None` if the
    /// expression is not a pure dotted path.
    pub fn dotted_path(&self) -> Option<String> {
        match &self.kind {
            ExprKind::Name(n) => Some(n.clone()),
            ExprKind::Attribute { value, attr } => {
                Some(format!("{}.{}", value.dotted_path()?, attr))
            }
            _ => None,
        }
    }
}

/// Numeric literal payload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
}

/// Expression kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum ExprKind {
    /// Numeric literal.
    Num(Number),
    /// String literal.
    Str(String),
    /// `True` / `False`.
    Bool(bool),
    /// `None`.
    NoneLit,
    /// Identifier reference.
    Name(String),
    /// `value.attr`.
    Attribute {
        /// Object expression.
        value: Box<Expr>,
        /// Attribute name.
        attr: String,
    },
    /// `value[index]`.
    Subscript {
        /// Subscripted expression.
        value: Box<Expr>,
        /// Index expression (may be a [`ExprKind::Slice`]).
        index: Box<Expr>,
    },
    /// `lower:upper:step` inside a subscript.
    Slice {
        /// Lower bound.
        lower: Option<Box<Expr>>,
        /// Upper bound.
        upper: Option<Box<Expr>>,
        /// Step.
        step: Option<Box<Expr>>,
    },
    /// `func(args...)`.
    Call {
        /// Callee expression.
        func: Box<Expr>,
        /// Arguments in source order.
        args: Vec<Arg>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Binary arithmetic/bitwise operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `and`/`or` chains (two or more operands).
    BoolOp {
        /// `and` or `or`.
        op: BoolOpKind,
        /// Operands in source order.
        values: Vec<Expr>,
    },
    /// Chained comparison `a < b <= c`.
    Compare {
        /// Leftmost operand.
        left: Box<Expr>,
        /// Comparison operators, one per comparator.
        ops: Vec<CmpOp>,
        /// Right-hand operands.
        comparators: Vec<Expr>,
    },
    /// `lambda params: body`.
    Lambda {
        /// Parameters.
        params: Vec<Param>,
        /// Body expression.
        body: Box<Expr>,
    },
    /// `body if test else orelse`.
    IfExp {
        /// Condition.
        test: Box<Expr>,
        /// Value when true.
        body: Box<Expr>,
        /// Value when false.
        orelse: Box<Expr>,
    },
    /// Tuple display.
    Tuple(Vec<Expr>),
    /// List display.
    List(Vec<Expr>),
    /// Dict display.
    Dict(Vec<(Expr, Expr)>),
    /// Set display.
    Set(Vec<Expr>),
    /// `[elt for target in iter if cond...]`.
    ListComp {
        /// Element expression.
        elt: Box<Expr>,
        /// Loop target.
        target: Box<Expr>,
        /// Iterated expression.
        iter: Box<Expr>,
        /// Filter conditions.
        ifs: Vec<Expr>,
    },
    /// `*expr` in calls or assignments.
    Starred(Box<Expr>),
}

/// A call argument.
#[derive(Clone, Debug, PartialEq)]
pub enum Arg {
    /// Positional argument.
    Pos(Expr),
    /// Keyword argument `name=value`.
    Kw(String, Expr),
    /// `*expr` argument.
    Star(Expr),
    /// `**expr` argument.
    DoubleStar(Expr),
}

impl Arg {
    /// The argument's value expression.
    pub fn value(&self) -> &Expr {
        match self {
            Arg::Pos(e) | Arg::Kw(_, e) | Arg::Star(e) | Arg::DoubleStar(e) => e,
        }
    }

    /// Mutable access to the argument's value expression.
    pub fn value_mut(&mut self) -> &mut Expr {
        match self {
            Arg::Pos(e) | Arg::Kw(_, e) | Arg::Star(e) | Arg::DoubleStar(e) => e,
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `-x`
    Neg,
    /// `+x`
    Pos,
    /// `not x`
    Not,
    /// `~x`
    Invert,
}

/// Binary arithmetic and bitwise operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `//`
    FloorDiv,
    /// `%`
    Mod,
    /// `**`
    Pow,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}

impl BinOp {
    /// Source spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::FloorDiv => "//",
            BinOp::Mod => "%",
            BinOp::Pow => "**",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
        }
    }
}

/// `and` / `or`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BoolOpKind {
    /// `and`
    And,
    /// `or`
    Or,
}

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `in`
    In,
    /// `not in`
    NotIn,
    /// `is`
    Is,
    /// `is not`
    IsNot,
}

impl CmpOp {
    /// Source spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::In => "in",
            CmpOp::NotIn => "not in",
            CmpOp::Is => "is",
            CmpOp::IsNot => "is not",
        }
    }
}

/// Structural equality that ignores [`NodeId`]s and [`Span`]s.
///
/// Used by round-trip tests and by the matcher when comparing literal
/// pattern fragments against program fragments.
pub fn stmt_eq(a: &Stmt, b: &Stmt) -> bool {
    stmts_eq(std::slice::from_ref(a), std::slice::from_ref(b))
}

/// Structural equality over statement sequences (ignores ids/spans).
pub fn stmts_eq(a: &[Stmt], b: &[Stmt]) -> bool {
    use crate::unparse;
    if a.len() != b.len() {
        return false;
    }
    // Unparse-based comparison: simple and guaranteed to normalize ids
    // and spans away. The unparser is deterministic.
    a.iter()
        .zip(b.iter())
        .all(|(x, y)| unparse::unparse_stmt(x) == unparse::unparse_stmt(y))
}

/// Structural equality over expressions (ignores ids/spans).
pub fn expr_eq(a: &Expr, b: &Expr) -> bool {
    crate::unparse::unparse_expr(a) == crate::unparse::unparse_expr(b)
}
