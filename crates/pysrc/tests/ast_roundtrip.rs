//! Property-based round-trip testing with *structured AST generators*:
//! build random ASTs directly (not via source text), unparse them, and
//! require parse(unparse(ast)) to be structurally identical.
//!
//! This catches precedence/parenthesization bugs the string-based
//! corpus tests cannot reach (e.g. nested unary minus under `**`).

use proptest::prelude::*;
use pysrc::ast::*;
use pysrc::error::Span;

fn e(kind: ExprKind) -> Expr {
    Expr {
        id: NodeId::fresh(),
        span: Span::default(),
        kind,
    }
}

fn s(kind: StmtKind) -> Stmt {
    Stmt {
        id: NodeId::fresh(),
        span: Span::default(),
        kind,
    }
}

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("not a keyword", |n| {
        !matches!(
            n.as_str(),
            "if" | "else" | "elif" | "for" | "while" | "def" | "class" | "try" | "not"
                | "and" | "or" | "in" | "is" | "del" | "pass" | "break" | "continue"
                | "return" | "raise" | "import" | "from" | "as" | "global" | "assert"
                | "lambda" | "with" | "except" | "finally"
        )
    })
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-1000i64..1000).prop_map(|v| e(ExprKind::Num(Number::Int(v.abs())))),
        "[a-zA-Z0-9 _.:/-]{0,10}".prop_map(|v| e(ExprKind::Str(v))),
        any::<bool>().prop_map(|b| e(ExprKind::Bool(b))),
        Just(e(ExprKind::NoneLit)),
        arb_name().prop_map(|n| e(ExprKind::Name(n))),
    ];
    leaf.prop_recursive(5, 64, 4, |inner| {
        let binop = prop_oneof![
            Just(BinOp::Add),
            Just(BinOp::Sub),
            Just(BinOp::Mul),
            Just(BinOp::Div),
            Just(BinOp::FloorDiv),
            Just(BinOp::Mod),
            Just(BinOp::Pow),
            Just(BinOp::BitAnd),
            Just(BinOp::BitOr),
            Just(BinOp::BitXor),
            Just(BinOp::Shl),
            Just(BinOp::Shr),
        ];
        let cmpop = prop_oneof![
            Just(CmpOp::Eq),
            Just(CmpOp::Ne),
            Just(CmpOp::Lt),
            Just(CmpOp::Le),
            Just(CmpOp::Gt),
            Just(CmpOp::Ge),
            Just(CmpOp::In),
            Just(CmpOp::NotIn),
            Just(CmpOp::Is),
            Just(CmpOp::IsNot),
        ];
        let unaryop = prop_oneof![
            Just(UnaryOp::Neg),
            Just(UnaryOp::Pos),
            Just(UnaryOp::Not),
            Just(UnaryOp::Invert),
        ];
        prop_oneof![
            // binary
            (inner.clone(), binop, inner.clone()).prop_map(|(l, op, r)| e(ExprKind::Binary {
                left: Box::new(l),
                op,
                right: Box::new(r),
            })),
            // unary
            (unaryop, inner.clone()).prop_map(|(op, v)| e(ExprKind::Unary {
                op,
                operand: Box::new(v),
            })),
            // comparison (single op — chained comparisons re-associate)
            (inner.clone(), cmpop, inner.clone()).prop_map(|(l, op, r)| e(ExprKind::Compare {
                left: Box::new(l),
                ops: vec![op],
                comparators: vec![r],
            })),
            // boolean chain
            (
                prop_oneof![Just(BoolOpKind::And), Just(BoolOpKind::Or)],
                proptest::collection::vec(inner.clone(), 2..4)
            )
                .prop_map(|(op, values)| e(ExprKind::BoolOp { op, values })),
            // attribute
            (inner.clone(), arb_name()).prop_map(|(v, attr)| e(ExprKind::Attribute {
                value: Box::new(v),
                attr,
            })),
            // subscript
            (inner.clone(), inner.clone()).prop_map(|(v, i)| e(ExprKind::Subscript {
                value: Box::new(v),
                index: Box::new(i),
            })),
            // call with positional + keyword args
            (
                arb_name(),
                proptest::collection::vec(inner.clone(), 0..3),
                proptest::collection::vec((arb_name(), inner.clone()), 0..2)
            )
                .prop_map(|(f, pos, kw)| {
                    let mut args: Vec<Arg> = pos.into_iter().map(Arg::Pos).collect();
                    args.extend(kw.into_iter().map(|(n, v)| Arg::Kw(n, v)));
                    e(ExprKind::Call {
                        func: Box::new(e(ExprKind::Name(f))),
                        args,
                    })
                }),
            // conditional expression
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(t, b, o)| {
                e(ExprKind::IfExp {
                    test: Box::new(t),
                    body: Box::new(b),
                    orelse: Box::new(o),
                })
            }),
            // displays
            proptest::collection::vec(inner.clone(), 0..4)
                .prop_map(|items| e(ExprKind::List(items))),
            proptest::collection::vec(inner.clone(), 0..3)
                .prop_map(|items| e(ExprKind::Tuple(items))),
            proptest::collection::vec((inner.clone(), inner.clone()), 0..3)
                .prop_map(|pairs| e(ExprKind::Dict(pairs))),
        ]
    })
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let simple = prop_oneof![
        arb_expr().prop_map(|x| s(StmtKind::Expr(x))),
        (arb_name(), arb_expr()).prop_map(|(n, v)| s(StmtKind::Assign {
            targets: vec![e(ExprKind::Name(n))],
            value: v,
        })),
        (arb_name(), arb_expr()).prop_map(|(n, v)| s(StmtKind::AugAssign {
            target: e(ExprKind::Name(n)),
            op: BinOp::Add,
            value: v,
        })),
        proptest::option::of(arb_expr()).prop_map(|v| s(StmtKind::Return(v))),
        Just(s(StmtKind::Pass)),
        arb_expr().prop_map(|x| s(StmtKind::Raise {
            exc: Some(x),
            cause: None,
        })),
    ];
    simple.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (arb_expr(), proptest::collection::vec(inner.clone(), 1..3))
                .prop_map(|(test, body)| s(StmtKind::If {
                    branches: vec![(test, body)],
                    orelse: vec![],
                })),
            (
                arb_expr(),
                proptest::collection::vec(inner.clone(), 1..3),
                proptest::collection::vec(inner.clone(), 1..2)
            )
                .prop_map(|(test, body, orelse)| s(StmtKind::If {
                    branches: vec![(test, body)],
                    orelse,
                })),
            (arb_expr(), proptest::collection::vec(inner.clone(), 1..3)).prop_map(
                |(test, body)| s(StmtKind::While {
                    test,
                    body,
                    orelse: vec![],
                })
            ),
            (
                arb_name(),
                arb_expr(),
                proptest::collection::vec(inner.clone(), 1..3)
            )
                .prop_map(|(target, iter, body)| s(StmtKind::For {
                    target: e(ExprKind::Name(target)),
                    iter,
                    body,
                    orelse: vec![],
                })),
            (
                arb_name(),
                proptest::collection::vec(arb_name(), 0..3),
                proptest::collection::vec(inner, 1..3)
            )
                .prop_map(|(name, params, body)| s(StmtKind::FuncDef {
                    name,
                    params: params.into_iter().map(Param::plain).collect(),
                    body,
                })),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]
    #[test]
    fn generated_ast_roundtrips(stmts in proptest::collection::vec(arb_stmt(), 1..5)) {
        let module = Module { name: "gen.py".into(), body: stmts };
        let printed = pysrc::unparse::unparse_module(&module);
        let reparsed = pysrc::parse_module(&printed, "gen.py")
            .map_err(|err| TestCaseError::fail(format!("reparse failed: {err}\n---\n{printed}")))?;
        let printed2 = pysrc::unparse::unparse_module(&reparsed);
        prop_assert_eq!(&printed, &printed2, "unparse not a fixpoint:\n{}", printed);
        prop_assert!(
            pysrc::ast::stmts_eq(&module.body, &reparsed.body),
            "structural mismatch:\n{}",
            printed
        );
    }
}
