//! Acceptance tests for the orchestration engine:
//!
//! * a killed-and-resumed campaign produces the identical set of
//!   `ExperimentResult`s as an uninterrupted run with the same seed;
//! * a second campaign on an unchanged target performs **zero**
//!   re-scans (cache hit), including across engine restarts;
//! * multiple queued campaigns run interleaved through one engine and
//!   all complete;
//! * the service façade delivers completed reports into per-user
//!   sessions.

use campaign::{
    CampaignEngine, CampaignService, CampaignSpec, EngineConfig, HostRegistry, JobState,
};
use profipy::case_study::etcd_host_factory;
use std::path::PathBuf;

fn etcd_registry() -> HostRegistry {
    HostRegistry::with_noop().with("etcd", etcd_host_factory())
}

/// A small-but-real campaign over the python-etcd case study target
/// (sampled down so the suite stays fast).
fn etcd_spec(user: &str, name: &str, sample: usize) -> CampaignSpec {
    let mut spec = CampaignSpec::new(
        user,
        name,
        "etcd",
        vec![
            ("etcd".into(), targets::CLIENT_SOURCE.into()),
            ("workload".into(), targets::WORKLOAD_BASIC.into()),
        ],
        targets::WORKLOAD_BASIC.into(),
        faultdsl::campaign_a_model(),
    );
    spec.setup = vec![vec!["etcd-start".into()]];
    spec.seed = 7;
    spec.filter.modules.push("etcd".into());
    spec.filter.sample = sample;
    spec
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "campaign-orch-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn killed_and_resumed_campaign_matches_uninterrupted_run() {
    // Reference: one uninterrupted run (in-memory engine).
    let mut reference = CampaignEngine::new(EngineConfig::default(), etcd_registry()).unwrap();
    let ref_id = reference.submit(etcd_spec("alice", "ref", 6)).unwrap();
    reference.drive(None).unwrap();
    let expected = reference.results(&ref_id);
    assert!(
        expected.len() >= 4,
        "reference campaign too small to be interesting: {}",
        expected.len()
    );

    // Interrupted: drive 2 experiments at a time, dropping the engine
    // (= killing the process) between drives.
    let dir = temp_dir("resume");
    let id = {
        let mut engine = CampaignEngine::open(&dir, etcd_registry()).unwrap();
        let id = engine.submit(etcd_spec("alice", "ref", 6)).unwrap();
        let summary = engine.drive(Some(2)).unwrap();
        assert_eq!(summary.experiments, 2);
        assert_eq!(summary.completed, 0, "budget must interrupt the campaign");
        id
        // Engine dropped here: the "crash".
    };
    let mut resumed_total = 2;
    loop {
        let mut engine = CampaignEngine::open(&dir, etcd_registry()).unwrap();
        assert_eq!(
            engine.poll(&id).unwrap().completed_experiments,
            resumed_total.min(expected.len()),
            "checkpoint carries completed experiments across restarts"
        );
        let summary = engine.drive(Some(2)).unwrap();
        resumed_total += summary.experiments;
        if summary.completed > 0 {
            break;
        }
        assert!(resumed_total <= expected.len() + 2, "resume failed to converge");
    }

    // The resumed campaign must have executed each experiment exactly
    // once overall and match the reference bit-for-bit.
    let engine = CampaignEngine::open(&dir, etcd_registry()).unwrap();
    let actual = engine.results(&id);
    assert_eq!(
        actual.iter().map(|r| r.point_id).collect::<Vec<_>>(),
        expected.iter().map(|r| r.point_id).collect::<Vec<_>>(),
        "same experiments, same plan order"
    );
    for (a, b) in actual.iter().zip(&expected) {
        assert!(
            campaign::results_equivalent(a, b),
            "point {} diverged between resumed and uninterrupted runs",
            a.point_id
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unchanged_target_performs_zero_rescans() {
    let mut engine = CampaignEngine::new(EngineConfig::default(), etcd_registry()).unwrap();
    let first = engine.submit(etcd_spec("alice", "first", 4)).unwrap();
    engine.drive(None).unwrap();
    let after_first = engine.cache_stats();
    assert_eq!(after_first.scan_misses, 1, "first campaign scans once");
    assert_eq!(
        after_first.prepare_misses, 1,
        "first campaign prepares the interpreter program once"
    );

    // Second campaign, same target + model, different plan knobs.
    let mut second_spec = etcd_spec("alice", "second", 3);
    second_spec.seed = 99;
    let second = engine.submit(second_spec).unwrap();
    engine.drive(None).unwrap();
    let after_second = engine.cache_stats();
    assert_eq!(
        after_second.scan_misses, 1,
        "second campaign on unchanged target must not re-scan"
    );
    assert!(after_second.scan_hits >= 1, "cache hit expected");
    assert!(
        after_second.parse_hits >= 1,
        "parsed modules reused as well"
    );
    assert_eq!(
        after_second.prepare_misses, 1,
        "second campaign must not re-resolve the unchanged program"
    );
    assert!(
        after_second.prepare_hits >= 1,
        "prepared interpreter program reused across campaigns"
    );
    assert_eq!(engine.poll(&first).unwrap().state, JobState::Completed);
    assert_eq!(engine.poll(&second).unwrap().state, JobState::Completed);

    // A *changed* target must scan again — the cache key is content-based.
    let mut changed = etcd_spec("alice", "changed", 2);
    changed.sources[0].1.push_str("\ndef extra():\n    pass\n");
    engine.submit(changed).unwrap();
    engine.drive(None).unwrap();
    assert_eq!(engine.cache_stats().scan_misses, 2);
}

#[test]
fn scan_cache_survives_engine_restart_on_disk() {
    let dir = temp_dir("diskcache");
    {
        let mut engine = CampaignEngine::open(&dir, etcd_registry()).unwrap();
        engine.submit(etcd_spec("alice", "warm", 3)).unwrap();
        engine.drive(None).unwrap();
        assert_eq!(engine.cache_stats().scan_misses, 1);
    }
    {
        // Fresh process: the scan comes back from the disk tier.
        let mut engine = CampaignEngine::open(&dir, etcd_registry()).unwrap();
        engine.submit(etcd_spec("bob", "reuse", 3)).unwrap();
        engine.drive(None).unwrap();
        let stats = engine.cache_stats();
        assert_eq!(stats.scan_misses, 0, "restarted engine must not re-scan");
        assert!(stats.scan_hits >= 1);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn multiple_campaigns_interleave_and_all_complete() {
    let mut engine = CampaignEngine::new(EngineConfig::default(), etcd_registry()).unwrap();
    let a = engine.submit(etcd_spec("alice", "a", 3)).unwrap();
    let b = engine.submit(etcd_spec("bob", "b", 4)).unwrap();
    let c = engine.submit(etcd_spec("carol", "c", 2)).unwrap();
    let summary = engine.drive(None).unwrap();
    assert_eq!(summary.campaigns, 3);
    assert_eq!(summary.completed, 3);
    assert_eq!(summary.experiments, 3 + 4 + 2);
    for id in [&a, &b, &c] {
        let status = engine.poll(id).unwrap();
        assert_eq!(status.state, JobState::Completed, "{id}");
        assert_eq!(
            Some(status.completed_experiments),
            status.total_experiments,
            "{id}"
        );
        let report = engine.report(id).unwrap();
        assert_eq!(report.executed, status.completed_experiments);
    }
    // All three campaigns share one target: exactly one scan.
    assert_eq!(engine.cache_stats().scan_misses, 1);
}

#[test]
fn service_facade_delivers_reports_to_sessions() {
    let mut service = CampaignService::new(EngineConfig::default(), etcd_registry()).unwrap();
    let id = service.submit(etcd_spec("alice", "nightly", 3)).unwrap();
    assert!(service.poll(&id).is_some());
    assert!(service.sessions.reports("alice").is_empty(), "not done yet");
    service.drive(None).unwrap();
    // Completed report is now visible through the session accessors.
    let report = service
        .sessions
        .report("alice", "nightly")
        .expect("report delivered");
    assert_eq!(report.executed, 3);
    assert_eq!(service.sessions.report_names("alice"), vec!["nightly"]);
    // Driving again must not duplicate the delivery.
    service.drive(None).unwrap();
    assert_eq!(service.sessions.reports("alice").len(), 1);
}

#[test]
fn failed_setup_marks_job_failed_not_poisoning_queue() {
    let mut engine = CampaignEngine::new(EngineConfig::default(), etcd_registry()).unwrap();
    let mut bad = etcd_spec("alice", "bad", 2);
    bad.sources[0].1 = "def broken(:\n".into(); // unparsable target
    let bad_id = engine.submit(bad).unwrap();
    let good_id = engine.submit(etcd_spec("bob", "good", 2)).unwrap();
    let summary = engine.drive(None).unwrap();
    let bad_status = engine.poll(&bad_id).unwrap();
    assert_eq!(bad_status.state, JobState::Failed);
    assert!(bad_status.error.is_some());
    assert_eq!(engine.poll(&good_id).unwrap().state, JobState::Completed);
    assert_eq!(summary.completed, 1);
}

#[test]
fn unknown_host_is_rejected_at_submit() {
    let mut engine = CampaignEngine::new(EngineConfig::default(), HostRegistry::with_noop()).unwrap();
    let err = engine.submit(etcd_spec("alice", "x", 1)).unwrap_err();
    assert!(err.message.contains("unknown host"), "{}", err.message);
}

#[test]
fn checkout_checkin_reports_match_drive_byte_for_byte() {
    // The distributed-execution surface: checking a campaign out,
    // recording its experiments externally, and checking it back in
    // must produce a report byte-identical to a locally driven run —
    // the engine-level half of the cluster determinism invariant.
    let spec = etcd_spec("alice", "dist", 5);

    // Reference: locally driven.
    let mut reference = CampaignEngine::new(EngineConfig::default(), etcd_registry()).unwrap();
    let ref_id = reference.submit(spec.clone()).unwrap();
    reference.drive(None).unwrap();
    let expected = campaign::report_to_value(&reference.report(&ref_id).unwrap()).pretty();

    // Distributed: checkout, execute the pending jobs "remotely" (the
    // same deterministic workflow path a worker agent uses, completion
    // order scrambled), check back in.
    let mut engine = CampaignEngine::new(EngineConfig::default(), etcd_registry()).unwrap();
    let id = engine.submit(spec.clone()).unwrap();
    let mut checkout = engine.checkout_next().unwrap().expect("queued campaign");
    assert_eq!(checkout.id, id);
    assert!(!checkout.pending.is_empty());
    let workflow = spec
        .build_workflow(etcd_registry().get("etcd").unwrap(), Default::default())
        .unwrap();
    let mut jobs = std::mem::take(&mut checkout.pending);
    jobs.reverse(); // completion order must not matter
    for (point, sources) in &jobs {
        let result = workflow.run_experiment_with_sources(point, sources);
        checkout.checkpoint.record(&result).unwrap();
    }
    let completed = engine.checkin(checkout).unwrap();
    assert!(completed, "all results recorded → completed");
    assert_eq!(engine.poll(&id).unwrap().state, JobState::Completed);
    let report = campaign::report_to_value(&engine.report(&id).unwrap()).pretty();
    assert_eq!(report, expected, "checkout/checkin diverged from drive");

    // A partial checkin requeues and a later checkout resumes from the
    // checkpoint instead of restarting.
    let mut partial = CampaignEngine::new(EngineConfig::default(), etcd_registry()).unwrap();
    let pid = partial.submit(spec).unwrap();
    let mut first = partial.checkout_next().unwrap().unwrap();
    let pending = std::mem::take(&mut first.pending);
    let (head, tail) = pending.split_at(2);
    for (point, sources) in head {
        first
            .checkpoint
            .record(&workflow.run_experiment_with_sources(point, sources))
            .unwrap();
    }
    assert!(!partial.checkin(first).unwrap(), "incomplete → requeued");
    assert_eq!(partial.poll(&pid).unwrap().state, JobState::Queued);
    let mut second = partial.checkout_next().unwrap().unwrap();
    assert_eq!(
        second.pending.len(),
        tail.len(),
        "resume skips checkpointed experiments"
    );
    for (point, sources) in std::mem::take(&mut second.pending) {
        second
            .checkpoint
            .record(&workflow.run_experiment_with_sources(&point, &sources))
            .unwrap();
    }
    assert!(partial.checkin(second).unwrap());
    let resumed = campaign::report_to_value(&partial.report(&pid).unwrap()).pretty();
    assert_eq!(resumed, expected, "resumed distributed run diverged");
}
