//! The persistent campaign job queue.
//!
//! Submitted [`CampaignSpec`]s are written to disk (one JSON file per
//! job) before they run, so a crashed or restarted service picks up
//! exactly where it left off: jobs found in the `Running` state at open
//! time are demoted back to `Queued` (their checkpoints make the rerun
//! incremental).
//!
//! Scheduling order implements **per-user fairness with priorities**:
//! the user who least recently received a slot goes first (round-robin
//! across users), and within a user higher `priority` wins, then FIFO
//! submission order. The paper pitches ProFIPy as a multi-user service
//! (§IV); fairness keeps one user's thousand-experiment campaign from
//! starving everyone else.

use crate::spec::CampaignSpec;
use jsonlite::Value;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Lifecycle of a queued campaign.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for a slot.
    Queued,
    /// Currently being executed.
    Running,
    /// All experiments finished.
    Completed,
    /// Setup or execution failed fatally.
    Failed,
    /// Cancelled by the user.
    Cancelled,
}

impl JobState {
    /// Stable lower-case name (persisted format, API responses).
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    fn from_str(s: &str) -> Result<JobState, String> {
        Ok(match s {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "completed" => JobState::Completed,
            "failed" => JobState::Failed,
            "cancelled" => JobState::Cancelled,
            other => return Err(format!("unknown job state '{other}'")),
        })
    }
}

/// One queue entry.
#[derive(Clone, Debug)]
pub struct QueuedJob {
    /// Queue-assigned id (`job-000001`, …).
    pub id: String,
    /// The campaign to run.
    pub spec: CampaignSpec,
    /// Current state.
    pub state: JobState,
    /// Submission sequence number (FIFO tiebreak).
    pub seq: u64,
    /// Fatal error, if `state == Failed`.
    pub error: Option<String>,
}

impl QueuedJob {
    fn to_value(&self) -> Value {
        Value::obj(vec![
            ("id", Value::str(&self.id)),
            ("seq", Value::UInt(self.seq)),
            ("state", Value::str(self.state.as_str())),
            (
                "error",
                match &self.error {
                    Some(e) => Value::str(e),
                    None => Value::Null,
                },
            ),
            ("spec", self.spec.to_value()),
        ])
    }

    fn from_value(v: &Value) -> Result<QueuedJob, String> {
        Ok(QueuedJob {
            id: v
                .req("id")?
                .as_str()
                .ok_or("job 'id' must be a string")?
                .to_string(),
            seq: v.req("seq")?.as_u64().ok_or("job 'seq' must be a u64")?,
            state: JobState::from_str(
                v.req("state")?
                    .as_str()
                    .ok_or("job 'state' must be a string")?,
            )?,
            error: match v.req("error")? {
                Value::Null => None,
                other => Some(
                    other
                        .as_str()
                        .ok_or("job 'error' must be a string or null")?
                        .to_string(),
                ),
            },
            spec: CampaignSpec::from_value(v.req("spec")?)?,
        })
    }
}

/// The queue. Persistent when opened on a directory, ephemeral when
/// created in memory (tests, one-shot runs).
pub struct JobQueue {
    dir: Option<PathBuf>,
    jobs: BTreeMap<String, QueuedJob>,
    next_seq: u64,
    /// user → queue tick at which the user last received a slot.
    last_slot: BTreeMap<String, u64>,
    tick: u64,
}

impl JobQueue {
    /// An ephemeral, in-memory queue.
    pub fn in_memory() -> JobQueue {
        JobQueue {
            dir: None,
            jobs: BTreeMap::new(),
            next_seq: 1,
            last_slot: BTreeMap::new(),
            tick: 1,
        }
    }

    /// Opens (or creates) a persistent queue in `dir`. Jobs found
    /// `Running` are demoted to `Queued` — they were in flight when the
    /// previous process died.
    ///
    /// # Errors
    ///
    /// I/O errors; corrupt job files are reported, not silently
    /// dropped.
    pub fn open(dir: &Path) -> io::Result<JobQueue> {
        std::fs::create_dir_all(dir)?;
        let mut queue = JobQueue {
            dir: Some(dir.to_path_buf()),
            ..JobQueue::in_memory()
        };
        let mut recovered = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            let is_job = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("job-") && n.ends_with(".json"));
            if !is_job {
                continue;
            }
            let text = std::fs::read_to_string(&path)?;
            let mut job = jsonlite::parse(&text)
                .and_then(|v| QueuedJob::from_value(&v))
                .map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("corrupt job file {}: {e}", path.display()),
                    )
                })?;
            if job.state == JobState::Running {
                job.state = JobState::Queued;
                recovered.push(job.id.clone());
            }
            queue.next_seq = queue.next_seq.max(job.seq + 1);
            queue.jobs.insert(job.id.clone(), job);
        }
        for id in recovered {
            queue.persist(&id)?;
        }
        Ok(queue)
    }

    /// Submits a campaign; returns the assigned job id.
    ///
    /// # Errors
    ///
    /// I/O errors writing the job file.
    pub fn submit(&mut self, spec: CampaignSpec) -> io::Result<String> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = format!("job-{seq:06}");
        let job = QueuedJob {
            id: id.clone(),
            spec,
            state: JobState::Queued,
            seq,
            error: None,
        };
        self.jobs.insert(id.clone(), job);
        self.persist(&id)?;
        Ok(id)
    }

    /// Picks the next job to run (fairness order), marks it `Running`,
    /// and returns its id. `None` when nothing is queued.
    ///
    /// # Errors
    ///
    /// I/O errors persisting the state change.
    pub fn take_next(&mut self) -> io::Result<Option<String>> {
        let Some(id) = self.peek_next() else {
            return Ok(None);
        };
        let job = self.jobs.get_mut(&id).expect("peeked job exists");
        job.state = JobState::Running;
        self.last_slot.insert(job.spec.user.clone(), self.tick);
        self.tick += 1;
        self.persist(&id)?;
        Ok(Some(id))
    }

    /// The id `take_next` would return, without side effects.
    pub fn peek_next(&self) -> Option<String> {
        // Least-recently-served user first (never-served = 0), then by
        // user name for determinism; within the user: priority desc,
        // seq asc.
        self.jobs
            .values()
            .filter(|j| j.state == JobState::Queued)
            .min_by_key(|j| {
                (
                    self.last_slot.get(&j.spec.user).copied().unwrap_or(0),
                    j.spec.user.clone(),
                    std::cmp::Reverse(j.spec.priority),
                    j.seq,
                )
            })
            .map(|j| j.id.clone())
    }

    /// Marks a running job finished.
    ///
    /// # Errors
    ///
    /// I/O errors persisting the state change.
    pub fn complete(&mut self, id: &str) -> io::Result<()> {
        self.set_state(id, JobState::Completed, None)
    }

    /// Puts a running job back in the queue (budget exhausted before it
    /// finished; its checkpoint keeps the completed experiments).
    ///
    /// # Errors
    ///
    /// I/O errors persisting the state change.
    pub fn requeue(&mut self, id: &str) -> io::Result<()> {
        self.set_state(id, JobState::Queued, None)
    }

    /// Marks a job failed with a reason.
    ///
    /// # Errors
    ///
    /// I/O errors persisting the state change.
    pub fn fail(&mut self, id: &str, error: &str) -> io::Result<()> {
        self.set_state(id, JobState::Failed, Some(error.to_string()))
    }

    /// Cancels a queued job (running/finished jobs are left alone).
    ///
    /// # Errors
    ///
    /// I/O errors persisting the state change.
    pub fn cancel(&mut self, id: &str) -> io::Result<bool> {
        match self.jobs.get(id) {
            Some(job) if job.state == JobState::Queued => {
                self.set_state(id, JobState::Cancelled, None)?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    fn set_state(
        &mut self,
        id: &str,
        state: JobState,
        error: Option<String>,
    ) -> io::Result<()> {
        if let Some(job) = self.jobs.get_mut(id) {
            job.state = state;
            job.error = error;
            self.persist(id)?;
        }
        Ok(())
    }

    /// Looks up a job.
    pub fn get(&self, id: &str) -> Option<&QueuedJob> {
        self.jobs.get(id)
    }

    /// All jobs, by id.
    pub fn jobs(&self) -> impl Iterator<Item = &QueuedJob> {
        self.jobs.values()
    }

    /// Ids of all currently queued jobs, in fairness order.
    pub fn queued_ids(&self) -> Vec<String> {
        // Simulate repeated take_next without mutating real state.
        let mut order = Vec::new();
        let mut last_slot = self.last_slot.clone();
        let mut tick = self.tick;
        let mut remaining: Vec<&QueuedJob> = self
            .jobs
            .values()
            .filter(|j| j.state == JobState::Queued)
            .collect();
        while !remaining.is_empty() {
            let (idx, _) = remaining
                .iter()
                .enumerate()
                .min_by_key(|(_, j)| {
                    (
                        last_slot.get(&j.spec.user).copied().unwrap_or(0),
                        j.spec.user.clone(),
                        std::cmp::Reverse(j.spec.priority),
                        j.seq,
                    )
                })
                .expect("nonempty");
            let job = remaining.swap_remove(idx);
            last_slot.insert(job.spec.user.clone(), tick);
            tick += 1;
            order.push(job.id.clone());
        }
        order
    }

    fn persist(&self, id: &str) -> io::Result<()> {
        let (Some(dir), Some(job)) = (&self.dir, self.jobs.get(id)) else {
            return Ok(());
        };
        let final_path = dir.join(format!("{id}.json"));
        let tmp_path = dir.join(format!("{id}.json.tmp"));
        std::fs::write(&tmp_path, job.to_value().pretty())?;
        std::fs::rename(&tmp_path, &final_path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(user: &str, name: &str, priority: u8) -> CampaignSpec {
        let mut s = CampaignSpec::new(
            user,
            name,
            "noop",
            vec![("m".into(), "pass\n".into())],
            "def run(round):\n    pass\n".into(),
            faultdsl::campaign_a_model(),
        );
        s.priority = priority;
        s
    }

    #[test]
    fn fifo_within_one_user() {
        let mut q = JobQueue::in_memory();
        let a = q.submit(spec("alice", "one", 0)).unwrap();
        let b = q.submit(spec("alice", "two", 0)).unwrap();
        assert_eq!(q.take_next().unwrap(), Some(a));
        assert_eq!(q.take_next().unwrap(), Some(b));
        assert_eq!(q.take_next().unwrap(), None);
    }

    #[test]
    fn priority_beats_fifo_within_user() {
        let mut q = JobQueue::in_memory();
        let _low = q.submit(spec("alice", "low", 0)).unwrap();
        let high = q.submit(spec("alice", "high", 9)).unwrap();
        assert_eq!(q.take_next().unwrap(), Some(high));
    }

    #[test]
    fn users_round_robin() {
        let mut q = JobQueue::in_memory();
        let a1 = q.submit(spec("alice", "a1", 0)).unwrap();
        let a2 = q.submit(spec("alice", "a2", 0)).unwrap();
        let b1 = q.submit(spec("bob", "b1", 0)).unwrap();
        // Alice served first (alphabetical among never-served), then
        // bob (still never-served), then alice again.
        assert_eq!(q.take_next().unwrap(), Some(a1));
        assert_eq!(q.take_next().unwrap(), Some(b1));
        assert_eq!(q.take_next().unwrap(), Some(a2));
    }

    #[test]
    fn heavy_user_cannot_starve_others() {
        let mut q = JobQueue::in_memory();
        for i in 0..10 {
            q.submit(spec("alice", &format!("a{i}"), 0)).unwrap();
        }
        q.take_next().unwrap(); // alice gets one slot…
        let b = q.submit(spec("bob", "b", 0)).unwrap();
        // …then bob's fresh submission goes before alice's backlog.
        assert_eq!(q.take_next().unwrap(), Some(b));
    }

    #[test]
    fn queued_ids_previews_fairness_order() {
        let mut q = JobQueue::in_memory();
        let a1 = q.submit(spec("alice", "a1", 0)).unwrap();
        let a2 = q.submit(spec("alice", "a2", 5)).unwrap();
        let b1 = q.submit(spec("bob", "b1", 0)).unwrap();
        // Priority reorders alice's jobs; users alternate.
        assert_eq!(q.queued_ids(), vec![a2.clone(), b1, a1]);
        // Preview must not consume.
        assert_eq!(q.take_next().unwrap(), Some(a2));
    }

    #[test]
    fn persistence_survives_reopen_and_demotes_running() {
        let dir = std::env::temp_dir().join(format!(
            "campaign-queue-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let (a, b);
        {
            let mut q = JobQueue::open(&dir).unwrap();
            a = q.submit(spec("alice", "one", 0)).unwrap();
            b = q.submit(spec("bob", "two", 0)).unwrap();
            assert_eq!(q.take_next().unwrap(), Some(a.clone()));
            // Process "crashes" here with job `a` running.
        }
        {
            let q = JobQueue::open(&dir).unwrap();
            assert_eq!(q.get(&a).unwrap().state, JobState::Queued, "demoted");
            assert_eq!(q.get(&b).unwrap().state, JobState::Queued);
            assert_eq!(q.get(&a).unwrap().spec.user, "alice");
            assert_eq!(q.jobs().count(), 2);
        }
        {
            let mut q = JobQueue::open(&dir).unwrap();
            // Sequence numbers continue, no id collisions.
            let c = q.submit(spec("carol", "three", 0)).unwrap();
            assert_ne!(c, a);
            assert_ne!(c, b);
            q.complete(&a).unwrap();
            q.fail(&b, "boom").unwrap();
        }
        {
            let q = JobQueue::open(&dir).unwrap();
            assert_eq!(q.get(&a).unwrap().state, JobState::Completed);
            assert_eq!(q.get(&b).unwrap().state, JobState::Failed);
            assert_eq!(q.get(&b).unwrap().error.as_deref(), Some("boom"));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancel_only_affects_queued() {
        let mut q = JobQueue::in_memory();
        let a = q.submit(spec("alice", "one", 0)).unwrap();
        let b = q.submit(spec("alice", "two", 0)).unwrap();
        assert_eq!(q.take_next().unwrap(), Some(a.clone()));
        assert!(!q.cancel(&a).unwrap(), "running job not cancellable");
        assert!(q.cancel(&b).unwrap());
        assert_eq!(q.get(&b).unwrap().state, JobState::Cancelled);
        assert_eq!(q.take_next().unwrap(), None);
    }
}
