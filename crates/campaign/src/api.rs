//! The REST surface over [`CampaignService`] — the paper's
//! "fault injection as-a-service" made reachable over the network.
//!
//! | Method | Path                         | Purpose                           |
//! |--------|------------------------------|-----------------------------------|
//! | POST   | `/api/campaigns`             | submit a [`CampaignSpec`] (JSON)  |
//! | GET    | `/api/campaigns/:id`         | job status                        |
//! | GET    | `/api/campaigns/:id/report`  | completed campaign report (JSON)  |
//! | POST   | `/api/models`                | save a fault model into a session |
//! | GET    | `/api/sessions/:user/reports`| a user's report history           |
//! | GET    | `/api/campaigns/:id/trace`   | merged execution timeline (JSON)  |
//! | GET    | `/metrics`                   | Prometheus exposition             |
//! | GET    | `/healthz`                   | liveness probe (JSON)             |
//!
//! Handlers never run campaigns: submissions land in the engine's
//! persistent queue, and a background **drive thread** pumps
//! [`CampaignService::drive`] in small budget slices behind the shared
//! mutex — status polls interleave with execution instead of waiting
//! for a campaign to finish.

use crate::engine::{EngineError, JobStatus};
use crate::service::CampaignService;
use crate::spec::CampaignSpec;
use httpd::{Request, Response, Router, Server, ServerConfig};
use jsonlite::Value;
use profipy::report::CampaignReport;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use trace::TraceStore;

/// Nesting-depth cap applied to untrusted request bodies.
const REQUEST_JSON_DEPTH: usize = 64;

/// Safety-net park bound for an idle drive thread: with an empty queue
/// the loop waits on the wake condvar instead of spinning, and this
/// bounds how long a (hypothetical) missed wakeup could stall newly
/// queued work. Submissions notify the condvar, so the normal idle
/// cost is zero drive calls, not one per park.
const DRIVE_IDLE_PARK: Duration = Duration::from_secs(5);

/// API server options.
#[derive(Clone, Debug)]
pub struct ApiConfig {
    /// The HTTP layer (worker pool, queue depth, body cap).
    pub http: ServerConfig,
    /// Experiments per drive slice: small keeps poll latency low,
    /// large amortizes scheduling overhead.
    pub drive_batch: usize,
    /// Whether to run the background drive thread that executes queued
    /// campaigns in-process. Fleet coordinators disable it: their
    /// campaigns are executed by remote workers, not the local pool.
    pub local_drive: bool,
}

impl Default for ApiConfig {
    fn default() -> ApiConfig {
        ApiConfig {
            http: ServerConfig::default(),
            drive_batch: 8,
            local_drive: true,
        }
    }
}

/// One pluggable metrics source: appends `(name, value)` gauges to the
/// `/metrics` output (names are emitted with the `profipy_` prefix).
pub type MetricsProvider = Box<dyn Fn(&mut Vec<(String, u64)>) + Send + Sync>;

struct ApiState {
    service: Mutex<CampaignService>,
    api_requests: AtomicU64,
    drive_errors: Mutex<Option<String>>,
    /// Drive slices executed so far — observable proof that an idle
    /// server is *not* burning a core behind the service mutex.
    drive_calls: AtomicU64,
    /// Wake sequence for the drive thread: bumped (and notified) on
    /// every submission so an idle, parked drive loop reacts
    /// immediately instead of polling.
    wake_seq: Mutex<u64>,
    wake: Condvar,
    /// Extra metrics sources mounted by extensions (the fleet surface).
    metrics_ext: Mutex<Vec<MetricsProvider>>,
    /// The HTTP layer's live open-connections gauge; installed right
    /// after the server binds (the router is built first).
    http_open_connections: OnceLock<Arc<AtomicU64>>,
    /// Typed metrics (counters/gauges/histograms) rendered at the head
    /// of `/metrics` in Prometheus exposition format. Every layer —
    /// httpd, the engine, the fleet coordinator — registers into this
    /// one registry.
    registry: Arc<obs::Registry>,
    /// Per-campaign execution timelines (spans from the engine and,
    /// under a fleet coordinator, from remote workers).
    trace: Arc<TraceStore>,
    /// Service boot time — `uptime_seconds` on `/healthz`.
    started: Instant,
    /// Deployment role reported by `/healthz`: `"local"` unless an
    /// extension (the fleet coordinator, the worker agent) claims
    /// another one.
    role: OnceLock<String>,
}

impl ApiState {
    /// Locks the service, recovering from a poisoned lock (a panicking
    /// handler must not take the whole service down).
    fn service(&self) -> MutexGuard<'_, CampaignService> {
        self.service
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn notify_drive(&self) {
        let mut seq = self.wake_seq.lock().unwrap_or_else(|p| p.into_inner());
        *seq = seq.wrapping_add(1);
        self.wake.notify_all();
    }
}

/// A cloneable handle to the service shared by the API handlers — the
/// extension point for mounting additional surfaces (the cluster
/// crate's fleet routes) onto the same server and state.
#[derive(Clone)]
pub struct SharedService {
    state: Arc<ApiState>,
}

impl SharedService {
    /// Wraps a service for sharing. [`ApiServer::serve`] does this
    /// internally; build one yourself to drive the service from both an
    /// extension (e.g. a fleet coordinator) and the API server, or to
    /// test extensions without HTTP.
    pub fn new(mut service: CampaignService) -> SharedService {
        let registry = Arc::new(obs::Registry::new());
        let trace = Arc::new(TraceStore::new());
        service.engine().metrics().register_into(&registry);
        service.engine().set_trace_store(trace.clone());
        SharedService {
            state: Arc::new(ApiState {
                service: Mutex::new(service),
                api_requests: AtomicU64::new(0),
                drive_errors: Mutex::new(None),
                drive_calls: AtomicU64::new(0),
                wake_seq: Mutex::new(0),
                wake: Condvar::new(),
                metrics_ext: Mutex::new(Vec::new()),
                http_open_connections: OnceLock::new(),
                registry,
                trace,
                started: Instant::now(),
                role: OnceLock::new(),
            }),
        }
    }

    /// Locks the shared service (poison-recovering).
    pub fn lock(&self) -> MutexGuard<'_, CampaignService> {
        self.state.service()
    }

    /// Wakes the background drive thread. Call after submitting work
    /// through [`SharedService::lock`] directly (the HTTP submission
    /// handler already does).
    pub fn notify_drive(&self) {
        self.state.notify_drive();
    }

    /// Counts a request against the API's `http_requests_total` gauge —
    /// for externally mounted routes.
    pub fn count_request(&self) {
        self.state.api_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Registers an extra metrics source appended to `/metrics`. Keep
    /// captured state weak: providers live as long as the server state,
    /// and a provider that strongly owns the state would leak it.
    pub fn add_metrics(&self, provider: MetricsProvider) {
        self.state
            .metrics_ext
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(provider);
    }

    /// The typed metrics registry rendered at the head of `/metrics`.
    /// Extensions (the fleet surface) register their counters and
    /// histograms here; the HTTP layer records request latencies into
    /// it too.
    pub fn metrics_registry(&self) -> Arc<obs::Registry> {
        self.state.registry.clone()
    }

    /// The per-campaign trace store behind
    /// `GET /api/campaigns/:id/trace`. The engine records its
    /// prepare/execute spans here; fleet coordinators merge in spans
    /// shipped back by remote workers.
    pub fn trace_store(&self) -> Arc<TraceStore> {
        self.state.trace.clone()
    }

    /// Claims the deployment role reported by `/healthz` (first caller
    /// wins; the default is `"local"`).
    pub fn set_role(&self, role: &str) {
        // Benign when already claimed: first caller wins by design.
        let _ = self.state.role.set(role.to_string());
    }
}

/// The running as-a-Service stack: HTTP server + drive thread over one
/// shared [`CampaignService`].
pub struct ApiServer {
    server: Option<Server>,
    state: Arc<ApiState>,
    stop: Arc<AtomicBool>,
    drive: Option<JoinHandle<()>>,
}

impl ApiServer {
    /// Boots the service on `addr` (port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    pub fn serve(
        addr: &str,
        service: CampaignService,
        config: ApiConfig,
    ) -> Result<ApiServer, EngineError> {
        ApiServer::serve_with(addr, SharedService::new(service), config, |router, _| router)
    }

    /// Boots the service over an externally created [`SharedService`],
    /// letting `mount` add routes to the router before it binds (this
    /// is how the cluster crate mounts the fleet surface onto the same
    /// server). For [`ApiServer::shutdown`] to hand the service back,
    /// every other `SharedService` clone must be dropped first.
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    pub fn serve_with(
        addr: &str,
        shared: SharedService,
        config: ApiConfig,
        mount: impl FnOnce(Router, &SharedService) -> Router,
    ) -> Result<ApiServer, EngineError> {
        let listener = std::net::TcpListener::bind(addr)?;
        ApiServer::serve_with_listener(listener, shared, config, mount)
    }

    /// [`ApiServer::serve_with`] over an already-bound listener — how a
    /// warm standby serves the address it bound at boot only once it
    /// promotes itself.
    ///
    /// # Errors
    ///
    /// Listener address lookup failures.
    pub fn serve_with_listener(
        listener: std::net::TcpListener,
        shared: SharedService,
        config: ApiConfig,
        mount: impl FnOnce(Router, &SharedService) -> Router,
    ) -> Result<ApiServer, EngineError> {
        let state = shared.state.clone();
        let router = mount(build_router(state.clone()), &shared);
        drop(shared);
        let mut http = config.http.clone();
        // Unless the caller supplied its own registry, record HTTP
        // request/queue-wait histograms into the service registry so
        // they surface on this server's own `/metrics`.
        if http.metrics.is_none() {
            http.metrics = Some(state.registry.clone());
        }
        let server = Server::from_listener(listener, router, http)?;
        // Benign when already set: the gauge is installed once per
        // `OnceLock` and every server restart reuses the same state.
        let _ = state
            .http_open_connections
            .set(server.connections_open_gauge());
        let stop = Arc::new(AtomicBool::new(false));
        let drive = if config.local_drive {
            let drive_state = state.clone();
            let drive_stop = stop.clone();
            let batch = config.drive_batch.max(1);
            Some(
                std::thread::Builder::new()
                    .name("campaign-drive".into())
                    .spawn(move || drive_loop(&drive_state, &drive_stop, batch))
                    .expect("spawn drive thread"),
            )
        } else {
            None
        };
        Ok(ApiServer {
            server: Some(server),
            state,
            stop,
            drive,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.server.as_ref().expect("server running").addr()
    }

    /// Requests served by the API handlers so far.
    pub fn requests_served(&self) -> u64 {
        self.state.api_requests.load(Ordering::Relaxed)
    }

    /// Drive slices executed by the background thread so far. An idle
    /// server performs no drive work: the loop parks on a condvar until
    /// a submission wakes it (plus a coarse safety-net timeout).
    pub fn drive_calls(&self) -> u64 {
        self.state.drive_calls.load(Ordering::Relaxed)
    }

    /// Graceful stop: drain in-flight HTTP requests, then let the
    /// drive thread finish its current slice and join it. Queued work
    /// survives in the engine (and on disk for persistent engines).
    pub fn shutdown(mut self) -> CampaignService {
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
        self.stop.store(true, Ordering::SeqCst);
        self.state.notify_drive(); // unpark an idle drive thread
        if let Some(drive) = self.drive.take() {
            if let Err(panic) = drive.join() {
                // The thread is gone either way, but a panicked drive
                // loop means campaigns silently stopped progressing —
                // say so instead of swallowing it.
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                obs::log!(obs::Level::Error, "drive_thread_panicked", "error" => msg);
            }
        }
        // The Arc is ours alone now: handlers are drained and the
        // drive thread is joined.
        match Arc::try_unwrap(self.state) {
            Ok(state) => state
                .service
                .into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
            Err(_) => unreachable!("all state holders joined before unwrap"),
        }
    }
}

fn drive_loop(state: &ApiState, stop: &AtomicBool, batch: usize) {
    while !stop.load(Ordering::SeqCst) {
        // Snapshot the wake sequence *before* driving: a submission
        // that lands mid-drive bumps it, so the park below falls
        // through instead of sleeping on work that already arrived.
        let seq_before = *state.wake_seq.lock().unwrap_or_else(|p| p.into_inner());
        let worked = {
            let mut service = state.service();
            match service.drive(Some(batch)) {
                Ok(summary) => summary.experiments > 0 || summary.campaigns > 0,
                Err(e) => {
                    *state
                        .drive_errors
                        .lock()
                        .unwrap_or_else(|p| p.into_inner()) = Some(e.message);
                    false
                }
            }
        };
        state.drive_calls.fetch_add(1, Ordering::Relaxed);
        if !worked {
            // Idle (or wedged): park until a submission (or shutdown)
            // notifies the condvar — an idle server performs no drive
            // work at all between submissions, instead of pumping the
            // service mutex in a tight loop.
            let guard = state.wake_seq.lock().unwrap_or_else(|p| p.into_inner());
            // Benign: a timeout here is the idle heartbeat, not an
            // error — the loop re-checks `stop` and the queue either way.
            let _ = state.wake.wait_timeout_while(guard, DRIVE_IDLE_PARK, |seq| {
                *seq == seq_before && !stop.load(Ordering::SeqCst)
            });
        }
    }
}

fn build_router(state: Arc<ApiState>) -> Router {
    Router::new()
        .route("POST", "/api/campaigns", counted(&state, submit_campaign))
        .route("GET", "/api/campaigns/:id", counted(&state, job_status))
        .route(
            "GET",
            "/api/campaigns/:id/report",
            counted(&state, job_report),
        )
        .route("POST", "/api/models", counted(&state, upload_model))
        .route(
            "GET",
            "/api/sessions/:user/reports",
            counted(&state, session_reports),
        )
        .route(
            "GET",
            "/api/campaigns/:id/trace",
            counted(&state, job_trace),
        )
        .route("GET", "/metrics", counted(&state, metrics))
        .route("GET", "/healthz", counted(&state, healthz))
}

fn counted(
    state: &Arc<ApiState>,
    handler: fn(&ApiState, &Request) -> Response,
) -> impl Fn(&Request) -> Response + Send + Sync + 'static {
    let state = state.clone();
    move |req| {
        state.api_requests.fetch_add(1, Ordering::Relaxed);
        handler(&state, req)
    }
}

// ---------- handlers ----------

fn submit_campaign(state: &ApiState, req: &Request) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(resp) => return *resp,
    };
    let spec = match CampaignSpec::from_value(&body) {
        Ok(spec) => spec,
        Err(e) => return error_response(422, &format!("invalid campaign spec: {e}")),
    };
    let outcome = state.service().submit(spec);
    match outcome {
        Ok(id) => {
            // Wake the (possibly idle-parked) drive thread.
            state.notify_drive();
            Response::json(
                201,
                Value::obj(vec![
                    ("id", Value::str(&id)),
                    ("status_url", Value::str(format!("/api/campaigns/{id}"))),
                ])
                .pretty(),
            )
        }
        Err(e) => error_response(422, &e.message),
    }
}

fn job_status(state: &ApiState, req: &Request) -> Response {
    let id = req.param("id").unwrap_or_default();
    match state.service().poll(id) {
        Some(status) => Response::json(200, status_to_value(&status).pretty()),
        None => error_response(404, &format!("unknown job '{id}'")),
    }
}

fn job_report(state: &ApiState, req: &Request) -> Response {
    let id = req.param("id").unwrap_or_default();
    let mut service = state.service();
    if let Some(report) = service.engine().report(id) {
        return Response::json(200, report_to_value(&report).pretty());
    }
    match service.poll(id) {
        // Known job, not finished: tell the client to keep polling.
        Some(status) => Response::json(
            409,
            Value::obj(vec![
                ("error", Value::str("campaign not completed")),
                ("state", Value::str(status.state.as_str())),
            ])
            .pretty(),
        ),
        None => error_response(404, &format!("unknown job '{id}'")),
    }
}

fn upload_model(state: &ApiState, req: &Request) -> Response {
    let body = match json_body(req) {
        Ok(v) => v,
        Err(resp) => return *resp,
    };
    let field = |key: &str| -> Result<String, String> {
        body.req(key)?
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("'{key}' must be a string"))
    };
    let (user, name) = match (field("user"), field("name")) {
        (Ok(u), Ok(n)) => (u, n),
        (Err(e), _) | (_, Err(e)) => return error_response(422, &e),
    };
    // Either a full fault-model document or bare DSL source.
    let model = if let Some(model_value) = body.get("model") {
        match faultdsl::FaultModel::from_value(model_value) {
            Ok(m) => m,
            Err(e) => return error_response(422, &format!("invalid fault model: {e}")),
        }
    } else if let Some(dsl) = body.get("dsl").and_then(Value::as_str) {
        faultdsl::FaultModel {
            name: name.clone(),
            description: "uploaded via POST /api/models".into(),
            specs: vec![faultdsl::SpecSource {
                name: name.to_ascii_uppercase(),
                description: String::new(),
                dsl: dsl.to_string(),
            }],
        }
    } else {
        return error_response(422, "body must carry 'model' (JSON) or 'dsl' (source text)");
    };
    // Validate before saving: a model that does not compile is useless.
    if let Err(e) = model.compile() {
        return error_response(422, &format!("fault model does not compile: {e}"));
    }
    let specs = model.specs.len();
    state.service().sessions.session(&user).save_model(&name, &model);
    Response::json(
        201,
        Value::obj(vec![
            ("user", Value::str(&user)),
            ("name", Value::str(&name)),
            ("specs", Value::UInt(specs as u64)),
        ])
        .pretty(),
    )
}

fn session_reports(state: &ApiState, req: &Request) -> Response {
    let user = req.param("user").unwrap_or_default();
    let service = state.service();
    match service.sessions.get_session(user) {
        Some(session) => {
            let reports: Vec<Value> =
                session.reports().iter().map(report_to_value).collect();
            Response::json(
                200,
                Value::obj(vec![
                    ("user", Value::str(user)),
                    ("reports", Value::Arr(reports)),
                ])
                .pretty(),
            )
        }
        None => error_response(404, &format!("unknown user '{user}'")),
    }
}

fn job_trace(state: &ApiState, req: &Request) -> Response {
    let id = req.param("id").unwrap_or_default();
    if state.service().poll(id).is_none() {
        return error_response(404, &format!("unknown job '{id}'"));
    }
    // A known job with no recorded spans yet renders as an empty
    // timeline rather than a 404: the job exists, tracing just has
    // nothing for it (yet).
    let timeline = state.trace.timeline(id).unwrap_or_default();
    let dropped = state.trace.dropped(id);
    Response::json(
        200,
        Value::obj(vec![
            ("campaign", Value::str(id)),
            ("span_count", Value::UInt(timeline.spans().len() as u64)),
            ("dropped", Value::UInt(dropped)),
            ("spans", trace::json::timeline_to_value(&timeline)),
            ("render", Value::str(trace::render_timeline(&timeline, 72))),
        ])
        .pretty(),
    )
}

fn metrics(state: &ApiState, _req: &Request) -> Response {
    let mut service = state.service();
    let stats = service.engine().cache_stats();
    let depth = service.engine().queue_depth();
    let counts = service.engine().job_state_counts();
    drop(service);
    // Typed families (HELP/TYPE/histogram buckets) render first; the
    // legacy `profipy_*` gauges follow, grouped per family under one
    // `# TYPE … gauge` header each so the whole body is one valid
    // Prometheus exposition. The sample lines themselves keep the
    // exact `profipy_{name} {value}` shape scrapers already parse.
    let out = state.registry.render();
    let mut legacy: Vec<(String, u64)> = Vec::new();
    let mut gauge = |name: &str, value: u64| {
        legacy.push((name.to_string(), value));
    };
    gauge("http_requests_total", state.api_requests.load(Ordering::Relaxed));
    gauge("drive_calls_total", state.drive_calls.load(Ordering::Relaxed));
    gauge(
        "http_open_connections",
        state
            .http_open_connections
            .get()
            .map_or(0, |g| g.load(Ordering::Relaxed)),
    );
    gauge("queue_depth", depth as u64);
    for (st, n) in counts {
        gauge(&format!("jobs_{st}"), n as u64);
    }
    gauge("cache_scan_hits", stats.scan_hits);
    gauge("cache_scan_misses", stats.scan_misses);
    gauge("cache_parse_hits", stats.parse_hits);
    gauge("cache_parse_misses", stats.parse_misses);
    gauge("cache_mutant_hits", stats.mutant_hits);
    gauge("cache_mutant_misses", stats.mutant_misses);
    gauge("cache_prepare_hits", stats.prepare_hits);
    gauge("cache_prepare_misses", stats.prepare_misses);
    gauge("cache_coverage_hits", stats.coverage_hits);
    gauge("cache_coverage_misses", stats.coverage_misses);
    // Extension gauges (e.g. the fleet surface) — collected without the
    // service lock held, so providers may take their own locks freely.
    for provider in state
        .metrics_ext
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .iter()
    {
        provider(&mut legacy);
    }
    Response::text(200, render_legacy_gauges(out, &legacy))
}

/// Appends the legacy `(name, value)` gauges to `out` grouped by metric
/// family (the name up to any `{label}` block), in first-occurrence
/// order, with one `# TYPE profipy_<family> gauge` header per family —
/// exposition-format conformance without changing a byte of the sample
/// lines themselves.
fn render_legacy_gauges(mut out: String, legacy: &[(String, u64)]) -> String {
    let mut families: Vec<(&str, Vec<usize>)> = Vec::new();
    for (i, (name, _)) in legacy.iter().enumerate() {
        let family = name.split('{').next().unwrap_or(name);
        match families.iter_mut().find(|(f, _)| *f == family) {
            Some((_, members)) => members.push(i),
            None => families.push((family, vec![i])),
        }
    }
    for (family, members) in families {
        out.push_str(&format!("# TYPE profipy_{family} gauge\n"));
        for i in members {
            let (name, value) = &legacy[i];
            out.push_str(&format!("profipy_{name} {value}\n"));
        }
    }
    out
}

fn healthz(state: &ApiState, _req: &Request) -> Response {
    let error = state
        .drive_errors
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .clone();
    let body = Value::obj(vec![
        (
            "status",
            Value::str(if error.is_some() { "error" } else { "ok" }),
        ),
        (
            "role",
            Value::str(state.role.get().map_or("local", String::as_str)),
        ),
        (
            "uptime_seconds",
            Value::UInt(state.started.elapsed().as_secs()),
        ),
        ("version", Value::str(env!("CARGO_PKG_VERSION"))),
        (
            "error",
            match &error {
                Some(e) => Value::str(e),
                None => Value::Null,
            },
        ),
    ])
    .pretty();
    Response::json(if error.is_some() { 500 } else { 200 }, body)
}

// ---------- helpers & codecs ----------

/// Parses an untrusted request body as depth-limited JSON; the error
/// side is the ready-to-send 400. Shared by every surface mounted on
/// this server (the fleet routes included) so body hardening can never
/// drift between them.
pub fn json_body(req: &Request) -> Result<Value, Box<Response>> {
    let text = req
        .body_text()
        .map_err(|_| Box::new(error_response(400, "body must be UTF-8 JSON")))?;
    jsonlite::parse_with_depth_limit(text, REQUEST_JSON_DEPTH)
        .map_err(|e| Box::new(error_response(400, &format!("malformed JSON: {e}"))))
}

/// The API's uniform JSON error payload.
pub fn error_response(status: u16, message: &str) -> Response {
    Response::json(
        status,
        Value::obj(vec![("error", Value::str(message))]).pretty(),
    )
}

/// A [`JobStatus`] as a JSON value (the `GET /api/campaigns/:id`
/// payload).
pub fn status_to_value(status: &JobStatus) -> Value {
    Value::obj(vec![
        ("id", Value::str(&status.id)),
        ("state", Value::str(status.state.as_str())),
        ("user", Value::str(&status.user)),
        ("name", Value::str(&status.name)),
        (
            "completed_experiments",
            Value::UInt(status.completed_experiments as u64),
        ),
        (
            "total_experiments",
            match status.total_experiments {
                Some(n) => Value::UInt(n as u64),
                None => Value::Null,
            },
        ),
        (
            "error",
            match &status.error {
                Some(e) => Value::str(e),
                None => Value::Null,
            },
        ),
    ])
}

/// A [`CampaignReport`] as a JSON value — the canonical wire form of
/// `GET /api/campaigns/:id/report`, and the serialization the
/// byte-identity acceptance test compares against.
pub fn report_to_value(report: &CampaignReport) -> Value {
    Value::obj(vec![
        ("name", Value::str(&report.name)),
        ("planned_points", Value::UInt(report.planned_points as u64)),
        (
            "covered_points",
            match report.covered_points {
                Some(n) => Value::UInt(n as u64),
                None => Value::Null,
            },
        ),
        ("executed", Value::UInt(report.executed as u64)),
        ("failures", Value::UInt(report.failures as u64)),
        ("availability", Value::Float(report.availability)),
        ("persistent", Value::UInt(report.persistent as u64)),
        ("logging", Value::Float(report.logging)),
        ("propagation", Value::Float(report.propagation)),
        (
            "total_virtual_secs",
            Value::Float(report.total_virtual_secs),
        ),
        (
            "mode_distribution",
            Value::Obj(
                report
                    .mode_distribution
                    .iter()
                    .map(|(mode, n)| (mode.clone(), Value::UInt(*n as u64)))
                    .collect(),
            ),
        ),
        (
            "per_spec",
            Value::Obj(
                report
                    .per_spec
                    .iter()
                    .map(|(spec, (executed, failed))| {
                        (
                            spec.clone(),
                            Value::Arr(vec![
                                Value::UInt(*executed as u64),
                                Value::UInt(*failed as u64),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, HostRegistry};
    use profipy::analysis::FailureClassifier;

    fn service() -> CampaignService {
        CampaignService::new(EngineConfig::default(), HostRegistry::with_noop()).unwrap()
    }

    fn noop_spec(user: &str, name: &str) -> CampaignSpec {
        CampaignSpec::new(
            user,
            name,
            "noop",
            vec![(
                "target".into(),
                "def f():\n    x = 1\n    log_event()\n    return x\n".into(),
            )],
            "import target\ndef run(round):\n    target.f()\n".into(),
            faultdsl::predefined_models(),
        )
    }

    #[test]
    fn report_value_is_deterministic_and_complete() {
        let report = CampaignReport::from_results(
            "api-test",
            7,
            Some(4),
            &[],
            &FailureClassifier::case_study(),
        );
        let v = report_to_value(&report);
        assert_eq!(v.req("name").unwrap().as_str(), Some("api-test"));
        assert_eq!(v.req("planned_points").unwrap().as_u64(), Some(7));
        assert_eq!(v.req("covered_points").unwrap().as_u64(), Some(4));
        // Serialization is stable: the byte-identity contract.
        assert_eq!(v.pretty(), report_to_value(&report).pretty());
    }

    #[test]
    fn drive_thread_completes_submissions_end_to_end() {
        let api = ApiServer::serve("127.0.0.1:0", service(), ApiConfig::default()).unwrap();
        let addr = api.addr().to_string();
        let mut client = httpd::Client::new(&addr);
        let resp = client
            .post_json("/api/campaigns", &noop_spec("alice", "smoke").to_json())
            .unwrap();
        assert_eq!(resp.status, 201, "{}", resp.text());
        let id = jsonlite::parse(&resp.text())
            .unwrap()
            .req("id")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        loop {
            let status = client.get(&format!("/api/campaigns/{id}")).unwrap();
            assert_eq!(status.status, 200);
            let state = jsonlite::parse(&status.text())
                .unwrap()
                .req("state")
                .unwrap()
                .as_str()
                .unwrap()
                .to_string();
            if state == "completed" {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "campaign stuck in state {state}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        let report = client.get(&format!("/api/campaigns/{id}/report")).unwrap();
        assert_eq!(report.status, 200);
        let report = jsonlite::parse(&report.text()).unwrap();
        assert!(report.req("executed").unwrap().as_u64().unwrap() > 0);
        // The report was also delivered into the session history.
        let sessions = client.get("/api/sessions/alice/reports").unwrap();
        assert_eq!(sessions.status, 200);
        let v = jsonlite::parse(&sessions.text()).unwrap();
        assert_eq!(v.req("reports").unwrap().as_arr().unwrap().len(), 1);
        // Metrics expose the counters.
        let metrics = client.get("/metrics").unwrap().text();
        assert!(metrics.contains("profipy_jobs_completed 1"), "{metrics}");
        assert!(metrics.contains("profipy_cache_prepare_misses"), "{metrics}");
        api.shutdown();
    }

    #[test]
    fn idle_server_performs_no_drive_work_between_submissions() {
        let api = ApiServer::serve("127.0.0.1:0", service(), ApiConfig::default()).unwrap();
        let addr = api.addr().to_string();
        // Let the drive thread run its boot slice (empty queue) and
        // park.
        std::thread::sleep(Duration::from_millis(250));
        let settled = api.drive_calls();
        assert!(settled >= 1, "boot slice ran");
        // Idle: no submissions, so the parked loop must not pump the
        // service mutex — the drive counter stays frozen.
        std::thread::sleep(Duration::from_millis(500));
        assert_eq!(
            api.drive_calls(),
            settled,
            "idle server performed drive work"
        );
        // A submission wakes it immediately and the campaign completes.
        let mut client = httpd::Client::new(&addr);
        let resp = client
            .post_json("/api/campaigns", &noop_spec("ida", "wake").to_json())
            .unwrap();
        assert_eq!(resp.status, 201, "{}", resp.text());
        let id = jsonlite::parse(&resp.text())
            .unwrap()
            .req("id")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        loop {
            let status = client.get(&format!("/api/campaigns/{id}")).unwrap();
            let state = jsonlite::parse(&status.text())
                .unwrap()
                .req("state")
                .unwrap()
                .as_str()
                .unwrap()
                .to_string();
            if state == "completed" {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "woken campaign stuck in {state}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(api.drive_calls() > settled, "drive thread woke on submit");
        // The counter is also visible on /metrics.
        let metrics = client.get("/metrics").unwrap().text();
        assert!(metrics.contains("profipy_drive_calls_total"), "{metrics}");
        api.shutdown();
    }

    #[test]
    fn api_rejects_bad_input() {
        let api = ApiServer::serve("127.0.0.1:0", service(), ApiConfig::default()).unwrap();
        let addr = api.addr().to_string();
        let mut client = httpd::Client::new(&addr);
        // Malformed JSON.
        assert_eq!(
            client.post_json("/api/campaigns", "{oops").unwrap().status,
            400
        );
        // Valid JSON, wrong shape.
        assert_eq!(
            client.post_json("/api/campaigns", "{}").unwrap().status,
            422
        );
        // Unknown host environment.
        let mut spec = noop_spec("bob", "bad-host");
        spec.host = "mainframe".into();
        assert_eq!(
            client
                .post_json("/api/campaigns", &spec.to_json())
                .unwrap()
                .status,
            422
        );
        // Unknown job / user.
        assert_eq!(client.get("/api/campaigns/job-999").unwrap().status, 404);
        assert_eq!(
            client.get("/api/campaigns/job-999/report").unwrap().status,
            404
        );
        assert_eq!(client.get("/api/sessions/ghost/reports").unwrap().status, 404);
        // A depth bomb in the body is rejected, not recursed into.
        let bomb = format!("{}1{}", "[".repeat(5000), "]".repeat(5000));
        assert_eq!(client.post_json("/api/campaigns", &bomb).unwrap().status, 400);
        // Model upload: DSL that does not compile is refused…
        let resp = client
            .post_json(
                "/api/models",
                &Value::obj(vec![
                    ("user", Value::str("carol")),
                    ("name", Value::str("broken")),
                    ("dsl", Value::str("change { } into {")),
                ])
                .compact(),
            )
            .unwrap();
        assert_eq!(resp.status, 422, "{}", resp.text());
        // …while a valid one lands in the session.
        let resp = client
            .post_json(
                "/api/models",
                &Value::obj(vec![
                    ("user", Value::str("carol")),
                    ("name", Value::str("mfc")),
                    (
                        "model",
                        faultdsl::predefined_models().to_value(),
                    ),
                ])
                .compact(),
            )
            .unwrap();
        assert_eq!(resp.status, 201, "{}", resp.text());
        let service = api.shutdown();
        assert_eq!(
            service
                .sessions
                .get_session("carol")
                .unwrap()
                .model_names(),
            vec!["mfc".to_string()]
        );
        assert!(service.sessions.get_session("carol").unwrap().load_model("mfc").is_ok());
    }

    #[test]
    fn error_paths_have_exact_codes_and_leave_the_connection_usable() {
        // A tight body cap so an oversized upload is cheap to produce.
        let config = ApiConfig {
            http: httpd::ServerConfig {
                max_body_bytes: 1024,
                ..httpd::ServerConfig::default()
            },
            drive_batch: 8,
            local_drive: true,
        };
        let api = ApiServer::serve("127.0.0.1:0", service(), config).unwrap();
        let addr = api.addr().to_string();
        let mut client = httpd::Client::new(&addr).timeout(Duration::from_secs(10));

        // Open the keep-alive connection.
        assert_eq!(client.get("/healthz").unwrap().status, 200);

        // Oversized declared body → 413 at the HTTP layer, before the
        // body is read, and the connection is closed (the unread body
        // would desync keep-alive). The raw socket shows the exact
        // wire behaviour.
        {
            use std::io::{Read, Write};
            let mut raw = std::net::TcpStream::connect(&addr).unwrap();
            raw.write_all(b"POST /api/campaigns HTTP/1.1\r\nContent-Length: 4096\r\n\r\n")
                .unwrap();
            let mut reply = String::new();
            raw.read_to_string(&mut reply).unwrap();
            assert!(reply.starts_with("HTTP/1.1 413 "), "{reply}");
        }

        // Unknown job id → 404, connection kept alive (no close header).
        let resp = client.get("/api/campaigns/no-such-job").unwrap();
        assert_eq!(resp.status, 404);
        assert_eq!(resp.header("connection"), None);
        let resp = client.get("/api/campaigns/no-such-job/report").unwrap();
        assert_eq!(resp.status, 404);

        // Model upload whose body is raw DSL text, not JSON → 400
        // (malformed JSON), still keep-alive.
        let resp = client
            .request(
                "POST",
                "/api/models",
                Some("text/plain"),
                b"change { call(x) } into { none }",
            )
            .unwrap();
        assert_eq!(resp.status, 400, "{}", resp.text());
        assert_eq!(resp.header("connection"), None);

        // JSON-wrapped DSL that fails to parse → 422.
        let resp = client
            .post_json(
                "/api/models",
                &Value::obj(vec![
                    ("user", Value::str("dana")),
                    ("name", Value::str("bad")),
                    ("dsl", Value::str("change { unterminated")),
                ])
                .compact(),
            )
            .unwrap();
        assert_eq!(resp.status, 422, "{}", resp.text());

        // After every error above the same client keeps working — the
        // errors were responses, not connection teardowns (and the one
        // that *was* a teardown used its own socket).
        assert_eq!(client.get("/healthz").unwrap().status, 200);
        let metrics = client.get("/metrics").unwrap().text();
        assert!(metrics.contains("profipy_http_open_connections"), "{metrics}");
        api.shutdown();
    }

    #[test]
    fn healthz_and_405() {
        let api = ApiServer::serve("127.0.0.1:0", service(), ApiConfig::default()).unwrap();
        let addr = api.addr().to_string();
        let mut client = httpd::Client::new(&addr);
        let resp = client.get("/healthz").unwrap();
        assert_eq!(resp.status, 200);
        let health = jsonlite::parse(&resp.text()).unwrap();
        assert_eq!(health.req("status").unwrap().as_str(), Some("ok"));
        assert_eq!(health.req("role").unwrap().as_str(), Some("local"));
        assert_eq!(
            health.req("version").unwrap().as_str(),
            Some(env!("CARGO_PKG_VERSION"))
        );
        assert!(health.req("uptime_seconds").unwrap().as_u64().is_some());
        assert!(matches!(health.req("error").unwrap(), Value::Null));
        assert_eq!(
            client
                .request("DELETE", "/api/campaigns", None, &[])
                .unwrap()
                .status,
            405
        );
        api.shutdown();
    }
}
