//! The campaign orchestration engine: submit → queue → schedule →
//! checkpoint → report, with crash recovery and cross-campaign reuse.
//!
//! ```text
//!  submit(spec) ─▶ JobQueue (persistent, fair)            poll(id)
//!                      │ drive()                             ▲
//!                      ▼                                     │
//!               prepare: MutantCache (parse/scan/mutants) ───┤
//!                      │                                     │
//!                      ▼                                     │
//!               scheduler::interleave ─▶ ParallelExecutor    │
//!                      │         (one pool, all campaigns)   │
//!                      ▼                                     │
//!               CheckpointLog (per campaign, incremental) ───┘
//! ```
//!
//! `drive` is re-entrant and budget-limited: killing the process (or
//! exhausting the experiment budget) mid-campaign loses nothing — the
//! next `drive` on a reopened engine resumes from the checkpoints and
//! produces the identical result set.

use crate::cache::{CacheStats, MutantCache};
use crate::checkpoint::CheckpointLog;
use crate::queue::{JobQueue, JobState};
use crate::scheduler::{self, RunTelemetry, ScheduledCampaign};
use crate::spec::CampaignSpec;
use injector::InjectionPoint;
use profipy::analysis::FailureClassifier;
use profipy::report::CampaignReport;
use profipy::workflow::HostFactory;
use profipy::{ExperimentResult, InjectionPlan};
use pysrc::Module;
use sandbox::{ParallelExecutor, SourceFile};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;
use trace::TraceStore;

/// The engine's latency histograms. Instruments are created detached
/// (an engine works without any registry) and attached to a server's
/// [`obs::Registry`] via [`EngineMetrics::register_into`] — typically
/// by `SharedService::new`.
pub struct EngineMetrics {
    /// Queue wait: submit/requeue → taken by `drive`/`checkout_next`.
    pub queue_wait_seconds: obs::Histogram,
    /// Mutant-cache prepare wall time (parse, scan, plan, render).
    pub prepare_seconds: obs::Histogram,
    /// Per-experiment execution wall time.
    pub experiment_seconds: obs::Histogram,
    /// Disk-tier cache writes that failed (best-effort writes, but a
    /// silent failure hides a full disk behind "why does every restart
    /// re-scan?").
    pub cache_write_failures: obs::Counter,
}

impl EngineMetrics {
    fn new() -> EngineMetrics {
        EngineMetrics {
            queue_wait_seconds: obs::Histogram::detached(obs::WAIT_BUCKETS),
            prepare_seconds: obs::Histogram::detached(obs::LATENCY_BUCKETS),
            experiment_seconds: obs::Histogram::detached(obs::LATENCY_BUCKETS),
            cache_write_failures: obs::Counter::detached(),
        }
    }

    /// Registers the engine's histograms into `registry`.
    pub fn register_into(&self, registry: &obs::Registry) {
        registry.register_histogram(
            "campaign_queue_wait_seconds",
            "Time campaigns waited in the job queue before being taken, in seconds.",
            &self.queue_wait_seconds,
        );
        registry.register_histogram(
            "campaign_prepare_seconds",
            "Mutant-cache campaign preparation time (parse/scan/plan/render), in seconds.",
            &self.prepare_seconds,
        );
        registry.register_histogram(
            "campaign_experiment_seconds",
            "Per-experiment execution time, in seconds.",
            &self.experiment_seconds,
        );
        registry.register_counter(
            "campaign_cache_write_failures_total",
            "Disk-tier cache writes that failed (cache stays correct; the write is retried on the next scan).",
            &self.cache_write_failures,
        );
    }
}

/// Engine-level errors.
#[derive(Debug)]
pub struct EngineError {
    /// Description.
    pub message: String,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "engine error: {}", self.message)
    }
}

impl std::error::Error for EngineError {}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> EngineError {
        EngineError {
            message: format!("I/O: {e}"),
        }
    }
}

/// Named host environments — specs reference hosts by name since
/// factories are code, not data.
#[derive(Default)]
pub struct HostRegistry {
    factories: BTreeMap<String, HostFactory>,
}

impl HostRegistry {
    /// An empty registry.
    pub fn new() -> HostRegistry {
        HostRegistry::default()
    }

    /// Registers a host environment under a name (builder-style).
    pub fn with(mut self, name: &str, factory: HostFactory) -> HostRegistry {
        self.factories.insert(name.to_string(), factory);
        self
    }

    /// Registers a host environment under a name.
    pub fn register(&mut self, name: &str, factory: HostFactory) {
        self.factories.insert(name.to_string(), factory);
    }

    /// Looks a host up.
    pub fn get(&self, name: &str) -> Option<HostFactory> {
        self.factories.get(name).cloned()
    }

    /// A registry containing only the no-op host (`"noop"`).
    pub fn with_noop() -> HostRegistry {
        HostRegistry::new().with(
            "noop",
            Arc::new(|_| std::rc::Rc::new(pyrt::NoopHost::new()) as std::rc::Rc<dyn pyrt::HostApi>),
        )
    }
}

/// What `poll` reports about a job.
#[derive(Clone, Debug)]
pub struct JobStatus {
    /// Job id.
    pub id: String,
    /// Queue state.
    pub state: JobState,
    /// Submitting user.
    pub user: String,
    /// Campaign name.
    pub name: String,
    /// Experiments recorded in the checkpoint so far.
    pub completed_experiments: usize,
    /// Planned experiment count, once known (set after the first
    /// `drive` touches the job).
    pub total_experiments: Option<usize>,
    /// Fatal error, if the job failed.
    pub error: Option<String>,
}

/// A campaign checked out of the queue for external (distributed)
/// execution: everything a coordinator needs to farm the pending
/// experiments out to remote workers and to record their results.
///
/// Produced by [`CampaignEngine::checkout_next`]; must be returned via
/// [`CampaignEngine::checkin`] (completing or requeueing the job) —
/// dropping it instead leaves the job `Running` until the engine is
/// reopened, exactly like a crash would.
pub struct CheckedOutCampaign {
    /// The queue job id.
    pub id: String,
    /// The campaign definition.
    pub spec: CampaignSpec,
    /// Planned experiment count (checkpointed results included).
    pub total: usize,
    /// The parsed fault-free target modules — required to serialize
    /// injection points portably for the wire.
    pub modules: Arc<Vec<Module>>,
    /// Experiments still to run: `(point, rendered container sources)`.
    pub pending: Vec<(InjectionPoint, Arc<Vec<SourceFile>>)>,
    /// The campaign's checkpoint log; the caller records every remote
    /// result here (durably, completion order).
    pub checkpoint: CheckpointLog,
}

/// What one `drive` call did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DriveSummary {
    /// Campaigns touched this drive.
    pub campaigns: usize,
    /// Experiments executed this drive.
    pub experiments: usize,
    /// Campaigns that reached completion this drive.
    pub completed: usize,
}

/// Engine construction options.
#[derive(Default)]
pub struct EngineConfig {
    /// Persistence root (`None` = fully in-memory engine).
    pub data_dir: Option<PathBuf>,
    /// The worker pool configuration.
    pub executor: ParallelExecutor,
}

/// The orchestration engine.
pub struct CampaignEngine {
    queue: JobQueue,
    cache: MutantCache,
    registry: HostRegistry,
    executor: ParallelExecutor,
    checkpoint_dir: Option<PathBuf>,
    /// In-memory checkpoint store (`data_dir == None`): job id →
    /// (spec hash, results so far).
    mem_logs: BTreeMap<String, (u64, Vec<ExperimentResult>)>,
    reports: BTreeMap<String, CampaignReport>,
    totals: BTreeMap<String, usize>,
    classifier: FailureClassifier,
    metrics: EngineMetrics,
    /// Span sink for fleet-wide tracing (attached by the service
    /// layer; a bare engine runs untraced).
    trace: Option<Arc<TraceStore>>,
    /// Queue-wait start marks: job id → submit/requeue instant.
    /// In-memory only — waits across a process restart are not
    /// observable, and the histogram is per-process anyway.
    waiting_since: BTreeMap<String, Instant>,
}

impl CampaignEngine {
    /// Creates an engine. With a `data_dir`, the queue, checkpoints,
    /// and scan cache all persist under it (`queue/`, `checkpoints/`,
    /// `cache/`); reopening the same directory resumes all state.
    ///
    /// # Errors
    ///
    /// I/O errors opening the persistent state.
    pub fn new(config: EngineConfig, registry: HostRegistry) -> Result<CampaignEngine, EngineError> {
        let (queue, cache, checkpoint_dir) = match &config.data_dir {
            Some(dir) => (
                JobQueue::open(&dir.join("queue"))?,
                MutantCache::open(&dir.join("cache"))?,
                Some(dir.join("checkpoints")),
            ),
            None => (JobQueue::in_memory(), MutantCache::in_memory(), None),
        };
        let metrics = EngineMetrics::new();
        let mut cache = cache;
        cache.attach_write_failures(metrics.cache_write_failures.clone());
        Ok(CampaignEngine {
            queue,
            cache,
            registry,
            executor: config.executor,
            checkpoint_dir,
            mem_logs: BTreeMap::new(),
            reports: BTreeMap::new(),
            totals: BTreeMap::new(),
            classifier: FailureClassifier::case_study(),
            metrics,
            trace: None,
            waiting_since: BTreeMap::new(),
        })
    }

    /// The engine's latency histograms (register them into an
    /// [`obs::Registry`] to expose them on `/metrics`).
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// Attaches a span store; from here on `prepare` and experiment
    /// execution record spans keyed by job id.
    pub fn set_trace_store(&mut self, store: Arc<TraceStore>) {
        self.trace = Some(store);
    }

    /// Convenience: persistent engine rooted at `dir`.
    ///
    /// # Errors
    ///
    /// I/O errors opening the persistent state.
    pub fn open(dir: &Path, registry: HostRegistry) -> Result<CampaignEngine, EngineError> {
        CampaignEngine::new(
            EngineConfig {
                data_dir: Some(dir.to_path_buf()),
                executor: ParallelExecutor::default(),
            },
            registry,
        )
    }

    /// Submits a campaign. The spec is validated shallowly (known
    /// host) and persisted; heavy validation happens at run time.
    ///
    /// # Errors
    ///
    /// Unknown host or queue I/O failure.
    pub fn submit(&mut self, spec: CampaignSpec) -> Result<String, EngineError> {
        if self.registry.get(&spec.host).is_none() {
            return Err(EngineError {
                message: format!("unknown host environment '{}'", spec.host),
            });
        }
        let id = self.queue.submit(spec)?;
        self.waiting_since.insert(id.clone(), Instant::now());
        Ok(id)
    }

    /// Observes the queue-wait histogram for a job just taken off the
    /// queue.
    fn note_taken(&mut self, id: &str) {
        if let Some(since) = self.waiting_since.remove(id) {
            self.metrics.queue_wait_seconds.observe_duration(since.elapsed());
        }
    }

    /// The status of a job, or `None` for an unknown id.
    pub fn poll(&self, id: &str) -> Option<JobStatus> {
        let job = self.queue.get(id)?;
        let completed = self.peek_results(id, &job.spec).len();
        Some(JobStatus {
            id: job.id.clone(),
            state: job.state,
            user: job.spec.user.clone(),
            name: job.spec.name.clone(),
            completed_experiments: completed,
            total_experiments: self.totals.get(id).copied(),
            error: job.error.clone(),
        })
    }

    /// All job statuses for one user, oldest first.
    pub fn user_jobs(&self, user: &str) -> Vec<JobStatus> {
        let mut ids: Vec<&crate::queue::QueuedJob> = self
            .queue
            .jobs()
            .filter(|j| j.spec.user == user)
            .collect();
        ids.sort_by_key(|j| j.seq);
        ids.iter()
            .filter_map(|j| self.poll(&j.id))
            .collect()
    }

    /// Cancels a queued job.
    ///
    /// # Errors
    ///
    /// Queue I/O failure.
    pub fn cancel(&mut self, id: &str) -> Result<bool, EngineError> {
        Ok(self.queue.cancel(id)?)
    }

    /// Cache counters (scan/parse/mutant hits and misses).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Jobs currently waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.queue
            .jobs()
            .filter(|j| j.state == JobState::Queued)
            .count()
    }

    /// Job counts per lifecycle state (monitoring surface).
    pub fn job_state_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for job in self.queue.jobs() {
            *counts.entry(job.state.as_str()).or_insert(0) += 1;
        }
        counts
    }

    /// Ids of all completed jobs.
    pub fn completed_ids(&self) -> Vec<String> {
        self.queue
            .jobs()
            .filter(|j| j.state == JobState::Completed)
            .map(|j| j.id.clone())
            .collect()
    }

    /// The completed campaign's report, rebuilding it from the
    /// checkpoint if this engine instance never saw the campaign run
    /// (e.g. after a restart).
    pub fn report(&mut self, id: &str) -> Option<CampaignReport> {
        if let Some(report) = self.reports.get(id) {
            return Some(report.clone());
        }
        let job = self.queue.get(id)?;
        if job.state != JobState::Completed {
            return None;
        }
        let spec = job.spec.clone();
        let results = self.peek_results(id, &spec);
        let planned = self.totals.get(id).copied().unwrap_or(results.len());
        let report = Self::build_report(&spec, planned, None, results, &self.classifier);
        self.reports.insert(id.to_string(), report.clone());
        Some(report)
    }

    /// Runs queued campaigns. `budget` caps the number of experiments
    /// executed this call (`None` = run everything): the lever for
    /// incremental pumping and for the kill-and-resume tests. Campaigns
    /// left unfinished by the budget return to the queue.
    ///
    /// # Errors
    ///
    /// Checkpoint I/O failures; per-campaign setup failures mark only
    /// that job failed.
    pub fn drive(&mut self, budget: Option<usize>) -> Result<DriveSummary, EngineError> {
        let mut summary = DriveSummary::default();
        let mut prepared: Vec<ScheduledCampaign> = Vec::new();
        let mut prepared_ids: Vec<String> = Vec::new();
        let mut pending_total = 0usize;
        // Take campaigns until the queue is drained — or, under a
        // budget, until we already hold enough pending experiments to
        // fill it (preparing more would be wasted work this drive).
        while budget.is_none_or(|b| pending_total < b) {
            let Some(id) = self.queue.take_next()? else {
                break;
            };
            self.note_taken(&id);
            let spec = self.queue.get(&id).expect("taken job exists").spec.clone();
            match self.prepare(&id, &spec) {
                Ok(campaign) => {
                    pending_total += campaign.pending.len();
                    prepared.push(campaign);
                    prepared_ids.push(id);
                }
                Err(e) => {
                    self.queue.fail(&id, &e.message)?;
                }
            }
        }
        summary.campaigns = prepared.len();
        let jobs = scheduler::interleave(&mut prepared, budget);
        let telemetry = RunTelemetry {
            experiment_seconds: &self.metrics.experiment_seconds,
            trace: self.trace.as_deref().map(|store| (store, &prepared_ids[..])),
        };
        let run_outcome =
            scheduler::run_interleaved(&self.executor, jobs, &mut prepared, Some(&telemetry));
        if let Ok(executed) = &run_outcome {
            summary.experiments = *executed;
        }
        // Bookkeeping runs even if recording failed mid-drive: every
        // taken job must leave the Running state, or it is stranded
        // until the engine is reopened.
        for (id, campaign) in prepared_ids.iter().zip(prepared) {
            let spec = self.queue.get(id).expect("job exists").spec.clone();
            let total = self.totals.get(id).copied().unwrap_or(0);
            let spec_hash = campaign.checkpoint.spec_hash();
            let results = campaign.checkpoint.into_results();
            let done = results.len();
            if self.checkpoint_dir.is_none() {
                // Carry in-memory checkpoints across drive calls.
                self.mem_logs
                    .insert(id.clone(), (spec_hash, results.clone()));
            }
            if done >= total && run_outcome.is_ok() {
                let report =
                    Self::build_report(&spec, total, None, results, &self.classifier);
                self.reports.insert(id.clone(), report);
                self.queue.complete(id)?;
                summary.completed += 1;
            } else {
                // Budget exhausted mid-campaign (or recording failed):
                // back to the queue; the checkpoint keeps what was
                // durably recorded.
                self.queue.requeue(id)?;
                self.waiting_since.insert(id.clone(), Instant::now());
            }
        }
        run_outcome?;
        Ok(summary)
    }

    /// Checks the next queued campaign out of the queue for **external
    /// execution** — the distributed-fleet analogue of `drive`. The
    /// campaign is prepared exactly like a local drive would (cache
    /// reuse, coverage pruning, mutation failures recorded into the
    /// checkpoint), but instead of running the pending experiments this
    /// hands them — points plus rendered container sources — to the
    /// caller. The job stays `Running` until [`CampaignEngine::checkin`]
    /// returns it.
    ///
    /// A campaign whose preparation fails is marked failed and the next
    /// queued one is tried; `None` means the queue is drained.
    ///
    /// # Errors
    ///
    /// Queue/checkpoint I/O failures.
    pub fn checkout_next(&mut self) -> Result<Option<CheckedOutCampaign>, EngineError> {
        loop {
            let Some(id) = self.queue.take_next()? else {
                return Ok(None);
            };
            self.note_taken(&id);
            let spec = self.queue.get(&id).expect("taken job exists").spec.clone();
            match self.prepare(&id, &spec) {
                Ok(campaign) => {
                    let total = self.totals.get(&id).copied().unwrap_or(0);
                    return Ok(Some(CheckedOutCampaign {
                        id,
                        spec,
                        total,
                        modules: Arc::new(campaign.workflow.modules().to_vec()),
                        pending: campaign.pending,
                        checkpoint: campaign.checkpoint,
                    }));
                }
                Err(e) => {
                    self.queue.fail(&id, &e.message)?;
                }
            }
        }
    }

    /// Returns a checked-out campaign. Every result the caller recorded
    /// into the campaign's checkpoint is durable at this point; if all
    /// planned experiments are in, the job completes and its report is
    /// built through the **same code path as `drive`** (the distributed
    /// report is byte-identical to a single-node run by construction).
    /// Otherwise the job goes back to the queue and a later checkout
    /// resumes from the checkpoint.
    ///
    /// Returns whether the campaign completed.
    ///
    /// # Errors
    ///
    /// Queue I/O failures.
    pub fn checkin(&mut self, campaign: CheckedOutCampaign) -> Result<bool, EngineError> {
        let CheckedOutCampaign {
            id,
            spec,
            total,
            checkpoint,
            ..
        } = campaign;
        let spec_hash = checkpoint.spec_hash();
        let results = checkpoint.into_results();
        let done = results.len();
        if self.checkpoint_dir.is_none() {
            // Carry in-memory checkpoints across checkouts, exactly as
            // `drive` does across drives.
            self.mem_logs.insert(id.clone(), (spec_hash, results.clone()));
        }
        if done >= total {
            let report = Self::build_report(&spec, total, None, results, &self.classifier);
            self.reports.insert(id.clone(), report);
            self.queue.complete(&id)?;
            Ok(true)
        } else {
            self.queue.requeue(&id)?;
            self.waiting_since.insert(id, Instant::now());
            Ok(false)
        }
    }

    /// Builds everything one campaign needs to be scheduled, reusing
    /// the cross-campaign cache for parses, scans, coverage, and
    /// mutants.
    fn prepare(&mut self, id: &str, spec: &CampaignSpec) -> Result<ScheduledCampaign, EngineError> {
        let prepare_started = Instant::now();
        if let Some(store) = &self.trace {
            store.begin(id);
        }
        let host = self.registry.get(&spec.host).ok_or_else(|| EngineError {
            message: format!("unknown host environment '{}'", spec.host),
        })?;
        let key = spec.cache_key();

        // Parse (or reuse) the target modules.
        let mut workflow = match self.cache.modules(key) {
            Some(modules) => spec
                .build_workflow_with_modules(modules.as_ref().clone(), host, self.executor.clone()),
            None => spec.build_workflow(host, self.executor.clone()),
        }
        .map_err(|e| EngineError { message: e.message })?;
        self.cache
            .store_modules(key, Arc::new(workflow.modules().to_vec()));

        // Reuse (or memoize) the prepared interpreter program, so the
        // unchanged workload and fault-free modules are name-resolved
        // exactly once across campaigns sharing this cache key — on a
        // hit the workflow's own (lazy) prepare step never runs.
        let adopted = match self.cache.prepared_program(key) {
            Some(prepared) => workflow.set_prepared_program(&prepared),
            None => false,
        };
        if !adopted {
            // Miss — or a misaligned cached artifact (should not happen
            // for a content-keyed cache, but never leave it poisoned):
            // store the freshly resolved program.
            self.cache
                .store_prepared_program(key, Arc::new(workflow.prepared_program().clone()));
        }
        let workflow = workflow;

        // Scan (or reuse the scan).
        let points: Arc<Vec<InjectionPoint>> = match self.cache.points(key, workflow.modules()) {
            Some(points) => points,
            None => {
                let scanned = Arc::new(workflow.scan());
                self.cache
                    .store_points(key, scanned.clone(), workflow.modules());
                scanned
            }
        };

        // Plan, with optional coverage pruning. Coverage is cached
        // under its own key: unlike the scan, the fault-free run also
        // depends on host, seed, setup, and round budgets.
        let mut plan = InjectionPlan::build(&points, &spec.filter.to_filter(), spec.seed);
        if spec.prune_by_coverage {
            let coverage_key = spec.coverage_key();
            let covered = match self.cache.covered(coverage_key) {
                Some(covered) => covered,
                None => {
                    let run = workflow
                        .coverage_run(&points)
                        .map_err(|e| EngineError { message: e.message })?;
                    let covered = Arc::new(run);
                    self.cache.store_covered(coverage_key, covered.clone());
                    covered
                }
            };
            plan = plan.prune_by_coverage(&covered);
        }
        self.totals.insert(id.to_string(), plan.len());

        // Checkpoint: resume point for this exact spec.
        let mut checkpoint = self.take_checkpoint(id, spec)?;
        let done = checkpoint.completed_ids();

        // Render (or reuse) the mutants for the pending experiments.
        let workflow = Arc::new(workflow);
        let mut pending: Vec<(InjectionPoint, Arc<Vec<SourceFile>>)> = Vec::new();
        for point in &plan.entries {
            if done.contains(&point.id) {
                continue;
            }
            let sources = match self.cache.mutant(key, point.id) {
                Some(sources) => sources,
                None => match workflow.mutant_sources(point) {
                    Ok(rendered) => {
                        let rendered = Arc::new(rendered);
                        self.cache.store_mutant(key, point.id, rendered.clone());
                        rendered
                    }
                    Err(e) => {
                        // Unmutatable point: record the deploy failure
                        // directly (no container needed) and move on.
                        let result = Self::mutation_failure(point, &e.message);
                        checkpoint.record(&result)?;
                        continue;
                    }
                },
            };
            pending.push((point.clone(), sources));
        }
        let prepare_elapsed = prepare_started.elapsed();
        self.metrics.prepare_seconds.observe_duration(prepare_elapsed);
        if let Some(store) = &self.trace {
            store.record_phase(id, "engine", "prepare", prepare_started, prepare_elapsed, false);
        }
        Ok(ScheduledCampaign {
            workflow,
            pending,
            checkpoint,
        })
    }

    /// An appendable checkpoint for a campaign about to run.
    fn take_checkpoint(&mut self, id: &str, spec: &CampaignSpec) -> Result<CheckpointLog, EngineError> {
        let hash = spec.content_hash();
        match &self.checkpoint_dir {
            Some(dir) => Ok(CheckpointLog::open(
                &dir.join(format!("{id}.jsonl")),
                hash,
            )?),
            None => {
                let seeded = match self.mem_logs.get(id) {
                    Some((h, results)) if *h == hash => results.clone(),
                    _ => Vec::new(),
                };
                Ok(CheckpointLog::in_memory_with(hash, seeded))
            }
        }
    }

    /// Read-only view of a campaign's recorded results.
    fn peek_results(&self, id: &str, spec: &CampaignSpec) -> Vec<ExperimentResult> {
        let hash = spec.content_hash();
        match &self.checkpoint_dir {
            Some(dir) => CheckpointLog::peek(&dir.join(format!("{id}.jsonl")), hash),
            None => match self.mem_logs.get(id) {
                Some((h, results)) if *h == hash => results.clone(),
                _ => Vec::new(),
            },
        }
    }

    fn mutation_failure(point: &InjectionPoint, message: &str) -> ExperimentResult {
        use sandbox::{RoundOutcome, RoundStatus};
        let not_run = RoundOutcome {
            status: RoundStatus::NotRun,
            duration: 0.0,
        };
        ExperimentResult {
            point_id: point.id,
            spec_name: point.spec_name.clone(),
            module: point.module.clone(),
            scope: point.scope.clone(),
            round1: not_run.clone(),
            round2: not_run,
            logs: Vec::new(),
            stdout: String::new(),
            stderr: String::new(),
            duration: 0.0,
            deploy_error: Some(message.to_string()),
            events: Vec::new(),
        }
    }

    fn build_report(
        spec: &CampaignSpec,
        planned: usize,
        covered: Option<usize>,
        mut results: Vec<ExperimentResult>,
        classifier: &FailureClassifier,
    ) -> CampaignReport {
        // Checkpoints are completion-ordered; reports are presented in
        // plan order.
        results.sort_by_key(|r| r.point_id);
        CampaignReport::from_results(&spec.name, planned, covered, &results, classifier)
    }

    /// The results recorded so far for a job (plan order), e.g. for a
    /// partial-progress view.
    pub fn results(&self, id: &str) -> Vec<ExperimentResult> {
        let Some(job) = self.queue.get(id) else {
            return Vec::new();
        };
        let mut results = self.peek_results(id, &job.spec);
        results.sort_by_key(|r| r.point_id);
        results
    }
}
