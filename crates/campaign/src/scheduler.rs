//! The multi-campaign scheduler.
//!
//! Takes the pending experiments of several prepared campaigns,
//! interleaves them round-robin into a single job stream, and drains
//! that stream through `sandbox::ParallelExecutor::run_stream` — one
//! worker pool serving *all* queued campaigns at once (paper §IV-B runs
//! one campaign in N−1 containers; the orchestration engine keeps those
//! containers busy across campaign boundaries).
//!
//! Results are dispatched back to each campaign's checkpoint log on the
//! scheduler thread as they complete, so a crash at any instant loses
//! at most the experiments still in flight.

use crate::checkpoint::CheckpointLog;
use injector::InjectionPoint;
use profipy::workflow::Workflow;
use profipy::ExperimentResult;
use sandbox::{ParallelExecutor, SourceFile};
use std::collections::VecDeque;
use std::io;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Optional per-experiment telemetry threaded through
/// [`run_interleaved`]: the execution-latency histogram plus (when the
/// engine has a trace store attached) span recording keyed by the
/// campaigns' queue-job ids. Both sinks are lock-light and `Sync`, so
/// observations happen on the executor's worker threads.
pub struct RunTelemetry<'a> {
    /// `campaign_experiment_seconds`.
    pub experiment_seconds: &'a obs::Histogram,
    /// `(store, job ids)` — ids indexed by `ExperimentJob::campaign`.
    pub trace: Option<(&'a trace::TraceStore, &'a [String])>,
}

/// One schedulable experiment: everything a worker needs, with no
/// shared mutable state.
pub struct ExperimentJob {
    /// Index of the owning campaign in the scheduler's slice.
    pub campaign: usize,
    /// The injection point to exercise.
    pub point: InjectionPoint,
    /// Pre-rendered container sources (from the mutant cache).
    pub sources: Arc<Vec<SourceFile>>,
    /// The owning campaign's workflow.
    pub workflow: Arc<Workflow>,
}

/// A campaign ready for scheduling.
pub struct ScheduledCampaign {
    /// The workflow (shared with every job of this campaign).
    pub workflow: Arc<Workflow>,
    /// Pending experiments: `(point, rendered sources)`.
    pub pending: Vec<(InjectionPoint, Arc<Vec<SourceFile>>)>,
    /// Where completed results are recorded.
    pub checkpoint: CheckpointLog,
}

/// Round-robin interleaving: campaign 0's first pending experiment,
/// campaign 1's first, …, campaign 0's second, and so on. `budget`
/// caps the total number of jobs emitted (`None` = all).
pub fn interleave(campaigns: &mut [ScheduledCampaign], budget: Option<usize>) -> VecDeque<ExperimentJob> {
    let mut jobs = VecDeque::new();
    let budget = budget.unwrap_or(usize::MAX);
    let mut iters: Vec<_> = campaigns
        .iter_mut()
        .enumerate()
        .map(|(i, c)| (i, c.workflow.clone(), std::mem::take(&mut c.pending).into_iter()))
        .collect();
    'outer: loop {
        let mut emitted_any = false;
        for (campaign, workflow, iter) in &mut iters {
            if let Some((point, sources)) = iter.next() {
                if jobs.len() >= budget {
                    break 'outer;
                }
                jobs.push_back(ExperimentJob {
                    campaign: *campaign,
                    point,
                    sources,
                    workflow: workflow.clone(),
                });
                emitted_any = true;
            }
        }
        if !emitted_any {
            break;
        }
    }
    jobs
}

/// Drains the job stream through the executor, checkpointing each
/// result into its campaign's log as it completes. Returns the number
/// of experiments executed.
///
/// # Errors
///
/// The first checkpoint I/O error (execution stops being recorded at
/// that point, so the error is fatal for the drive).
pub fn run_interleaved(
    executor: &ParallelExecutor,
    jobs: VecDeque<ExperimentJob>,
    campaigns: &mut [ScheduledCampaign],
    telemetry: Option<&RunTelemetry<'_>>,
) -> io::Result<usize> {
    let total = jobs.len();
    let stream = Mutex::new(jobs);
    let mut io_error: Option<io::Error> = None;
    let mut executed = 0usize;
    executor.run_stream(
        total,
        &stream,
        |job: ExperimentJob| {
            let started = Instant::now();
            let result = job
                .workflow
                .run_experiment_with_sources(&job.point, &job.sources);
            if let Some(t) = telemetry {
                let elapsed = started.elapsed();
                t.experiment_seconds.observe_duration(elapsed);
                if let Some((store, ids)) = t.trace {
                    if let Some(id) = ids.get(job.campaign) {
                        store.record_phase(
                            id,
                            "engine",
                            &format!("execute #{}", job.point.id),
                            started,
                            elapsed,
                            result.failed_round1(),
                        );
                    }
                }
            }
            (job.campaign, result)
        },
        |(campaign, result): (usize, ExperimentResult)| {
            executed += 1;
            if io_error.is_none() {
                if let Err(e) = campaigns[campaign].checkpoint.record(&result) {
                    io_error = Some(e);
                }
            }
        },
    );
    match io_error {
        Some(e) => Err(e),
        None => Ok(executed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(id: u64) -> InjectionPoint {
        use pysrc::ast::NodeId;
        use pysrc::error::Span;
        InjectionPoint {
            id,
            spec_name: "S".into(),
            module: "m".into(),
            scope: "f".into(),
            span: Span::default(),
            start_stmt_id: NodeId::DUMMY,
            window_len: 1,
            core_ids: vec![],
        }
    }

    fn campaign_with(points: &[u64]) -> ScheduledCampaign {
        // A tiny real workflow (never executed by `interleave` tests).
        let workflow = Workflow::new(
            vec![("m".into(), "pass\n".into())],
            "def run(round):\n    pass\n".into(),
            faultdsl::campaign_a_model(),
            Arc::new(|_| std::rc::Rc::new(pyrt::NoopHost::new()) as std::rc::Rc<dyn pyrt::HostApi>),
            Default::default(),
        )
        .unwrap();
        ScheduledCampaign {
            workflow: Arc::new(workflow),
            pending: points
                .iter()
                .map(|&id| (point(id), Arc::new(Vec::new())))
                .collect(),
            checkpoint: CheckpointLog::in_memory(0),
        }
    }

    #[test]
    fn interleaving_alternates_campaigns() {
        let mut campaigns = vec![campaign_with(&[1, 2, 3]), campaign_with(&[10, 20])];
        let jobs = interleave(&mut campaigns, None);
        let order: Vec<(usize, u64)> = jobs.iter().map(|j| (j.campaign, j.point.id)).collect();
        assert_eq!(
            order,
            vec![(0, 1), (1, 10), (0, 2), (1, 20), (0, 3)],
            "round-robin across campaigns"
        );
    }

    #[test]
    fn budget_caps_total_jobs() {
        let mut campaigns = vec![campaign_with(&[1, 2, 3]), campaign_with(&[10, 20])];
        let jobs = interleave(&mut campaigns, Some(3));
        assert_eq!(jobs.len(), 3);
        let order: Vec<(usize, u64)> = jobs.iter().map(|j| (j.campaign, j.point.id)).collect();
        assert_eq!(order, vec![(0, 1), (1, 10), (0, 2)]);
    }

    #[test]
    fn empty_campaigns_produce_no_jobs() {
        let mut campaigns = vec![campaign_with(&[])];
        assert!(interleave(&mut campaigns, None).is_empty());
    }
}
