//! Serializable campaign specifications — everything needed to rebuild
//! and re-run a campaign after a crash or on another node, plus the
//! stable content hashes that key the cross-campaign cache.
//!
//! A [`CampaignSpec`] is the persistent analogue of
//! `profipy::case_study::Campaign`: target sources, workload, fault
//! model, plan filter, and execution knobs. The host environment is
//! referenced *by name* (resolved through the engine's host registry),
//! since host factories are code, not data.

use faultdsl::FaultModel;
use injector::MutationMode;
use jsonlite::Value;
use profipy::workflow::{HostFactory, Workflow, WorkflowConfig, WorkflowError};
use profipy::PlanFilter;
use sandbox::ParallelExecutor;

/// Serializable mirror of [`PlanFilter`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FilterSpec {
    /// Module globs (empty = all).
    pub modules: Vec<String>,
    /// Scope globs (empty = all).
    pub scopes: Vec<String>,
    /// Spec names (empty = all).
    pub specs: Vec<String>,
    /// Random sample cap (0 = no limit).
    pub sample: usize,
}

impl FilterSpec {
    /// Converts to the executable filter.
    pub fn to_filter(&self) -> PlanFilter {
        PlanFilter {
            modules: self.modules.clone(),
            scopes: self.scopes.clone(),
            specs: self.specs.clone(),
            sample: self.sample,
        }
    }

    /// Captures an executable filter.
    pub fn from_filter(filter: &PlanFilter) -> FilterSpec {
        FilterSpec {
            modules: filter.modules.clone(),
            scopes: filter.scopes.clone(),
            specs: filter.specs.clone(),
            sample: filter.sample,
        }
    }

    fn to_value(&self) -> Value {
        let strs = |items: &[String]| Value::Arr(items.iter().map(Value::str).collect());
        Value::obj(vec![
            ("modules", strs(&self.modules)),
            ("scopes", strs(&self.scopes)),
            ("specs", strs(&self.specs)),
            ("sample", Value::UInt(self.sample as u64)),
        ])
    }

    fn from_value(v: &Value) -> Result<FilterSpec, String> {
        let strs = |key: &str| -> Result<Vec<String>, String> {
            v.req(key)?
                .as_arr()
                .ok_or_else(|| format!("filter '{key}' must be an array"))?
                .iter()
                .map(|s| {
                    s.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("filter '{key}' entries must be strings"))
                })
                .collect()
        };
        Ok(FilterSpec {
            modules: strs("modules")?,
            scopes: strs("scopes")?,
            specs: strs("specs")?,
            sample: v
                .req("sample")?
                .as_u64()
                .ok_or("filter 'sample' must be a u64")? as usize,
        })
    }
}

/// Serializable mirror of the executor knobs. The I/O cap uses
/// `None` = unlimited, keeping the in-memory `usize::MAX` sentinel out
/// of stored configs (see `ParallelExecutor::io_limit`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecutorSpec {
    /// CPU cores of the execution host.
    pub cpu_cores: usize,
    /// Total container memory budget (MB).
    pub mem_mb_total: u64,
    /// Per-container memory footprint (MB).
    pub mem_mb_per_container: u64,
    /// I/O cap (`None` = unlimited).
    pub io_limit: Option<usize>,
}

impl ExecutorSpec {
    /// Captures an executor's configuration.
    pub fn from_executor(ex: &ParallelExecutor) -> ExecutorSpec {
        ExecutorSpec {
            cpu_cores: ex.cpu_cores,
            mem_mb_total: ex.mem_mb_total,
            mem_mb_per_container: ex.mem_mb_per_container,
            io_limit: ex.io_limit(),
        }
    }

    /// Rebuilds the executor.
    pub fn to_executor(&self) -> ParallelExecutor {
        let mut ex = ParallelExecutor::new(self.cpu_cores);
        ex.mem_mb_total = self.mem_mb_total;
        ex.mem_mb_per_container = self.mem_mb_per_container;
        ex.set_io_limit(self.io_limit);
        ex
    }

    /// The executor spec as a JSON value.
    pub fn to_value(&self) -> Value {
        Value::obj(vec![
            ("cpu_cores", Value::UInt(self.cpu_cores as u64)),
            ("mem_mb_total", Value::UInt(self.mem_mb_total)),
            (
                "mem_mb_per_container",
                Value::UInt(self.mem_mb_per_container),
            ),
            (
                "io_limit",
                match self.io_limit {
                    Some(n) => Value::UInt(n as u64),
                    None => Value::Null,
                },
            ),
        ])
    }

    /// Reads an executor spec back from a JSON value.
    ///
    /// # Errors
    ///
    /// Describes the malformed field.
    pub fn from_value(v: &Value) -> Result<ExecutorSpec, String> {
        let io_limit = match v.req("io_limit")? {
            Value::Null => None,
            other => Some(
                other
                    .as_u64()
                    .ok_or("executor 'io_limit' must be a u64 or null")?
                    as usize,
            ),
        };
        Ok(ExecutorSpec {
            cpu_cores: v
                .req("cpu_cores")?
                .as_u64()
                .ok_or("executor 'cpu_cores' must be a u64")? as usize,
            mem_mb_total: v
                .req("mem_mb_total")?
                .as_u64()
                .ok_or("executor 'mem_mb_total' must be a u64")?,
            mem_mb_per_container: v
                .req("mem_mb_per_container")?
                .as_u64()
                .ok_or("executor 'mem_mb_per_container' must be a u64")?,
            io_limit,
        })
    }
}

/// A complete, serializable campaign description.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignSpec {
    /// Submitting user.
    pub user: String,
    /// Campaign name (unique per user is recommended, not enforced).
    pub name: String,
    /// Scheduling priority: higher runs first within a user's queue.
    pub priority: u8,
    /// Host environment name, resolved via the engine's registry.
    pub host: String,
    /// Target sources: `(import name, source text)`.
    pub sources: Vec<(String, String)>,
    /// Workload module text.
    pub workload: String,
    /// Setup commands run at deploy.
    pub setup: Vec<Vec<String>>,
    /// Campaign seed (plan sampling + per-experiment seeds).
    pub seed: u64,
    /// Mutation mode.
    pub mode: MutationMode,
    /// Virtual-time budget per round.
    pub round_timeout: f64,
    /// Interpreter fuel per round.
    pub fuel_per_round: u64,
    /// The fault model.
    pub model: FaultModel,
    /// Plan filter.
    pub filter: FilterSpec,
    /// Coverage pruning (paper §IV-D).
    pub prune_by_coverage: bool,
}

impl CampaignSpec {
    /// A spec with the workflow defaults for the execution knobs.
    pub fn new(
        user: &str,
        name: &str,
        host: &str,
        sources: Vec<(String, String)>,
        workload: String,
        model: FaultModel,
    ) -> CampaignSpec {
        let defaults = WorkflowConfig::default();
        CampaignSpec {
            user: user.to_string(),
            name: name.to_string(),
            priority: 0,
            host: host.to_string(),
            sources,
            workload,
            setup: Vec::new(),
            seed: defaults.seed,
            mode: defaults.mode,
            round_timeout: defaults.round_timeout,
            fuel_per_round: defaults.fuel_per_round,
            model,
            filter: FilterSpec::default(),
            prune_by_coverage: false,
        }
    }

    /// Stable hash of everything the **scan** depends on: target
    /// sources and workload. Mutation mode matters for mutants, not
    /// points, but participates so a cache entry never mixes modes.
    pub fn source_hash(&self) -> u64 {
        let mut parts: Vec<u64> = Vec::new();
        for (name, text) in &self.sources {
            parts.push(jsonlite::stable_hash64(name.as_bytes()));
            parts.push(jsonlite::stable_hash64(text.as_bytes()));
        }
        parts.push(jsonlite::stable_hash64(self.workload.as_bytes()));
        parts.push(match self.mode {
            MutationMode::Direct => 1,
            MutationMode::Triggered => 2,
        });
        jsonlite::combine_hash64(&parts)
    }

    /// Stable hash of the fault model.
    pub fn model_hash(&self) -> u64 {
        self.model.content_hash()
    }

    /// The cross-campaign cache key: `(source hash, model hash)`.
    pub fn cache_key(&self) -> u64 {
        jsonlite::combine_hash64(&[self.source_hash(), self.model_hash()])
    }

    /// The coverage-cache key. Unlike scans and mutants, a fault-free
    /// coverage run also depends on the host environment, seed, setup
    /// commands, and round budgets — two campaigns may share a scan but
    /// must not share coverage unless all of those agree too.
    pub fn coverage_key(&self) -> u64 {
        let mut parts = vec![
            self.cache_key(),
            jsonlite::stable_hash64(self.host.as_bytes()),
            self.seed,
            self.round_timeout.to_bits(),
            self.fuel_per_round,
        ];
        for cmd in &self.setup {
            for word in cmd {
                parts.push(jsonlite::stable_hash64(word.as_bytes()));
            }
        }
        jsonlite::combine_hash64(&parts)
    }

    /// Stable hash of the full spec — used to invalidate checkpoints
    /// when a resubmitted campaign changed anything that affects
    /// results.
    pub fn content_hash(&self) -> u64 {
        jsonlite::stable_hash64(
            jsonlite::canonicalize(&self.to_value()).compact().as_bytes(),
        )
    }

    /// Builds the executable workflow, parsing the sources.
    ///
    /// # Errors
    ///
    /// Propagates parse/DSL errors.
    pub fn build_workflow(
        &self,
        host_factory: HostFactory,
        executor: ParallelExecutor,
    ) -> Result<Workflow, WorkflowError> {
        Workflow::new(
            self.sources.clone(),
            self.workload.clone(),
            self.model.clone(),
            host_factory,
            self.workflow_config(executor),
        )
    }

    /// Builds the executable workflow from cached parsed modules,
    /// skipping the parse step.
    ///
    /// # Errors
    ///
    /// Propagates DSL/shape errors.
    pub fn build_workflow_with_modules(
        &self,
        modules: Vec<pysrc::Module>,
        host_factory: HostFactory,
        executor: ParallelExecutor,
    ) -> Result<Workflow, WorkflowError> {
        Workflow::from_modules(
            self.sources.clone(),
            modules,
            self.workload.clone(),
            self.model.clone(),
            host_factory,
            self.workflow_config(executor),
        )
    }

    fn workflow_config(&self, executor: ParallelExecutor) -> WorkflowConfig {
        WorkflowConfig {
            seed: self.seed,
            mode: self.mode,
            round_timeout: self.round_timeout,
            fuel_per_round: self.fuel_per_round,
            setup: self.setup.clone(),
            executor,
        }
    }

    /// The spec as a JSON value.
    pub fn to_value(&self) -> Value {
        Value::obj(vec![
            ("user", Value::str(&self.user)),
            ("name", Value::str(&self.name)),
            ("priority", Value::UInt(self.priority as u64)),
            ("host", Value::str(&self.host)),
            (
                "sources",
                Value::Arr(
                    self.sources
                        .iter()
                        .map(|(n, t)| Value::Arr(vec![Value::str(n), Value::str(t)]))
                        .collect(),
                ),
            ),
            ("workload", Value::str(&self.workload)),
            (
                "setup",
                Value::Arr(
                    self.setup
                        .iter()
                        .map(|cmd| Value::Arr(cmd.iter().map(Value::str).collect()))
                        .collect(),
                ),
            ),
            ("seed", Value::UInt(self.seed)),
            (
                "mode",
                Value::str(match self.mode {
                    MutationMode::Direct => "direct",
                    MutationMode::Triggered => "triggered",
                }),
            ),
            ("round_timeout", Value::Float(self.round_timeout)),
            ("fuel_per_round", Value::UInt(self.fuel_per_round)),
            ("model", self.model.to_value()),
            ("filter", self.filter.to_value()),
            ("prune_by_coverage", Value::Bool(self.prune_by_coverage)),
        ])
    }

    /// Reads a spec back from a JSON value.
    ///
    /// # Errors
    ///
    /// Describes the malformed field.
    pub fn from_value(v: &Value) -> Result<CampaignSpec, String> {
        let text = |key: &str| -> Result<String, String> {
            v.req(key)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("spec field '{key}' must be a string"))
        };
        let sources = v
            .req("sources")?
            .as_arr()
            .ok_or("'sources' must be an array")?
            .iter()
            .map(|pair| {
                let pair = pair.as_arr().filter(|p| p.len() == 2).ok_or(
                    "'sources' entries must be [name, text] pairs",
                )?;
                match (pair[0].as_str(), pair[1].as_str()) {
                    (Some(n), Some(t)) => Ok((n.to_string(), t.to_string())),
                    _ => Err("'sources' entries must be string pairs".to_string()),
                }
            })
            .collect::<Result<Vec<_>, String>>()?;
        let setup = v
            .req("setup")?
            .as_arr()
            .ok_or("'setup' must be an array")?
            .iter()
            .map(|cmd| {
                cmd.as_arr()
                    .ok_or("'setup' entries must be arrays")?
                    .iter()
                    .map(|word| {
                        word.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| "'setup' words must be strings".to_string())
                    })
                    .collect::<Result<Vec<_>, String>>()
            })
            .collect::<Result<Vec<_>, String>>()?;
        let mode = match text("mode")?.as_str() {
            "direct" => MutationMode::Direct,
            "triggered" => MutationMode::Triggered,
            other => return Err(format!("unknown mutation mode '{other}'")),
        };
        Ok(CampaignSpec {
            user: text("user")?,
            name: text("name")?,
            priority: v
                .req("priority")?
                .as_u64()
                .ok_or("'priority' must be a u64")? as u8,
            host: text("host")?,
            sources,
            workload: text("workload")?,
            setup,
            seed: v.req("seed")?.as_u64().ok_or("'seed' must be a u64")?,
            mode,
            round_timeout: v
                .req("round_timeout")?
                .as_f64()
                .ok_or("'round_timeout' must be a number")?,
            fuel_per_round: v
                .req("fuel_per_round")?
                .as_u64()
                .ok_or("'fuel_per_round' must be a u64")?,
            model: FaultModel::from_value(v.req("model")?)?,
            filter: FilterSpec::from_value(v.req("filter")?)?,
            prune_by_coverage: v
                .req("prune_by_coverage")?
                .as_bool()
                .ok_or("'prune_by_coverage' must be a bool")?,
        })
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        self.to_value().pretty()
    }

    /// Parses from JSON.
    ///
    /// # Errors
    ///
    /// Parse or shape error message.
    pub fn from_json(json: &str) -> Result<CampaignSpec, String> {
        CampaignSpec::from_value(&jsonlite::parse(json)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> CampaignSpec {
        let mut spec = CampaignSpec::new(
            "alice",
            "smoke",
            "etcd",
            vec![("etcd".into(), "def f():\n    pass\n".into())],
            "def run(round):\n    pass\n".into(),
            faultdsl::campaign_a_model(),
        );
        spec.priority = 3;
        spec.setup = vec![vec!["etcd-start".into()]];
        spec.seed = 42;
        spec.filter.modules.push("etcd".into());
        spec.filter.sample = 5;
        spec.prune_by_coverage = true;
        spec
    }

    #[test]
    fn spec_roundtrips_through_json() {
        let spec = sample_spec();
        let back = CampaignSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec, back);
        assert_eq!(spec.content_hash(), back.content_hash());
        assert_eq!(spec.cache_key(), back.cache_key());
    }

    #[test]
    fn cache_key_ignores_plan_but_not_target_or_model() {
        let spec = sample_spec();
        let mut other_seed = spec.clone();
        other_seed.seed = 99;
        other_seed.filter.sample = 2;
        // Same target + model → same cache key (scan reusable).
        assert_eq!(spec.cache_key(), other_seed.cache_key());
        assert_ne!(spec.content_hash(), other_seed.content_hash());

        let mut other_target = spec.clone();
        other_target.sources[0].1 = "def g():\n    pass\n".into();
        assert_ne!(spec.cache_key(), other_target.cache_key());

        let mut other_model = spec.clone();
        other_model.model = faultdsl::campaign_b_model();
        assert_ne!(spec.cache_key(), other_model.cache_key());

        let mut other_mode = spec.clone();
        other_mode.mode = MutationMode::Direct;
        assert_ne!(spec.cache_key(), other_mode.cache_key());
    }

    #[test]
    fn coverage_key_tracks_runtime_environment_too() {
        let spec = sample_spec();
        // Same scan cache key, but coverage must not be shared when the
        // host, seed, setup, or round budgets differ.
        let mut other_host = spec.clone();
        other_host.host = "noop".into();
        assert_eq!(spec.cache_key(), other_host.cache_key());
        assert_ne!(spec.coverage_key(), other_host.coverage_key());

        let mut other_seed = spec.clone();
        other_seed.seed = 1234;
        assert_eq!(spec.cache_key(), other_seed.cache_key());
        assert_ne!(spec.coverage_key(), other_seed.coverage_key());

        let mut other_setup = spec.clone();
        other_setup.setup.clear();
        assert_ne!(spec.coverage_key(), other_setup.coverage_key());

        let mut other_fuel = spec.clone();
        other_fuel.fuel_per_round /= 2;
        assert_ne!(spec.coverage_key(), other_fuel.coverage_key());

        // Identical specs agree, including across JSON round-trips.
        let back = CampaignSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec.coverage_key(), back.coverage_key());
    }

    #[test]
    fn executor_spec_roundtrips_with_unlimited_io() {
        let ex = ParallelExecutor::new(8);
        let spec = ExecutorSpec::from_executor(&ex);
        assert_eq!(spec.io_limit, None);
        let parsed =
            ExecutorSpec::from_value(&jsonlite::parse(&spec.to_value().pretty()).unwrap())
                .unwrap();
        assert_eq!(spec, parsed);
        let rebuilt = parsed.to_executor();
        assert_eq!(rebuilt.io_limit(), None);
        assert_eq!(rebuilt.effective_workers(100), 7);

        let mut capped = ParallelExecutor::new(8);
        capped.set_io_limit(Some(2));
        let spec = ExecutorSpec::from_executor(&capped);
        assert_eq!(spec.io_limit, Some(2));
        assert_eq!(spec.to_executor().effective_workers(100), 2);
    }

    #[test]
    fn filter_spec_matches_plan_filter() {
        let filter = PlanFilter::all().module("etcd").scope("Client.*").sample(7);
        let spec = FilterSpec::from_filter(&filter);
        let back = spec.to_filter();
        assert_eq!(back.modules, filter.modules);
        assert_eq!(back.scopes, filter.scopes);
        assert_eq!(back.sample, filter.sample);
    }
}
