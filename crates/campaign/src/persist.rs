//! JSON round-tripping for [`ExperimentResult`] — the payload of
//! checkpoint records. Full fidelity: rounds, logs, stdout/stderr, and
//! trace events all survive, so a resumed campaign reports exactly what
//! an uninterrupted one would.

use jsonlite::Value;
use profipy::ExperimentResult;
use pyrt::host::TraceEvent;
use pyrt::{LogRecord, Severity};
use sandbox::{RoundOutcome, RoundStatus};

fn status_to_value(status: &RoundStatus) -> Value {
    match status {
        RoundStatus::Ok => Value::str("ok"),
        RoundStatus::Timeout => Value::str("timeout"),
        RoundStatus::NotRun => Value::str("not-run"),
        RoundStatus::Failed { exc_class, message } => Value::obj(vec![
            ("exc", Value::str(exc_class)),
            ("msg", Value::str(message)),
        ]),
    }
}

fn status_from_value(v: &Value) -> Result<RoundStatus, String> {
    if let Some(tag) = v.as_str() {
        return match tag {
            "ok" => Ok(RoundStatus::Ok),
            "timeout" => Ok(RoundStatus::Timeout),
            "not-run" => Ok(RoundStatus::NotRun),
            other => Err(format!("unknown round status '{other}'")),
        };
    }
    Ok(RoundStatus::Failed {
        exc_class: v
            .req("exc")?
            .as_str()
            .ok_or("status 'exc' must be a string")?
            .to_string(),
        message: v
            .req("msg")?
            .as_str()
            .ok_or("status 'msg' must be a string")?
            .to_string(),
    })
}

fn round_to_value(round: &RoundOutcome) -> Value {
    Value::obj(vec![
        ("status", status_to_value(&round.status)),
        ("duration", Value::Float(round.duration)),
    ])
}

fn round_from_value(v: &Value) -> Result<RoundOutcome, String> {
    Ok(RoundOutcome {
        status: status_from_value(v.req("status")?)?,
        duration: v
            .req("duration")?
            .as_f64()
            .ok_or("round 'duration' must be a number")?,
    })
}

fn severity_name(s: Severity) -> &'static str {
    match s {
        Severity::Debug => "debug",
        Severity::Info => "info",
        Severity::Warning => "warning",
        Severity::Error => "error",
        Severity::Critical => "critical",
    }
}

fn severity_from_name(name: &str) -> Result<Severity, String> {
    Ok(match name {
        "debug" => Severity::Debug,
        "info" => Severity::Info,
        "warning" => Severity::Warning,
        "error" => Severity::Error,
        "critical" => Severity::Critical,
        other => return Err(format!("unknown severity '{other}'")),
    })
}

fn log_to_value(log: &LogRecord) -> Value {
    Value::obj(vec![
        ("time", Value::Float(log.time)),
        ("severity", Value::str(severity_name(log.severity))),
        ("component", Value::str(&log.component)),
        ("message", Value::str(&log.message)),
    ])
}

fn log_from_value(v: &Value) -> Result<LogRecord, String> {
    Ok(LogRecord {
        time: v
            .req("time")?
            .as_f64()
            .ok_or("log 'time' must be a number")?,
        severity: severity_from_name(
            v.req("severity")?
                .as_str()
                .ok_or("log 'severity' must be a string")?,
        )?,
        component: v
            .req("component")?
            .as_str()
            .ok_or("log 'component' must be a string")?
            .to_string(),
        message: v
            .req("message")?
            .as_str()
            .ok_or("log 'message' must be a string")?
            .to_string(),
    })
}

fn event_to_value(event: &TraceEvent) -> Value {
    Value::obj(vec![
        ("time", Value::Float(event.time)),
        ("name", Value::str(&event.name)),
        ("failed", Value::Bool(event.failed)),
        ("duration", Value::Float(event.duration)),
    ])
}

fn event_from_value(v: &Value) -> Result<TraceEvent, String> {
    Ok(TraceEvent {
        time: v
            .req("time")?
            .as_f64()
            .ok_or("event 'time' must be a number")?,
        name: v
            .req("name")?
            .as_str()
            .ok_or("event 'name' must be a string")?
            .to_string(),
        failed: v
            .req("failed")?
            .as_bool()
            .ok_or("event 'failed' must be a bool")?,
        duration: v
            .req("duration")?
            .as_f64()
            .ok_or("event 'duration' must be a number")?,
    })
}

/// The result as a JSON value.
pub fn result_to_value(r: &ExperimentResult) -> Value {
    Value::obj(vec![
        ("point_id", Value::UInt(r.point_id)),
        ("spec", Value::str(&r.spec_name)),
        ("module", Value::str(&r.module)),
        ("scope", Value::str(&r.scope)),
        ("round1", round_to_value(&r.round1)),
        ("round2", round_to_value(&r.round2)),
        ("logs", Value::Arr(r.logs.iter().map(log_to_value).collect())),
        ("stdout", Value::str(&r.stdout)),
        ("stderr", Value::str(&r.stderr)),
        ("duration", Value::Float(r.duration)),
        (
            "deploy_error",
            match &r.deploy_error {
                Some(e) => Value::str(e),
                None => Value::Null,
            },
        ),
        (
            "events",
            Value::Arr(r.events.iter().map(event_to_value).collect()),
        ),
    ])
}

/// Reads a result back from a JSON value.
///
/// # Errors
///
/// Describes the malformed field.
pub fn result_from_value(v: &Value) -> Result<ExperimentResult, String> {
    let text = |key: &str| -> Result<String, String> {
        v.req(key)?
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("result field '{key}' must be a string"))
    };
    Ok(ExperimentResult {
        point_id: v
            .req("point_id")?
            .as_u64()
            .ok_or("result 'point_id' must be a u64")?,
        spec_name: text("spec")?,
        module: text("module")?,
        scope: text("scope")?,
        round1: round_from_value(v.req("round1")?)?,
        round2: round_from_value(v.req("round2")?)?,
        logs: v
            .req("logs")?
            .as_arr()
            .ok_or("result 'logs' must be an array")?
            .iter()
            .map(log_from_value)
            .collect::<Result<Vec<_>, _>>()?,
        stdout: text("stdout")?,
        stderr: text("stderr")?,
        duration: v
            .req("duration")?
            .as_f64()
            .ok_or("result 'duration' must be a number")?,
        deploy_error: match v.req("deploy_error")? {
            Value::Null => None,
            other => Some(
                other
                    .as_str()
                    .ok_or("result 'deploy_error' must be a string or null")?
                    .to_string(),
            ),
        },
        events: v
            .req("events")?
            .as_arr()
            .ok_or("result 'events' must be an array")?
            .iter()
            .map(event_from_value)
            .collect::<Result<Vec<_>, _>>()?,
    })
}

/// Compares two results for **observable equality** — everything a
/// report or analysis reads. (ExperimentResult itself has no `PartialEq`
/// because of its float payloads; exact equality is the right notion
/// here since both sides come from the same deterministic simulator.)
pub fn results_equivalent(a: &ExperimentResult, b: &ExperimentResult) -> bool {
    a.point_id == b.point_id
        && a.spec_name == b.spec_name
        && a.module == b.module
        && a.scope == b.scope
        && a.round1.status == b.round1.status
        && a.round2.status == b.round2.status
        && a.round1.duration == b.round1.duration
        && a.round2.duration == b.round2.duration
        && a.stdout == b.stdout
        && a.stderr == b.stderr
        && a.duration == b.duration
        && a.deploy_error == b.deploy_error
        && a.logs.len() == b.logs.len()
        && a.logs
            .iter()
            .zip(&b.logs)
            .all(|(x, y)| x.render() == y.render())
        && a.events.len() == b.events.len()
        && a.events.iter().zip(&b.events).all(|(x, y)| {
            x.name == y.name && x.failed == y.failed && x.time == y.time
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result() -> ExperimentResult {
        ExperimentResult {
            point_id: 17,
            spec_name: "MFC".into(),
            module: "etcd".into(),
            scope: "Client.set".into(),
            round1: RoundOutcome {
                status: RoundStatus::Failed {
                    exc_class: "EtcdException".into(),
                    message: "Bad response: 400 Bad Request".into(),
                },
                duration: 4.25,
            },
            round2: RoundOutcome {
                status: RoundStatus::Ok,
                duration: 3.5,
            },
            logs: vec![LogRecord {
                time: 1.5,
                severity: Severity::Error,
                component: "etcd".into(),
                message: "write failed\nwith newline".into(),
            }],
            stdout: "hello\n".into(),
            stderr: "Traceback: …\n".into(),
            duration: 7.75,
            deploy_error: None,
            events: vec![TraceEvent {
                time: 0.5,
                name: "set".into(),
                failed: true,
                duration: 0.25,
            }],
        }
    }

    #[test]
    fn result_roundtrips() {
        let r = sample_result();
        let json = result_to_value(&r).compact();
        let back = result_from_value(&jsonlite::parse(&json).unwrap()).unwrap();
        assert!(results_equivalent(&r, &back));
    }

    #[test]
    fn all_statuses_roundtrip() {
        for status in [
            RoundStatus::Ok,
            RoundStatus::Timeout,
            RoundStatus::NotRun,
            RoundStatus::Failed {
                exc_class: "E".into(),
                message: "m".into(),
            },
        ] {
            let v = status_to_value(&status);
            assert_eq!(status_from_value(&v).unwrap(), status);
        }
    }

    #[test]
    fn deploy_error_roundtrips() {
        let mut r = sample_result();
        r.deploy_error = Some("mutation failed".into());
        let back =
            result_from_value(&jsonlite::parse(&result_to_value(&r).compact()).unwrap()).unwrap();
        assert_eq!(back.deploy_error.as_deref(), Some("mutation failed"));
        assert!(results_equivalent(&r, &back));
    }

    #[test]
    fn equivalence_notices_differences() {
        let a = sample_result();
        let mut b = sample_result();
        b.round2.status = RoundStatus::Timeout;
        assert!(!results_equivalent(&a, &b));
        let mut c = sample_result();
        c.stdout.push('x');
        assert!(!results_equivalent(&a, &c));
    }
}
