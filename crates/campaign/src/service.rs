//! The orchestrated service façade: `ProfipyService` sessions (saved
//! models, report history) + the [`CampaignEngine`] (queue, checkpoints,
//! cache) behind one submit/poll/resume surface — the paper's
//! "as-a-Service" story made asynchronous and crash-tolerant.

use crate::engine::{
    CampaignEngine, CheckedOutCampaign, DriveSummary, EngineConfig, EngineError, HostRegistry,
    JobStatus,
};
use crate::spec::CampaignSpec;
use profipy::service::ProfipyService;
use std::collections::BTreeSet;

/// The combined service.
pub struct CampaignService {
    /// Session store (saved fault models, report history).
    pub sessions: ProfipyService,
    engine: CampaignEngine,
    /// Jobs whose reports were already pushed into their session.
    delivered: BTreeSet<String>,
}

impl CampaignService {
    /// Creates the service over an engine configuration.
    ///
    /// # Errors
    ///
    /// Engine persistence failures.
    pub fn new(config: EngineConfig, registry: HostRegistry) -> Result<CampaignService, EngineError> {
        Ok(CampaignService {
            sessions: ProfipyService::new(),
            engine: CampaignEngine::new(config, registry)?,
            delivered: BTreeSet::new(),
        })
    }

    /// Submits a campaign on behalf of `spec.user`; returns the job id.
    ///
    /// # Errors
    ///
    /// Unknown host or queue persistence failure.
    pub fn submit(&mut self, spec: CampaignSpec) -> Result<String, EngineError> {
        // Touch the session so the user exists even before completion.
        self.sessions.session(&spec.user);
        self.engine.submit(spec)
    }

    /// Job status, or `None` for an unknown id.
    pub fn poll(&self, id: &str) -> Option<JobStatus> {
        self.engine.poll(id)
    }

    /// Runs queued work (optionally bounded by an experiment budget),
    /// then delivers any newly completed reports into the owning
    /// sessions — afterwards they are visible through
    /// `ProfipyService::reports` / `report`.
    ///
    /// # Errors
    ///
    /// Checkpoint persistence failures.
    pub fn drive(&mut self, budget: Option<usize>) -> Result<DriveSummary, EngineError> {
        let summary = self.engine.drive(budget)?;
        self.deliver_completed();
        Ok(summary)
    }

    /// Resumes after a restart: identical to [`CampaignService::drive`]
    /// with no budget — recovery comes from the persistent queue and
    /// checkpoints, not from a special code path.
    ///
    /// # Errors
    ///
    /// Checkpoint persistence failures.
    pub fn resume(&mut self) -> Result<DriveSummary, EngineError> {
        self.drive(None)
    }

    /// Checks the next queued campaign out for distributed execution
    /// (see [`CampaignEngine::checkout_next`]).
    ///
    /// # Errors
    ///
    /// Queue/checkpoint persistence failures.
    pub fn checkout_next(&mut self) -> Result<Option<CheckedOutCampaign>, EngineError> {
        self.engine.checkout_next()
    }

    /// Returns a checked-out campaign, completing it if all results are
    /// recorded (the report is then also delivered into the owning
    /// session, exactly as a locally driven completion would be).
    ///
    /// # Errors
    ///
    /// Queue persistence failures.
    pub fn checkin(&mut self, campaign: CheckedOutCampaign) -> Result<bool, EngineError> {
        let completed = self.engine.checkin(campaign)?;
        if completed {
            self.deliver_completed();
        }
        Ok(completed)
    }

    /// The underlying engine (cache stats, raw results, cancellation).
    pub fn engine(&mut self) -> &mut CampaignEngine {
        &mut self.engine
    }

    fn deliver_completed(&mut self) {
        let completed: Vec<(String, String)> = self
            .engine
            .completed_ids()
            .into_iter()
            .filter(|id| !self.delivered.contains(id))
            .filter_map(|id| {
                let status = self.engine.poll(&id)?;
                Some((id, status.user))
            })
            .collect();
        for (id, user) in completed {
            if let Some(report) = self.engine.report(&id) {
                self.sessions.session(&user).add_report(report);
                self.delivered.insert(id);
            }
        }
    }
}
