//! `campaign` — the campaign orchestration engine, layered between the
//! service façade and the per-campaign `Workflow`.
//!
//! The paper (DSN 2020) pitches ProFIPy as fault injection
//! **as-a-service**: users submit campaigns, the tool schedules
//! containers, and saved artifacts are reused across campaigns (§IV).
//! This crate supplies the service-grade machinery the single-shot
//! `Workflow::run_campaign` lacks:
//!
//! * [`queue::JobQueue`] — a **persistent job queue**: serialized
//!   [`spec::CampaignSpec`]s with priorities and per-user fairness;
//!   survives crashes, demotes in-flight jobs back to queued.
//! * [`checkpoint::CheckpointLog`] — **resumable checkpoints**: every
//!   completed experiment is appended durably, so an interrupted
//!   campaign resumes from the last experiment instead of restarting.
//! * [`cache::MutantCache`] — a **cross-campaign cache** keyed by
//!   (source hash, fault-model hash): parsed modules, scan results
//!   (memory + disk), coverage sets, and rendered mutants; a repeat
//!   campaign on an unchanged target performs zero re-scans.
//! * [`scheduler`] — interleaves the pending experiments of *all*
//!   queued campaigns into one job stream feeding
//!   `sandbox::ParallelExecutor::run_stream`, keeping every worker busy
//!   across campaign boundaries.
//! * [`engine::CampaignEngine`] — submit / poll / drive / resume over
//!   the above; [`service::CampaignService`] adds the per-user session
//!   surface (saved models, report history).
//! * [`api`] — the REST surface over the service (`POST
//!   /api/campaigns`, status/report/model/metrics endpoints), served
//!   by the std-only `httpd` crate with a background drive thread.
//!
//! # Quickstart
//!
//! ```
//! use campaign::{CampaignEngine, CampaignSpec, EngineConfig, HostRegistry};
//!
//! let registry = HostRegistry::with_noop();
//! let mut engine = CampaignEngine::new(EngineConfig::default(), registry).unwrap();
//! let spec = CampaignSpec::new(
//!     "alice",
//!     "smoke",
//!     "noop",
//!     vec![(
//!         "target".into(),
//!         "def f():\n    x = 1\n    log_event()\n    return x\n".into(),
//!     )],
//!     "import target\ndef run(round):\n    target.f()\n".into(),
//!     faultdsl::predefined_models(),
//! );
//! let id = engine.submit(spec).unwrap();
//! engine.drive(None).unwrap();
//! let report = engine.report(&id).unwrap();
//! assert!(report.executed > 0);
//! ```

pub mod api;
pub mod cache;
pub mod checkpoint;
pub mod engine;
pub mod persist;
pub mod queue;
pub mod scheduler;
pub mod service;
pub mod spec;

pub use api::{report_to_value, status_to_value, ApiConfig, ApiServer, SharedService};
pub use cache::{CacheStats, MutantCache};
pub use checkpoint::CheckpointLog;
pub use engine::{
    CampaignEngine, CheckedOutCampaign, DriveSummary, EngineConfig, EngineError, EngineMetrics,
    HostRegistry, JobStatus,
};
pub use persist::{result_from_value, result_to_value, results_equivalent};
pub use queue::{JobQueue, JobState, QueuedJob};
pub use service::CampaignService;
pub use spec::{CampaignSpec, ExecutorSpec, FilterSpec};
