//! Append-only experiment checkpoints.
//!
//! The runner records every completed [`ExperimentResult`] as one JSON
//! line, flushed immediately — if the process dies mid-campaign, the
//! next run reads the log back and executes only the missing
//! experiments. A header line carries the owning spec's content hash so
//! a *changed* resubmission (different seed, filter, model, …)
//! invalidates the stale checkpoint instead of silently mixing results.
//!
//! A torn final line (crash mid-write) is detected and dropped; every
//! complete record before it still counts.

use crate::persist::{result_from_value, result_to_value};
use jsonlite::Value;
use profipy::ExperimentResult;
use std::collections::BTreeSet;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::io;
use std::path::{Path, PathBuf};

/// The checkpoint log of one campaign.
pub struct CheckpointLog {
    path: Option<PathBuf>,
    file: Option<File>,
    spec_hash: u64,
    results: Vec<ExperimentResult>,
}

impl CheckpointLog {
    /// An ephemeral, in-memory log for `spec_hash`.
    pub fn in_memory(spec_hash: u64) -> CheckpointLog {
        CheckpointLog::in_memory_with(spec_hash, Vec::new())
    }

    /// An in-memory log pre-seeded with earlier results (how an
    /// in-memory engine carries checkpoints across `drive` calls).
    pub fn in_memory_with(spec_hash: u64, results: Vec<ExperimentResult>) -> CheckpointLog {
        CheckpointLog {
            path: None,
            file: None,
            spec_hash,
            results,
        }
    }

    /// Reads the results recorded at `path` for `spec_hash` **without
    /// modifying the file** — for status polling. Returns empty on a
    /// missing file, hash mismatch, or torn content past the valid
    /// prefix.
    pub fn peek(path: &Path, spec_hash: u64) -> Vec<ExperimentResult> {
        let Ok(file) = File::open(path) else {
            return Vec::new();
        };
        let mut results = Vec::new();
        let mut first = true;
        for line in BufReader::new(file).lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            let Ok(value) = jsonlite::parse(&line) else {
                break;
            };
            if first {
                first = false;
                let ok = value
                    .get("spec_hash")
                    .and_then(Value::as_u64)
                    .is_some_and(|h| h == spec_hash);
                if !ok {
                    return Vec::new();
                }
                continue;
            }
            match result_from_value(&value) {
                Ok(r) => results.push(r),
                Err(_) => break,
            }
        }
        results
    }

    /// Opens (or creates) the log at `path` for the campaign whose spec
    /// hashes to `spec_hash`. An existing log with a *different* spec
    /// hash is discarded — its results belong to a different campaign
    /// definition.
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn open(path: &Path, spec_hash: u64) -> io::Result<CheckpointLog> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut results = Vec::new();
        let mut header_ok = false;
        let mut torn = false;
        if path.exists() {
            let reader = BufReader::new(File::open(path)?);
            let mut first = true;
            for line in reader.lines() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                let Ok(value) = jsonlite::parse(&line) else {
                    // Torn tail from a crash mid-write: stop here,
                    // everything before it is intact.
                    torn = true;
                    break;
                };
                if first {
                    first = false;
                    header_ok = value
                        .get("spec_hash")
                        .and_then(Value::as_u64)
                        .is_some_and(|h| h == spec_hash);
                    if !header_ok {
                        break;
                    }
                    continue;
                }
                match result_from_value(&value) {
                    Ok(r) => results.push(r),
                    Err(_) => {
                        torn = true;
                        break;
                    }
                }
            }
        }
        let header = Value::obj(vec![("spec_hash", Value::UInt(spec_hash))]).compact();
        let file = if !header_ok || torn {
            // Fresh, invalidated, or torn log: rewrite the valid prefix
            // (empty on invalidation) so the file is clean again. The
            // rewrite goes to a temp file and renames over the original
            // — a crash during repair must not lose the durable prefix.
            if !header_ok {
                results.clear();
            }
            let tmp = path.with_extension("jsonl.tmp");
            {
                let mut file = File::create(&tmp)?;
                writeln!(file, "{header}")?;
                for r in &results {
                    writeln!(file, "{}", result_to_value(r).compact())?;
                }
                file.sync_data()?;
            }
            std::fs::rename(&tmp, path)?;
            OpenOptions::new().append(true).open(path)?
        } else {
            OpenOptions::new().append(true).open(path)?
        };
        Ok(CheckpointLog {
            path: Some(path.to_path_buf()),
            file: Some(file),
            spec_hash,
            results,
        })
    }

    /// The spec hash this log belongs to.
    pub fn spec_hash(&self) -> u64 {
        self.spec_hash
    }

    /// Results recorded so far (completion order).
    pub fn results(&self) -> &[ExperimentResult] {
        &self.results
    }

    /// Consumes the log, returning the recorded results.
    pub fn into_results(self) -> Vec<ExperimentResult> {
        self.results
    }

    /// Point ids already executed — the runner's skip set.
    pub fn completed_ids(&self) -> BTreeSet<u64> {
        self.results.iter().map(|r| r.point_id).collect()
    }

    /// Appends one result and flushes it to disk before returning.
    ///
    /// # Errors
    ///
    /// I/O errors (the in-memory copy is updated regardless, keeping
    /// the running campaign coherent).
    pub fn record(&mut self, result: &ExperimentResult) -> io::Result<()> {
        self.results.push(result.clone());
        if let Some(file) = &mut self.file {
            writeln!(file, "{}", result_to_value(result).compact())?;
            file.sync_data()?;
        }
        Ok(())
    }

    /// The log's path, if persistent.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sandbox::{RoundOutcome, RoundStatus};

    fn result(point_id: u64) -> ExperimentResult {
        ExperimentResult {
            point_id,
            spec_name: "S".into(),
            module: "m".into(),
            scope: "f".into(),
            round1: RoundOutcome {
                status: RoundStatus::Ok,
                duration: 1.0,
            },
            round2: RoundOutcome {
                status: RoundStatus::Ok,
                duration: 1.0,
            },
            logs: Vec::new(),
            stdout: String::new(),
            stderr: String::new(),
            duration: 2.0,
            deploy_error: None,
            events: Vec::new(),
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "campaign-ckpt-{tag}-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn records_survive_reopen() {
        let path = temp_path("reopen");
        let _ = std::fs::remove_file(&path);
        {
            let mut log = CheckpointLog::open(&path, 42).unwrap();
            log.record(&result(1)).unwrap();
            log.record(&result(5)).unwrap();
        }
        {
            let mut log = CheckpointLog::open(&path, 42).unwrap();
            assert_eq!(log.completed_ids(), [1u64, 5].into_iter().collect());
            log.record(&result(9)).unwrap();
        }
        {
            let log = CheckpointLog::open(&path, 42).unwrap();
            assert_eq!(log.completed_ids(), [1u64, 5, 9].into_iter().collect());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn different_spec_hash_invalidates() {
        let path = temp_path("invalidate");
        let _ = std::fs::remove_file(&path);
        {
            let mut log = CheckpointLog::open(&path, 1).unwrap();
            log.record(&result(1)).unwrap();
        }
        {
            let log = CheckpointLog::open(&path, 2).unwrap();
            assert!(log.results().is_empty(), "stale results discarded");
        }
        {
            // And the invalidation is durable: the old hash no longer
            // resurrects the old results either.
            let log = CheckpointLog::open(&path, 1).unwrap();
            assert!(log.results().is_empty());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_dropped() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut log = CheckpointLog::open(&path, 7).unwrap();
            log.record(&result(1)).unwrap();
            log.record(&result(2)).unwrap();
        }
        // Simulate a crash mid-write of record 3.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"point_id\": 3, \"spec\": \"trunc").unwrap();
        }
        {
            let mut log = CheckpointLog::open(&path, 7).unwrap();
            assert_eq!(log.completed_ids(), [1u64, 2].into_iter().collect());
            // And the log still accepts appends afterwards.
            log.record(&result(3)).unwrap();
        }
        {
            let log = CheckpointLog::open(&path, 7).unwrap();
            assert_eq!(log.completed_ids(), [1u64, 2, 3].into_iter().collect());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn in_memory_log_works() {
        let mut log = CheckpointLog::in_memory(3);
        log.record(&result(4)).unwrap();
        assert_eq!(log.results().len(), 1);
        assert_eq!(log.spec_hash(), 3);
        assert!(log.path().is_none());
    }
}
