//! The cross-campaign cache (paper §IV-A: saved fault models are reused
//! across campaigns — here the *derived work* is reused too).
//!
//! Keyed by the spec's `(source hash, model hash)` cache key, three
//! artifacts are memoized:
//!
//! * **parsed modules** — skip re-parsing the target (in memory),
//! * **scan results** — skip the Scan phase entirely (in memory *and*
//!   on disk as JSON, so even a restarted service never re-scans an
//!   unchanged target),
//! * **mutants** — the per-point container source sets, rendered once
//!   and shared by every campaign and resume that needs them.
//!
//! Hit/miss counters are exposed so callers (and the acceptance tests)
//! can prove "second campaign on an unchanged target performs zero
//! re-scans".

use injector::InjectionPoint;
use profipy::workflow::PreparedProgram;
use pysrc::Module;
use sandbox::SourceFile;
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Cache observability counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Scan results served from memory or disk.
    pub scan_hits: u64,
    /// Scans actually performed.
    pub scan_misses: u64,
    /// Parsed modules served from memory.
    pub parse_hits: u64,
    /// Parses actually performed.
    pub parse_misses: u64,
    /// Mutants served from the cache.
    pub mutant_hits: u64,
    /// Mutants actually rendered.
    pub mutant_misses: u64,
    /// Prepared programs (resolved interpreter artifacts) served from
    /// the cache.
    pub prepare_hits: u64,
    /// Prepared programs actually built.
    pub prepare_misses: u64,
    /// Coverage sets served from the cache.
    pub coverage_hits: u64,
    /// Fault-free coverage runs actually performed.
    pub coverage_misses: u64,
}

struct CacheEntry {
    modules: Option<Arc<Vec<Module>>>,
    points: Option<Arc<Vec<InjectionPoint>>>,
    /// point id → rendered container sources.
    mutants: HashMap<u64, Arc<Vec<SourceFile>>>,
    /// Covered point ids from a fault-free coverage run (in-memory
    /// only; coverage is cheap relative to scanning but not free).
    covered: Option<Arc<std::collections::BTreeSet<u64>>>,
    /// Prepared interpreter program (symbol-resolved modules +
    /// workload). In-memory only: symbols are process-scoped, so a
    /// restarted engine re-prepares once from the disk-tier modules and
    /// caches from then on.
    prepared: Option<Arc<PreparedProgram>>,
}

impl CacheEntry {
    fn empty() -> CacheEntry {
        CacheEntry {
            modules: None,
            points: None,
            mutants: HashMap::new(),
            covered: None,
            prepared: None,
        }
    }
}

/// The cache. One per engine; cheap to share behind `&mut`.
pub struct MutantCache {
    dir: Option<PathBuf>,
    entries: HashMap<u64, CacheEntry>,
    stats: CacheStats,
    /// Disk-tier write failures. Detached by default; the engine
    /// attaches its registered `campaign_cache_write_failures_total`
    /// handle so failures surface on `/metrics`.
    write_failures: obs::Counter,
}

impl MutantCache {
    /// An in-memory cache (no disk persistence of scan results).
    pub fn in_memory() -> MutantCache {
        MutantCache {
            dir: None,
            entries: HashMap::new(),
            stats: CacheStats::default(),
            write_failures: obs::Counter::detached(),
        }
    }

    /// A cache persisting scan results under `dir`.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory.
    pub fn open(dir: &Path) -> io::Result<MutantCache> {
        std::fs::create_dir_all(dir)?;
        Ok(MutantCache {
            dir: Some(dir.to_path_buf()),
            entries: HashMap::new(),
            stats: CacheStats::default(),
            write_failures: obs::Counter::detached(),
        })
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Replaces the write-failure counter with a registered handle
    /// (counters are `Arc`-backed clones, so the engine's metrics and
    /// the cache increment the same cell).
    pub fn attach_write_failures(&mut self, counter: obs::Counter) {
        self.write_failures = counter;
    }

    /// Disk-tier write failures so far.
    pub fn write_failures(&self) -> u64 {
        self.write_failures.value()
    }

    /// Cached parsed modules for `key`, if any.
    pub fn modules(&mut self, key: u64) -> Option<Arc<Vec<Module>>> {
        let hit = self
            .entries
            .get(&key)
            .and_then(|e| e.modules.clone());
        if hit.is_some() {
            self.stats.parse_hits += 1;
        } else {
            self.stats.parse_misses += 1;
        }
        hit
    }

    /// Stores parsed modules for `key`.
    pub fn store_modules(&mut self, key: u64, modules: Arc<Vec<Module>>) {
        self.entries.entry(key).or_insert_with(CacheEntry::empty).modules = Some(modules);
    }

    /// Cached scan results for `key` — memory first, then disk.
    ///
    /// The disk tier stores *portable* points (statement spans instead
    /// of process-local node ids); `modules` — the freshly parsed
    /// modules the points will be used against — are required to
    /// re-bind them. A disk entry that fails to re-bind is treated as
    /// a miss.
    pub fn points(&mut self, key: u64, modules: &[Module]) -> Option<Arc<Vec<InjectionPoint>>> {
        if let Some(points) = self.entries.get(&key).and_then(|e| e.points.clone()) {
            self.stats.scan_hits += 1;
            return Some(points);
        }
        // Disk tier: survives process restarts.
        if let Some(points) = self.load_points_from_disk(key, modules) {
            let points = Arc::new(points);
            self.entries
                .entry(key)
                .or_insert_with(CacheEntry::empty)
                .points = Some(points.clone());
            self.stats.scan_hits += 1;
            return Some(points);
        }
        self.stats.scan_misses += 1;
        None
    }

    /// Stores scan results for `key` (and writes the disk tier).
    pub fn store_points(
        &mut self,
        key: u64,
        points: Arc<Vec<InjectionPoint>>,
        modules: &[Module],
    ) {
        if let Some(dir) = &self.dir {
            // Best-effort: a failed cache write only costs a future
            // re-scan — but a silent one hides a full disk or a bad
            // mount until someone wonders why every restart re-scans.
            if let Ok(value) = injector::persist::points_to_portable_value(&points, modules) {
                let path = dir.join(Self::points_file(key));
                if let Err(e) = std::fs::write(&path, value.pretty()) {
                    self.write_failures.inc();
                    obs::log!(
                        obs::Level::Warn,
                        "cache_write_failed",
                        "path" => path.display().to_string(),
                        "error" => e.to_string()
                    );
                }
            }
        }
        self.entries.entry(key).or_insert_with(CacheEntry::empty).points = Some(points);
    }

    fn load_points_from_disk(&self, key: u64, modules: &[Module]) -> Option<Vec<InjectionPoint>> {
        let dir = self.dir.as_ref()?;
        let text = std::fs::read_to_string(dir.join(Self::points_file(key))).ok()?;
        jsonlite::parse(&text)
            .and_then(|v| injector::persist::points_from_portable_value(&v, modules))
            .ok()
    }

    fn points_file(key: u64) -> String {
        format!("scan-{}.json", jsonlite::hex64(key))
    }

    /// Cached coverage set for `key`.
    pub fn covered(&mut self, key: u64) -> Option<Arc<std::collections::BTreeSet<u64>>> {
        let hit = self.entries.get(&key).and_then(|e| e.covered.clone());
        if hit.is_some() {
            self.stats.coverage_hits += 1;
        } else {
            self.stats.coverage_misses += 1;
        }
        hit
    }

    /// Stores the coverage set for `key`.
    pub fn store_covered(&mut self, key: u64, covered: Arc<std::collections::BTreeSet<u64>>) {
        self.entries.entry(key).or_insert_with(CacheEntry::empty).covered = Some(covered);
    }

    /// Cached mutant sources for one point.
    pub fn mutant(&mut self, key: u64, point_id: u64) -> Option<Arc<Vec<SourceFile>>> {
        let hit = self
            .entries
            .get(&key)
            .and_then(|e| e.mutants.get(&point_id).cloned());
        if hit.is_some() {
            self.stats.mutant_hits += 1;
        } else {
            self.stats.mutant_misses += 1;
        }
        hit
    }

    /// Stores mutant sources for one point.
    pub fn store_mutant(&mut self, key: u64, point_id: u64, sources: Arc<Vec<SourceFile>>) {
        self.entries
            .entry(key)
            .or_insert_with(CacheEntry::empty)
            .mutants
            .insert(point_id, sources);
    }

    /// Cached prepared program for `key`, if any.
    pub fn prepared_program(&mut self, key: u64) -> Option<Arc<PreparedProgram>> {
        let hit = self.entries.get(&key).and_then(|e| e.prepared.clone());
        if hit.is_some() {
            self.stats.prepare_hits += 1;
        } else {
            self.stats.prepare_misses += 1;
        }
        hit
    }

    /// Stores the prepared program for `key`.
    pub fn store_prepared_program(&mut self, key: u64, prepared: Arc<PreparedProgram>) {
        self.entries
            .entry(key)
            .or_insert_with(CacheEntry::empty)
            .prepared = Some(prepared);
    }

    /// Number of distinct cache keys resident in memory.
    pub fn resident_keys(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use injector::Scanner;

    const SRC: &str = "def f(c):\n    c.prepare()\n    delete_port(c)\n    c.done()\n";

    fn scanned() -> (Vec<Module>, Vec<InjectionPoint>) {
        let spec = faultdsl::parse_spec(
            "change {\n    $CALL{name=delete_*}(...)\n} into {\n    pass\n}",
            "DEL",
        )
        .unwrap();
        let module = pysrc::parse_module(SRC, "m.py").unwrap();
        let points = Scanner::new(vec![spec]).scan(std::slice::from_ref(&module));
        (vec![module], points)
    }

    #[test]
    fn memory_tier_hits_and_stats() {
        let (modules, points) = scanned();
        let mut cache = MutantCache::in_memory();
        assert!(cache.points(1, &modules).is_none());
        cache.store_points(1, Arc::new(points), &modules);
        let got = cache.points(1, &modules).expect("hit");
        assert_eq!(got.len(), 1);
        assert_eq!(cache.stats().scan_misses, 1);
        assert_eq!(cache.stats().scan_hits, 1);
        // A different key misses.
        assert!(cache.points(2, &modules).is_none());
        assert_eq!(cache.stats().scan_misses, 2);
    }

    #[test]
    fn disk_tier_survives_new_cache_instance_and_rebinds() {
        let dir = std::env::temp_dir().join(format!(
            "campaign-cache-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let (modules, points) = scanned();
        {
            let mut cache = MutantCache::open(&dir).unwrap();
            cache.store_points(7, Arc::new(points.clone()), &modules);
        }
        {
            // Fresh cache instance + freshly parsed modules (different
            // NodeIds) — the disk tier must still hit and re-bind.
            let fresh = vec![pysrc::parse_module(SRC, "m.py").unwrap()];
            let mut cache = MutantCache::open(&dir).unwrap();
            let got = cache.points(7, &fresh).expect("disk hit");
            assert_eq!(got.len(), 1);
            assert_eq!(got[0].id, points[0].id);
            assert_ne!(
                got[0].start_stmt_id, points[0].start_stmt_id,
                "ids re-bound to the fresh parse"
            );
            assert_eq!(cache.stats().scan_hits, 1);
            assert_eq!(cache.stats().scan_misses, 0);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_write_failure_counts_instead_of_vanishing() {
        let dir = std::env::temp_dir().join(format!(
            "campaign-cache-wfail-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let (modules, points) = scanned();
        let mut cache = MutantCache::open(&dir).unwrap();
        // Yank the directory out from under the cache: the disk-tier
        // write fails, the counter ticks, and the in-memory tier still
        // serves the points.
        std::fs::remove_dir_all(&dir).unwrap();
        cache.store_points(3, Arc::new(points), &modules);
        assert_eq!(cache.write_failures(), 1);
        assert!(cache.points(3, &modules).is_some(), "memory tier unaffected");
        // An attached counter observes the same cell.
        let counter = obs::Counter::detached();
        cache.attach_write_failures(counter.clone());
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        let (modules2, points2) = scanned();
        cache.store_points(4, Arc::new(points2), &modules2);
        assert_eq!(counter.value(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prepared_program_tier_hits_and_stats() {
        let mut cache = MutantCache::in_memory();
        assert!(cache.prepared_program(1).is_none());
        assert_eq!(cache.stats().prepare_misses, 1);
        let module = pysrc::parse_module(SRC, "m.py").unwrap();
        let program = PreparedProgram {
            modules: vec![pyrt::prepare::prepare(Arc::new(module))],
            workload: None,
        };
        cache.store_prepared_program(1, Arc::new(program));
        let got = cache.prepared_program(1).expect("hit");
        assert_eq!(got.modules.len(), 1);
        assert_eq!(got.modules[0].module.name, "m.py");
        assert_eq!(cache.stats().prepare_hits, 1);
        assert!(cache.prepared_program(2).is_none(), "other keys miss");
    }

    #[test]
    fn mutants_are_per_point() {
        let mut cache = MutantCache::in_memory();
        let src = |t: &str| {
            Arc::new(vec![SourceFile {
                import_name: "m".into(),
                text: t.into(),
            }])
        };
        cache.store_mutant(1, 10, src("a"));
        cache.store_mutant(1, 11, src("b"));
        assert_eq!(cache.mutant(1, 10).unwrap()[0].text, "a");
        assert_eq!(cache.mutant(1, 11).unwrap()[0].text, "b");
        assert!(cache.mutant(1, 12).is_none());
        assert!(cache.mutant(2, 10).is_none());
        assert_eq!(cache.stats().mutant_hits, 2);
        assert_eq!(cache.stats().mutant_misses, 2);
    }
}
