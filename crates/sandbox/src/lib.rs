//! `sandbox` — the container-based experimental environment of ProFIPy
//! (paper §IV-B).
//!
//! The paper runs each experiment in a fresh Docker container; this
//! crate simulates that environment:
//!
//! * [`image::ContainerImage`] — the built image: target sources,
//!   workload, setup commands (the "Dockerfile directives"), resource
//!   requirements, and per-round budgets.
//! * [`container::Container`] — one deployed instance: its own
//!   interpreter ([`pyrt::Vm`]), host ([`pyrt::HostApi`]), and fault
//!   trigger. Tearing the container down reclaims every leaked
//!   resource (stale ports, hog threads), exactly like the paper's
//!   container deallocation.
//! * Two-round execution: round 1 with the fault trigger enabled,
//!   round 2 with it disabled, **without restarting the target**
//!   (§IV-B) — the basis for the service-availability metric.
//! * [`executor::ParallelExecutor`] — up to N−1 parallel experiments on
//!   an N-core host, with memory/IO back-off thresholds (§IV-B, ref.\[52\]).

pub mod container;
pub mod executor;
pub mod image;

pub use container::{Container, DeployError, RoundOutcome, RoundStatus};
pub use executor::ParallelExecutor;
pub use image::{ContainerImage, SourceFile};
