//! Parallel experiment execution (paper §IV-B: "run at most N − 1
//! parallel containers at the same time, where N is the number of CPU
//! cores ... the tool further reduces the number of parallel containers
//! if it hits a threshold for memory and I/O utilization").

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// The parallel experiment executor.
#[derive(Clone, Debug)]
pub struct ParallelExecutor {
    /// CPU cores of the (simulated) host.
    pub cpu_cores: usize,
    /// Total memory available for containers (MB).
    pub mem_mb_total: u64,
    /// Memory footprint of one container (MB).
    pub mem_mb_per_container: u64,
    /// I/O bandwidth cap expressed as a max number of concurrently
    /// I/O-active containers.
    pub io_parallel_limit: usize,
}

impl Default for ParallelExecutor {
    fn default() -> Self {
        ParallelExecutor {
            cpu_cores: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            mem_mb_total: 16 * 1024,
            mem_mb_per_container: 512,
            io_parallel_limit: usize::MAX,
        }
    }
}

impl ParallelExecutor {
    /// Creates an executor for a host with `cpu_cores` cores.
    pub fn new(cpu_cores: usize) -> ParallelExecutor {
        ParallelExecutor {
            cpu_cores,
            ..ParallelExecutor::default()
        }
    }

    /// Effective worker count: `min(N−1, memory cap, I/O cap, jobs)`,
    /// at least 1.
    pub fn effective_workers(&self, jobs: usize) -> usize {
        let cpu_cap = self.cpu_cores.saturating_sub(1).max(1);
        let mem_cap = match self.mem_mb_total.checked_div(self.mem_mb_per_container) {
            Some(n) => (n as usize).max(1),
            None => usize::MAX,
        };
        cpu_cap
            .min(mem_cap)
            .min(self.io_parallel_limit.max(1))
            .min(jobs.max(1))
    }

    /// Runs `jobs` independent experiments in parallel, preserving
    /// result order. Each worker thread gets a 32 MB stack (the
    /// tree-walking interpreter is recursion-heavy).
    ///
    /// # Panics
    ///
    /// Panics if a worker panics.
    pub fn run<R, F>(&self, jobs: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if jobs == 0 {
            return Vec::new();
        }
        let workers = self.effective_workers(jobs);
        if workers == 1 {
            return (0..jobs).map(&f).collect();
        }
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        let f = &f;
        crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                let next = &next;
                let tx = tx.clone();
                scope
                    .builder()
                    .stack_size(32 * 1024 * 1024)
                    .spawn(move |_| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs {
                            break;
                        }
                        let r = f(i);
                        if tx.send((i, r)).is_err() {
                            break;
                        }
                    })
                    .expect("spawn worker");
            }
            drop(tx);
        })
        .expect("no worker panicked");
        let mut results: Vec<Option<R>> = (0..jobs).map(|_| None).collect();
        for (i, r) in rx {
            results[i] = Some(r);
        }
        results
            .into_iter()
            .map(|r| r.expect("every job index produced a result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n_minus_one_rule() {
        let ex = ParallelExecutor::new(8);
        assert_eq!(ex.effective_workers(100), 7);
        assert_eq!(ParallelExecutor::new(1).effective_workers(100), 1);
        assert_eq!(ParallelExecutor::new(2).effective_workers(100), 1);
    }

    #[test]
    fn memory_threshold_reduces_workers() {
        let mut ex = ParallelExecutor::new(32);
        ex.mem_mb_total = 2048;
        ex.mem_mb_per_container = 512;
        assert_eq!(ex.effective_workers(100), 4);
    }

    #[test]
    fn io_limit_reduces_workers() {
        let mut ex = ParallelExecutor::new(32);
        ex.io_parallel_limit = 3;
        assert_eq!(ex.effective_workers(100), 3);
    }

    #[test]
    fn job_count_caps_workers() {
        let ex = ParallelExecutor::new(16);
        assert_eq!(ex.effective_workers(2), 2);
        assert_eq!(ex.effective_workers(0), 1);
    }

    #[test]
    fn results_preserve_order() {
        let ex = ParallelExecutor::new(8);
        let out = ex.run(64, |i| i * i);
        assert_eq!(out.len(), 64);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn serial_fallback_works() {
        let ex = ParallelExecutor::new(1);
        let out = ex.run(5, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_jobs() {
        let ex = ParallelExecutor::new(4);
        let out: Vec<usize> = ex.run(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn workers_actually_run_vms() {
        // Each job runs a tiny interpreter — exercises Send boundaries.
        let ex = ParallelExecutor::new(4);
        let outs = ex.run(8, |i| {
            let m = pysrc::parse_module(&format!("print({i} * 2)\n"), "m.py").unwrap();
            let mut vm = pyrt::Vm::new();
            vm.run_module(&m).unwrap();
            vm.stdout()
        });
        assert_eq!(outs[3], "6\n");
    }
}
