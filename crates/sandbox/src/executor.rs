//! Parallel experiment execution (paper §IV-B: "run at most N − 1
//! parallel containers at the same time, where N is the number of CPU
//! cores ... the tool further reduces the number of parallel containers
//! if it hits a threshold for memory and I/O utilization").
//!
//! Two entry points:
//!
//! * [`ParallelExecutor::run`] — a fixed batch of indexed jobs, results
//!   returned in order (the classic single-campaign path).
//! * [`ParallelExecutor::run_stream`] — a dynamic [`JobStream`] drained
//!   by the worker pool until exhausted. The campaign scheduler feeds
//!   experiments from *multiple queued campaigns* through one stream so
//!   every worker stays busy across campaign boundaries.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

/// Worker stack size: the tree-walking interpreter is recursion-heavy.
const WORKER_STACK_BYTES: usize = 32 * 1024 * 1024;

/// A dynamic source of jobs drained by the worker pool. Implementations
/// must hand out each job exactly once; `None` permanently ends the
/// stream for the asking worker.
pub trait JobStream: Sync {
    /// The job payload handed to workers.
    type Job: Send;

    /// Pops the next job, or `None` when the stream is exhausted.
    fn next_job(&self) -> Option<Self::Job>;
}

/// The obvious shared work queue: lock, pop front.
impl<J: Send> JobStream for Mutex<VecDeque<J>> {
    type Job = J;

    fn next_job(&self) -> Option<J> {
        self.lock().expect("job queue poisoned").pop_front()
    }
}

struct IndexStream {
    next: AtomicUsize,
    limit: usize,
}

impl JobStream for IndexStream {
    type Job = usize;

    fn next_job(&self) -> Option<usize> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.limit).then_some(i)
    }
}

/// The parallel experiment executor.
#[derive(Clone, Debug)]
pub struct ParallelExecutor {
    /// CPU cores of the (simulated) host.
    pub cpu_cores: usize,
    /// Total memory available for containers (MB).
    pub mem_mb_total: u64,
    /// Memory footprint of one container (MB).
    pub mem_mb_per_container: u64,
    /// I/O bandwidth cap expressed as a max number of concurrently
    /// I/O-active containers. `usize::MAX` means unlimited — prefer the
    /// [`ParallelExecutor::io_limit`] / [`ParallelExecutor::set_io_limit`]
    /// accessors, which make the sentinel explicit and keep the value
    /// sane when configs are serialized for the persistent campaign
    /// queue.
    pub io_parallel_limit: usize,
}

impl Default for ParallelExecutor {
    fn default() -> Self {
        ParallelExecutor {
            cpu_cores: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            mem_mb_total: 16 * 1024,
            mem_mb_per_container: 512,
            io_parallel_limit: usize::MAX,
        }
    }
}

impl fmt::Display for ParallelExecutor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "executor(cores={}, workers<={}, mem={}MB/{}MB, io=",
            self.cpu_cores,
            self.cpu_cores.saturating_sub(1).max(1),
            self.mem_mb_total,
            self.mem_mb_per_container,
        )?;
        match self.io_limit() {
            Some(n) => write!(f, "{n})"),
            None => write!(f, "unlimited)"),
        }
    }
}

impl ParallelExecutor {
    /// Creates an executor for a host with `cpu_cores` cores.
    pub fn new(cpu_cores: usize) -> ParallelExecutor {
        ParallelExecutor {
            cpu_cores,
            ..ParallelExecutor::default()
        }
    }

    /// The I/O cap, if one is set (`None` = unlimited). Clamps a raw
    /// zero — which would deadlock the pool — up to 1.
    pub fn io_limit(&self) -> Option<usize> {
        if self.io_parallel_limit == usize::MAX {
            None
        } else {
            Some(self.io_parallel_limit.max(1))
        }
    }

    /// Sets the I/O cap. `None` means unlimited; `Some(0)` is clamped
    /// to 1. This is the inverse of [`ParallelExecutor::io_limit`] and
    /// the intended deserialization path, keeping the `usize::MAX`
    /// sentinel out of stored configs.
    pub fn set_io_limit(&mut self, limit: Option<usize>) {
        self.io_parallel_limit = match limit {
            None => usize::MAX,
            Some(n) => n.max(1),
        };
    }

    /// Effective worker count: `min(N−1, memory cap, I/O cap, jobs)`,
    /// at least 1.
    pub fn effective_workers(&self, jobs: usize) -> usize {
        let cpu_cap = self.cpu_cores.saturating_sub(1).max(1);
        let mem_cap = match self.mem_mb_total.checked_div(self.mem_mb_per_container) {
            Some(n) => (n as usize).max(1),
            None => usize::MAX,
        };
        cpu_cap
            .min(mem_cap)
            .min(self.io_limit().unwrap_or(usize::MAX))
            .min(jobs.max(1))
    }

    /// Runs `jobs` independent experiments in parallel, preserving
    /// result order. Each worker thread gets a 32 MB stack (the
    /// tree-walking interpreter is recursion-heavy).
    ///
    /// # Panics
    ///
    /// Panics if a worker panics.
    pub fn run<R, F>(&self, jobs: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if jobs == 0 {
            return Vec::new();
        }
        let stream = IndexStream {
            next: AtomicUsize::new(0),
            limit: jobs,
        };
        let mut results: Vec<Option<R>> = (0..jobs).map(|_| None).collect();
        self.run_stream(jobs, &stream, |i| (i, f(i)), |(i, r)| {
            results[i] = Some(r);
        });
        results
            .into_iter()
            .map(|r| r.expect("every job index produced a result"))
            .collect()
    }

    /// Drains a [`JobStream`] with up to `effective_workers(jobs_hint)`
    /// workers, invoking `collect` on the **calling thread** for every
    /// result as it arrives (completion order, not submission order).
    ///
    /// `jobs_hint` bounds pool size for small batches; pass
    /// `usize::MAX` when the stream length is unknown.
    ///
    /// # Panics
    ///
    /// Panics if a worker panics.
    pub fn run_stream<S, R, F, C>(&self, jobs_hint: usize, stream: &S, run: F, mut collect: C)
    where
        S: JobStream,
        R: Send,
        F: Fn(S::Job) -> R + Sync,
        C: FnMut(R),
    {
        let workers = self.effective_workers(jobs_hint);
        if workers == 1 {
            while let Some(job) = stream.next_job() {
                collect(run(job));
            }
            return;
        }
        let (tx, rx) = mpsc::channel::<R>();
        let run = &run;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                std::thread::Builder::new()
                    .stack_size(WORKER_STACK_BYTES)
                    .spawn_scoped(scope, move || {
                        while let Some(job) = stream.next_job() {
                            if tx.send(run(job)).is_err() {
                                break;
                            }
                        }
                    })
                    .expect("spawn worker");
            }
            drop(tx);
            for r in rx {
                collect(r);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n_minus_one_rule() {
        let ex = ParallelExecutor::new(8);
        assert_eq!(ex.effective_workers(100), 7);
        assert_eq!(ParallelExecutor::new(1).effective_workers(100), 1);
        assert_eq!(ParallelExecutor::new(2).effective_workers(100), 1);
    }

    #[test]
    fn memory_threshold_reduces_workers() {
        let mut ex = ParallelExecutor::new(32);
        ex.mem_mb_total = 2048;
        ex.mem_mb_per_container = 512;
        assert_eq!(ex.effective_workers(100), 4);
    }

    #[test]
    fn io_limit_reduces_workers() {
        let mut ex = ParallelExecutor::new(32);
        ex.io_parallel_limit = 3;
        assert_eq!(ex.effective_workers(100), 3);
    }

    #[test]
    fn job_count_caps_workers() {
        let ex = ParallelExecutor::new(16);
        assert_eq!(ex.effective_workers(2), 2);
        assert_eq!(ex.effective_workers(0), 1);
    }

    #[test]
    fn io_limit_accessors_clamp_the_sentinel() {
        let mut ex = ParallelExecutor::new(8);
        assert_eq!(ex.io_limit(), None);
        ex.set_io_limit(Some(0));
        assert_eq!(ex.io_limit(), Some(1));
        assert_eq!(ex.effective_workers(100), 1);
        ex.set_io_limit(Some(3));
        assert_eq!(ex.io_limit(), Some(3));
        ex.set_io_limit(None);
        assert_eq!(ex.io_limit(), None);
        assert_eq!(ex.effective_workers(100), 7);
        // A raw zero written directly into the field must not deadlock.
        ex.io_parallel_limit = 0;
        assert_eq!(ex.io_limit(), Some(1));
        assert_eq!(ex.effective_workers(100), 1);
    }

    #[test]
    fn display_summarizes_caps() {
        let mut ex = ParallelExecutor::new(8);
        let text = ex.to_string();
        assert!(text.contains("cores=8"), "{text}");
        assert!(text.contains("io=unlimited"), "{text}");
        ex.set_io_limit(Some(4));
        assert!(ex.to_string().contains("io=4"));
    }

    #[test]
    fn results_preserve_order() {
        let ex = ParallelExecutor::new(8);
        let out = ex.run(64, |i| i * i);
        assert_eq!(out.len(), 64);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn serial_fallback_works() {
        let ex = ParallelExecutor::new(1);
        let out = ex.run(5, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_jobs() {
        let ex = ParallelExecutor::new(4);
        let out: Vec<usize> = ex.run(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn stream_drains_shared_queue() {
        let ex = ParallelExecutor::new(4);
        let queue: Mutex<VecDeque<u64>> = Mutex::new((0..100).collect());
        let mut seen = Vec::new();
        ex.run_stream(usize::MAX, &queue, |j| j * 2, |r| seen.push(r));
        seen.sort_unstable();
        assert_eq!(seen, (0..100).map(|j| j * 2).collect::<Vec<_>>());
        assert!(queue.lock().unwrap().is_empty());
    }

    #[test]
    fn stream_serial_path() {
        let ex = ParallelExecutor::new(1);
        let queue: Mutex<VecDeque<u64>> = Mutex::new((0..5).collect());
        let mut seen = Vec::new();
        ex.run_stream(usize::MAX, &queue, |j| j + 1, |r| seen.push(r));
        assert_eq!(seen, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn workers_actually_run_vms() {
        // Each job runs a tiny interpreter — exercises Send boundaries.
        let ex = ParallelExecutor::new(4);
        let outs = ex.run(8, |i| {
            let m = pysrc::parse_module(&format!("print({i} * 2)\n"), "m.py").unwrap();
            let mut vm = pyrt::Vm::new();
            vm.run_module(&m).unwrap();
            vm.stdout()
        });
        assert_eq!(outs[3], "6\n");
    }
}
