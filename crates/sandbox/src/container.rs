//! One deployed container: interpreter + host + trigger + lifecycle.

use crate::image::ContainerImage;
use pyrt::interp::call_value;
use pyrt::prepare::{prepare_hashed, source_hash64, PreparedModule};
use pyrt::{HostApi, PyExc, Value, Vm};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::rc::Rc;
use std::sync::{Arc, Mutex, OnceLock};

/// Process-wide prepared-module cache keyed by `(import name, source
/// hash)`. Mutated sources recur across a campaign's deploys (coverage
/// pre-run, retries, repeated campaign runs, fleet round-robin), and a
/// cache hit skips parse + name resolution — and keeps the scopes'
/// cached bytecode, so the compile tier is paid once per distinct
/// source text, not once per deploy.
type PrepareCache = Mutex<HashMap<(String, u64), Arc<PreparedModule>>>;

fn prepare_cache() -> &'static PrepareCache {
    static CACHE: OnceLock<PrepareCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Cache bound; campaigns produce one distinct mutant per experiment,
/// so this holds several campaigns' worth. Full → cleared (simple and
/// sound: entries rebuild on demand).
const PREPARE_CACHE_CAP: usize = 512;

/// Parses and prepares a source through the process-wide cache.
fn prepare_source_cached(name: &str, text: &str) -> Result<Arc<PreparedModule>, pysrc::ParseError> {
    let key = (name.to_string(), source_hash64(text));
    if let Some(pm) = prepare_cache().lock().expect("prepare cache lock").get(&key) {
        return Ok(pm.clone());
    }
    let module = pysrc::parse_module(text, name)?;
    let pm = prepare_hashed(Arc::new(module), text);
    let mut cache = prepare_cache().lock().expect("prepare cache lock");
    if cache.len() >= PREPARE_CACHE_CAP {
        cache.clear();
    }
    cache.insert(key, pm.clone());
    Ok(pm)
}

/// Deploy-time failure (unparsable source, failed setup command).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeployError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deploy error: {}", self.message)
    }
}

impl std::error::Error for DeployError {}

/// How one workload round ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RoundStatus {
    /// Workload completed without an exception.
    Ok,
    /// The workload/client raised an uncaught exception.
    Failed {
        /// Exception class (e.g. `"EtcdException"`).
        exc_class: String,
        /// Exception message.
        message: String,
    },
    /// The round exceeded its virtual deadline or step budget
    /// (the paper's *timeout* failure mode, including hangs).
    Timeout,
    /// The round was not executed (client process already dead).
    NotRun,
}

impl RoundStatus {
    /// Did the service behave correctly this round?
    pub fn is_ok(&self) -> bool {
        matches!(self, RoundStatus::Ok)
    }
}

/// Result of one workload round.
#[derive(Clone, Debug)]
pub struct RoundOutcome {
    /// Status.
    pub status: RoundStatus,
    /// Virtual seconds the round took.
    pub duration: f64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ContainerState {
    Deployed,
    ClientDead,
    TornDown,
}

/// One deployed experiment container (paper §IV-B: "for each fault to
/// be injected, ProFIPy deploys a new container").
pub struct Container {
    vm: Vm,
    state: ContainerState,
    workload_imported: bool,
    round_timeout: f64,
    fuel_per_round: u64,
}

impl Container {
    /// Deploys an image onto a host: parses and registers all sources,
    /// runs the setup commands.
    ///
    /// # Errors
    ///
    /// [`DeployError`] if a source does not parse or a setup command
    /// exits non-zero.
    pub fn deploy(
        image: &ContainerImage,
        host: Rc<dyn HostApi>,
        seed: u64,
    ) -> Result<Container, DeployError> {
        let vm = Vm::with_host(host.clone(), seed);
        // A prepared artifact substitutes for a source file only when
        // its stamped source hash matches the shipped text — an
        // unstamped or stale artifact (e.g. attached for a module that
        // was mutated) falls back to parsing, never silently executing
        // the wrong AST.
        let prepared_for = |name: &str, text: &str| {
            image
                .prepared
                .iter()
                .find(|p| {
                    p.module.name == name
                        && p.source_hash == Some(pyrt::prepare::source_hash64(text))
                })
                .cloned()
        };
        for src in &image.sources {
            // Prepared fast path: the unchanged modules of a campaign
            // (everything but the mutant) skip parse + name resolution.
            if let Some(pm) = prepared_for(&src.import_name, &src.text) {
                vm.register_prepared_source(&src.import_name, pm);
                continue;
            }
            let pm = prepare_source_cached(&src.import_name, &src.text).map_err(|e| {
                DeployError {
                    message: format!("source {}: {e}", src.import_name),
                }
            })?;
            vm.register_prepared_source(&src.import_name, pm);
        }
        // A target source named `workload` (e.g. when faults are
        // injected into the workload's API call sites, §V-B) takes
        // precedence over the image-level workload text.
        if !image.sources.iter().any(|s| s.import_name == "workload") {
            if let Some(pm) = prepared_for("workload", &image.workload) {
                vm.register_prepared_source("workload", pm);
            } else {
                let pm = prepare_source_cached("workload", &image.workload).map_err(|e| {
                    DeployError {
                        message: format!("workload: {e}"),
                    }
                })?;
                vm.register_prepared_source("workload", pm);
            }
        }
        for cmd in &image.setup {
            let (code, out) = host.execute(cmd);
            if code != 0 {
                return Err(DeployError {
                    message: format!("setup `{}` failed ({code}): {out}", cmd.join(" ")),
                });
            }
        }
        Ok(Container {
            vm,
            state: ContainerState::Deployed,
            workload_imported: false,
            round_timeout: image.round_timeout,
            fuel_per_round: image.fuel_per_round,
        })
    }

    /// Runs one workload round with the fault trigger set as given.
    /// The target is **not** restarted between rounds (§IV-B); the
    /// first round also executes the workload module's top level
    /// (client initialization).
    pub fn run_round(&mut self, round: i64, fault_enabled: bool) -> RoundOutcome {
        if self.state != ContainerState::Deployed {
            return RoundOutcome {
                status: RoundStatus::NotRun,
                duration: 0.0,
            };
        }
        self.vm.trigger.set(fault_enabled);
        self.vm.refill_fuel(self.fuel_per_round);
        let start = self.vm.now();
        self.vm.set_deadline(Some(start + self.round_timeout));
        let result = self.execute_round(round);
        let duration = self.vm.now() - start;
        self.vm.set_deadline(None);
        let status = match result {
            Ok(()) => RoundStatus::Ok,
            Err(e) if e.class_name == "ProfipyFuelExhausted" => RoundStatus::Timeout,
            Err(e) => RoundStatus::Failed {
                exc_class: e.class_name,
                message: e.message,
            },
        };
        RoundOutcome { status, duration }
    }

    fn execute_round(&mut self, round: i64) -> Result<(), PyExc> {
        // Import (first round: executes client initialization). If the
        // top level crashes, the client process is dead: later rounds
        // are NotRun (paper §V-A: "the system was not available after
        // disabling the fault").
        let ns = match self.vm.import_module("workload") {
            Ok(ns) => {
                self.workload_imported = true;
                ns
            }
            Err(e) => {
                self.state = ContainerState::ClientDead;
                return Err(e);
            }
        };
        let run = self.vm.heap.module(ns).get("run").ok_or_else(|| {
            PyExc::new("AttributeError", "workload module must define run(round)")
        })?;
        call_value(&mut self.vm, run, vec![Value::Int(round)], vec![]).map(|_| ())
    }

    /// Coverage ids observed so far (`profipy_rt.cov` probes).
    pub fn coverage(&self) -> BTreeSet<u64> {
        self.vm.coverage()
    }

    /// Captured log records.
    pub fn logs(&self) -> Vec<pyrt::LogRecord> {
        self.vm.logs()
    }

    /// Captured stdout.
    pub fn stdout(&self) -> String {
        self.vm.stdout()
    }

    /// Captured stderr (tracebacks).
    pub fn stderr(&self) -> String {
        self.vm.stderr()
    }

    /// Current virtual time inside the container.
    pub fn now(&self) -> f64 {
        self.vm.now()
    }

    /// Traced host API invocations (paper §IV-D visualization).
    pub fn trace_events(&self) -> Vec<pyrt::host::TraceEvent> {
        self.vm.host.trace_events()
    }

    /// Tears the container down, reclaiming leaked resources (stale
    /// hogs, held ports via the host's cleanup command) — §IV-B: "the
    /// tool can also clean-up any resource leaked or corrupted because
    /// of the injected fault".
    pub fn teardown(mut self) {
        self.vm.clear_hogs();
        let _ = self.vm.host.execute(&["etcd-cleanup".to_string()]);
        self.state = ContainerState::TornDown;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ContainerImage;
    use pyrt::NoopHost;

    fn noop() -> Rc<dyn HostApi> {
        Rc::new(NoopHost::new())
    }

    #[test]
    fn deploy_and_run_two_rounds() {
        let image = ContainerImage::new("t")
            .source("lib", "def ping():\n    return 'pong'\n")
            .workload("import lib\ndef run(round):\n    assert lib.ping() == 'pong'\n");
        let mut c = Container::deploy(&image, noop(), 0).unwrap();
        assert!(c.run_round(1, true).status.is_ok());
        assert!(c.run_round(2, false).status.is_ok());
        c.teardown();
    }

    #[test]
    fn trigger_gates_fault() {
        let image = ContainerImage::new("t").workload(concat!(
            "import profipy_rt\n",
            "def run(round):\n",
            "    if profipy_rt.trigger():\n",
            "        raise RuntimeError('injected')\n",
        ));
        let mut c = Container::deploy(&image, noop(), 0).unwrap();
        let r1 = c.run_round(1, true);
        assert!(matches!(
            r1.status,
            RoundStatus::Failed { ref exc_class, .. } if exc_class == "RuntimeError"
        ));
        // Round 2 with the fault disabled succeeds: error state did not
        // persist.
        assert!(c.run_round(2, false).status.is_ok());
    }

    #[test]
    fn timeout_is_reported() {
        let image = ContainerImage::new("t")
            .workload("def run(round):\n    while True:\n        pass\n")
            .fuel(50_000);
        let mut c = Container::deploy(&image, noop(), 0).unwrap();
        assert_eq!(c.run_round(1, true).status, RoundStatus::Timeout);
    }

    #[test]
    fn client_death_at_init_marks_later_rounds_not_run() {
        let image = ContainerImage::new("t").workload(concat!(
            "import profipy_rt\n",
            "if profipy_rt.trigger():\n",
            "    raise RuntimeError('dead at init')\n",
            "def run(round):\n",
            "    pass\n",
        ));
        let mut c = Container::deploy(&image, noop(), 0).unwrap();
        assert!(matches!(c.run_round(1, true).status, RoundStatus::Failed { .. }));
        assert_eq!(c.run_round(2, false).status, RoundStatus::NotRun);
    }

    #[test]
    fn bad_source_fails_deploy() {
        let image = ContainerImage::new("t").source("lib", "def broken(:\n");
        assert!(Container::deploy(&image, noop(), 0).is_err());
    }

    #[test]
    fn prepared_fast_path_used_only_for_matching_source_text() {
        use std::sync::Arc;
        let original = "def ping():\n    return 'pong'\n";
        let mutated = "def ping():\n    return 'MUTATED'\n";
        let workload = "import lib\ndef run(round):\n    print(lib.ping())\n";
        let prepared = pyrt::prepare::prepare_hashed(
            Arc::new(pysrc::parse_module(original, "lib").unwrap()),
            original,
        );

        // Matching text: the prepared artifact is used (same behavior).
        let mut image = ContainerImage::new("t").source("lib", original).workload(workload);
        image.prepared.push(prepared.clone());
        let mut c = Container::deploy(&image, noop(), 0).unwrap();
        assert!(c.run_round(1, false).status.is_ok());
        assert_eq!(c.stdout(), "pong\n");

        // Mutated text with a stale artifact attached: the shipped
        // source must win — the stale AST is never substituted.
        let mut image = ContainerImage::new("t").source("lib", mutated).workload(workload);
        image.prepared.push(prepared);
        let mut c = Container::deploy(&image, noop(), 0).unwrap();
        assert!(c.run_round(1, false).status.is_ok());
        assert_eq!(c.stdout(), "MUTATED\n", "stale prepared artifact must not shadow the mutant");
    }

    #[test]
    fn state_persists_between_rounds() {
        let image = ContainerImage::new("t").workload(concat!(
            "counter = {'n': 0}\n",
            "def run(round):\n",
            "    counter['n'] = counter['n'] + 1\n",
            "    assert counter['n'] == round\n",
        ));
        let mut c = Container::deploy(&image, noop(), 0).unwrap();
        assert!(c.run_round(1, true).status.is_ok());
        assert!(c.run_round(2, false).status.is_ok());
    }

    #[test]
    fn virtual_time_advances_across_rounds() {
        let image = ContainerImage::new("t").workload(
            "import time\ndef run(round):\n    time.sleep(3)\n",
        );
        let mut c = Container::deploy(&image, noop(), 0).unwrap();
        let r1 = c.run_round(1, true);
        assert!(r1.duration >= 3.0);
        let t_after_r1 = c.now();
        c.run_round(2, false);
        assert!(c.now() >= t_after_r1 + 3.0);
    }
}
