//! Container images: everything needed to deploy an experiment.

/// One source file of the target software.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SourceFile {
    /// Name the target imports it as (e.g. `"etcd"`).
    pub import_name: String,
    /// Source text.
    pub text: String,
}

/// A built container image (paper §IV-B: "The tool first creates a
/// container image, in which it copies the Python source code uploaded
/// by the user").
#[derive(Clone, Debug)]
pub struct ContainerImage {
    /// Image name.
    pub name: String,
    /// Target software sources (possibly mutated).
    pub sources: Vec<SourceFile>,
    /// Pre-parsed, pre-resolved modules shared across experiments
    /// (keyed by module name). A source whose name appears here is
    /// registered without re-parsing or re-resolving; the campaign
    /// layer attaches these for every module the experiment did *not*
    /// mutate — including the workload (`"workload"`).
    pub prepared: Vec<std::sync::Arc<pyrt::PreparedModule>>,
    /// The workload module. Its top level initializes the client; it
    /// must define `run(round)` which exercises the target and raises
    /// on service failure (crash/assertion).
    pub workload: String,
    /// Setup commands executed through the host before the workload
    /// (the user's Dockerfile-style directives, e.g. `etcd-start`).
    pub setup: Vec<Vec<String>>,
    /// Virtual-time budget per workload round; exceeding it is the
    /// *timeout* failure mode.
    pub round_timeout: f64,
    /// Interpreter step budget per round.
    pub fuel_per_round: u64,
    /// Simulated memory footprint of one container (drives the
    /// executor's memory back-off).
    pub mem_mb: u64,
}

impl ContainerImage {
    /// Creates an image with sensible experiment defaults
    /// (120 s virtual round timeout — the paper's §V-D worst case).
    pub fn new(name: impl Into<String>) -> ContainerImage {
        ContainerImage {
            name: name.into(),
            sources: Vec::new(),
            prepared: Vec::new(),
            workload: String::new(),
            setup: Vec::new(),
            round_timeout: 120.0,
            fuel_per_round: 8_000_000,
            mem_mb: 512,
        }
    }

    /// Adds a source file (builder-style).
    pub fn source(mut self, import_name: &str, text: &str) -> ContainerImage {
        self.sources.push(SourceFile {
            import_name: import_name.to_string(),
            text: text.to_string(),
        });
        self
    }

    /// Sets the workload module (builder-style).
    pub fn workload(mut self, text: &str) -> ContainerImage {
        self.workload = text.to_string();
        self
    }

    /// Appends a setup command (builder-style).
    pub fn setup_cmd(mut self, argv: &[&str]) -> ContainerImage {
        self.setup.push(argv.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Overrides the per-round virtual timeout (builder-style).
    pub fn round_timeout(mut self, secs: f64) -> ContainerImage {
        self.round_timeout = secs;
        self
    }

    /// Overrides the per-round fuel budget (builder-style).
    pub fn fuel(mut self, steps: u64) -> ContainerImage {
        self.fuel_per_round = steps;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let img = ContainerImage::new("exp")
            .source("lib", "x = 1\n")
            .workload("def run(r):\n    pass\n")
            .setup_cmd(&["etcd-start"])
            .round_timeout(60.0)
            .fuel(1000);
        assert_eq!(img.sources.len(), 1);
        assert_eq!(img.setup.len(), 1);
        assert_eq!(img.round_timeout, 60.0);
        assert_eq!(img.fuel_per_round, 1000);
    }
}
