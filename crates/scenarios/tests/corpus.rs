//! Corpus coverage (satellite): every shipped fault model compiles,
//! matches at least one injection site on at least one applicable
//! catalog target, and every rendered mutant still parses, prepares,
//! and imports under both interpreter engines (the tree-walk oracle
//! and the bytecode tier).

use profipy::workflow::{HostFactory, Workflow, WorkflowConfig};
use pyrt::vm::{Engine, Vm};
use scenarios::{default_catalog, default_corpus, CatalogTarget};
use std::rc::Rc;
use std::sync::Arc;

fn noop_factory() -> HostFactory {
    Arc::new(|_seed| Rc::new(pyrt::NoopHost::new()) as Rc<dyn pyrt::HostApi>)
}

fn workflow_for(target: &CatalogTarget, model: faultdsl::FaultModel) -> Workflow {
    Workflow::new(
        target.sources.clone(),
        target.workload.clone(),
        model,
        noop_factory(),
        WorkflowConfig::default(),
    )
    .unwrap_or_else(|e| panic!("workflow for {}: {e}", target.name))
}

#[test]
fn every_corpus_model_compiles_and_matches_a_catalog_site() {
    for entry in default_corpus() {
        entry
            .model
            .compile()
            .unwrap_or_else(|e| panic!("{} does not compile: {e}", entry.model.name));
        let mut sites = 0usize;
        for target in default_catalog() {
            if !entry.applies_to_target(&target) {
                continue;
            }
            sites += workflow_for(&target, entry.model.clone()).scan().len();
        }
        assert!(
            sites >= 1,
            "model {} matched no injection site on any applicable target",
            entry.model.name
        );
    }
}

#[test]
fn corpus_mutants_parse_prepare_and_import_under_both_engines() {
    for entry in default_corpus() {
        for target in default_catalog() {
            if !entry.applies_to_target(&target) {
                continue;
            }
            let workflow = workflow_for(&target, entry.model.clone());
            let points = workflow.scan();
            let Some(point) = points.first() else {
                continue;
            };
            let mutants = workflow
                .mutant_sources(point)
                .unwrap_or_else(|e| panic!("{}/{}: {e}", target.name, entry.model.name));
            for mutant in &mutants {
                let module = pysrc::parse_module(&mutant.text, &mutant.import_name)
                    .unwrap_or_else(|e| {
                        panic!(
                            "{}/{} mutant {} does not parse: {e}\n{}",
                            target.name, entry.model.name, mutant.import_name, mutant.text
                        )
                    });
                // Prepare (the scope-resolution pass both engines share).
                pyrt::prepare::prepare(Arc::new(module.clone()));
                // Import the mutated module under each engine: runs its
                // top level (class/function definitions) through the
                // full prepare→execute path.
                for engine in [Engine::TreeWalk, Engine::Bytecode] {
                    let mut vm = Vm::new();
                    vm.set_engine(engine);
                    for source in &mutants {
                        let parsed =
                            pysrc::parse_module(&source.text, &source.import_name).unwrap();
                        vm.register_source(&source.import_name, Rc::new(parsed));
                    }
                    vm.import_module(&mutant.import_name).unwrap_or_else(|e| {
                        panic!(
                            "{}/{} mutant {} fails to import under {engine:?}: \
                             {}: {}\n{}",
                            target.name,
                            entry.model.name,
                            mutant.import_name,
                            e.class_name,
                            e.message,
                            mutant.text
                        )
                    });
                }
            }
        }
    }
}

#[test]
fn tag_restricted_models_hit_their_intended_site() {
    let corpus = default_corpus();
    let catalog = default_catalog();
    let sites = |model_name: &str, target_name: &str| -> usize {
        let entry = corpus.iter().find(|m| m.model.name == model_name).unwrap();
        let target = catalog.iter().find(|t| t.name == target_name).unwrap();
        workflow_for(target, entry.model.clone()).scan().len()
    };
    assert!(sites("stale-read-amplifier", "kvstore") >= 1);
    assert!(sites("redelivery-storm", "broker") >= 1);
    assert!(sites("retry-starvation", "microsvc") >= 1);
}
