//! The scenario-matrix acceptance test (the PR's hard invariant): a
//! matrix of ≥ 3 targets × ≥ 6 fault models completes deterministically
//! — every cell's report byte-identical between the in-process
//! single-node service and a 2-worker fleet — and the aggregated
//! failure-class distribution renders as a valid `/metrics` exposition
//! (`campaign_failure_class_total{target,model,class}`) covering every
//! observed class.

use campaign::{ApiConfig, ApiServer, CampaignService, EngineConfig, HostRegistry, SharedService};
use cluster::{FleetConfig, FleetServer, WorkerAgent, WorkerConfig};
use scenarios::{default_corpus, noop_catalog, Matrix};
use std::collections::BTreeSet;
use std::time::Duration;

fn service() -> CampaignService {
    CampaignService::new(EngineConfig::default(), HostRegistry::with_noop()).unwrap()
}

fn matrix() -> Matrix {
    let mut matrix = Matrix::new(noop_catalog(), default_corpus());
    // Cap each cell so the full cross-product stays test-sized; the
    // cap is part of the spec, so both runs sample identically.
    matrix.sample_per_cell = 3;
    matrix
}

#[test]
fn matrix_is_byte_identical_between_single_node_and_fleet_and_exports_metrics() {
    let matrix = matrix();
    let cells = matrix.cells();
    let targets: BTreeSet<&str> = cells.iter().map(|c| c.target.as_str()).collect();
    assert!(targets.len() >= 3, "need >= 3 targets, got {targets:?}");
    for target in &targets {
        let models = cells.iter().filter(|c| &c.target.as_str() == target).count();
        assert!(models >= 6, "target {target} runs {models} models, need >= 6");
    }

    // Reference: the whole matrix through the in-process service.
    let local = matrix.run_local(&mut service()).expect("local matrix run");
    assert_eq!(local.cells.len(), cells.len());

    // The same matrix through a coordinator with two worker agents.
    let fleet = FleetServer::serve(
        "127.0.0.1:0",
        service(),
        ApiConfig::default(),
        FleetConfig {
            lease_ttl: Duration::from_secs(5),
            heartbeat_interval: Duration::from_millis(200),
            tick_interval: Duration::from_millis(50),
            ..FleetConfig::default()
        },
    )
    .unwrap();
    let addr = fleet.addr().to_string();
    let agent = |parallelism| {
        WorkerAgent::start(
            WorkerConfig {
                parallelism,
                ..WorkerConfig::new(addr.clone())
            },
            HostRegistry::with_noop(),
        )
        .unwrap()
    };
    let w1 = agent(2);
    let w2 = agent(2);
    let distributed = matrix
        .run_http(&addr, Duration::from_secs(300))
        .expect("fleet matrix run");
    let (s1, s2) = (w1.stop(), w2.stop());
    assert!(
        s1.executed + s2.executed > 0,
        "agents executed the matrix: {s1:?} {s2:?}"
    );
    fleet.shutdown();

    // THE invariant: every cell byte-identical across execution paths.
    assert_eq!(local.cells.len(), distributed.cells.len());
    for (a, b) in local.cells.iter().zip(&distributed.cells) {
        assert_eq!((&a.target, &a.model), (&b.target, &b.model), "cell order");
        assert_eq!(
            a.report_json, b.report_json,
            "cell {}/{} diverged between single-node and fleet",
            a.target, a.model
        );
    }

    // The matrix observed real failures across multiple classes.
    assert!(
        local.cells.iter().any(|c| c.failures > 0),
        "no cell failed — the corpus is not injecting\n{}",
        local.render_text()
    );
    let classes: BTreeSet<String> = local
        .cells
        .iter()
        .flat_map(|c| c.classes.keys().cloned())
        .collect();
    assert!(
        classes.len() >= 3,
        "expected a diverse class distribution, got {classes:?}"
    );

    // Export through a live API server's registry and scrape /metrics:
    // valid exposition, every observed (target, model, class) sampled.
    let shared = SharedService::new(service());
    let registry = shared.metrics_registry();
    let api = ApiServer::serve_with(
        "127.0.0.1:0",
        shared,
        ApiConfig::default(),
        scenarios::api::mount,
    )
    .unwrap();
    local.export_metrics(&registry);
    let mut client = httpd::Client::new(api.addr().to_string());
    let metrics = client.get("/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    obs::validate_exposition(&text).unwrap_or_else(|e| panic!("invalid exposition: {e}\n{text}"));
    for ((target, model, class), n) in local.class_totals() {
        let sample = format!(
            "campaign_failure_class_total{{target=\"{target}\",model=\"{model}\",class=\"{class}\"}} {n}"
        );
        assert!(text.contains(&sample), "missing sample {sample}\n{text}");
    }
    api.shutdown();
}

#[test]
fn api_matrix_lists_the_catalog() {
    let api = ApiServer::serve_with(
        "127.0.0.1:0",
        SharedService::new(service()),
        ApiConfig::default(),
        scenarios::api::mount,
    )
    .unwrap();
    let mut client = httpd::Client::new(api.addr().to_string());
    let resp = client.get("/api/matrix").unwrap();
    assert_eq!(resp.status, 200);
    let v = jsonlite::parse(&resp.text()).unwrap();
    assert!(v.req("targets").unwrap().as_arr().unwrap().len() >= 4);
    assert!(v.req("models").unwrap().as_arr().unwrap().len() >= 6);
    assert!(!v.req("cells").unwrap().as_arr().unwrap().is_empty());
    // The campaign surface still works next to the mounted route.
    assert_eq!(client.get("/healthz").unwrap().status, 200);
    api.shutdown();
}
