//! Scenario catalog: the repo as a self-contained fault-injection
//! benchmark suite.
//!
//! Three layers (ROADMAP "scenario diversity"):
//!
//! 1. **Target library** ([`catalog`]) — simulated
//!    software-under-injection written in the mini-Python subset, each
//!    a distinct failure surface with a deterministic workload: a
//!    replicated kv-store ([`kvstore`], stale reads / divergence), an
//!    at-least-once message broker ([`broker`], redelivery storms /
//!    poison messages), a retrying microservice call graph
//!    ([`microsvc`], timeout amplification / retry budgets), plus the
//!    paper's python-etcd case study from `crates/targets`.
//! 2. **Fault-model corpus** ([`corpus`]) — reusable `faultdsl` models
//!    (exception storms, `$HOG` resource hogs, `$TIMEOUT` latency,
//!    `$CORRUPT` wrong values, off-by-one, inverted conditions, and
//!    tag-restricted surface-specific models), each annotated with its
//!    expected failure class and applicable-target tags.
//! 3. **Matrix generator + runner** ([`matrix`]) — the applicability-
//!    filtered (target × model) cross-product, each cell an ordinary
//!    campaign through `CampaignService` (in-process) or a
//!    coordinator's REST API (single-node or fleet), aggregated into a
//!    [`MatrixReport`] and exported as
//!    `campaign_failure_class_total{target,model,class}` counters.
//!
//! Every cell's report is byte-identical between single-node and
//! fleet execution — the same invariant the cluster crate holds for
//! individual campaigns, extended to the whole matrix.

pub mod api;
pub mod broker;
pub mod catalog;
pub mod corpus;
pub mod kvstore;
pub mod matrix;
pub mod microsvc;

pub use catalog::{default_catalog, filter_by_globs, noop_catalog, CatalogTarget};
pub use corpus::{default_corpus, CorpusModel};
pub use matrix::{CellReport, Matrix, MatrixCell, MatrixReport};
