//! Simulated message broker with at-least-once delivery (mini-Python
//! source).
//!
//! Failure surface: redelivery storms and poison messages. Deliveries
//! stay in-flight until acked; a nack requeues the message (at-least-
//! once), and a message redelivered past its retry budget is
//! dead-lettered with a `PoisonMessage` error. Injections that drop
//! acks strand in-flight messages (the drain loop then stalls into the
//! round's `timeout` class); injections that turn acks into requeues
//! burn the retry budget and surface as poison-message crashes.

/// The broker library, registered as importable module `broker`.
pub const BROKER_SOURCE: &str = r#"
import logging

log = logging.getLogger('broker')


class BrokerError(Exception):
    pass


class PoisonMessage(BrokerError):
    pass


class Broker:
    def __init__(self, max_attempts=4):
        self.queue = []
        self.inflight = {}
        self.acked = []
        self.dead_letter = []
        self.max_attempts = max_attempts
        self.next_id = 0

    def publish(self, topic, payload):
        self.next_id = self.next_id + 1
        message = {'id': self.next_id, 'topic': topic, 'payload': payload, 'attempts': 0}
        self.queue.append(message)
        log.info('published ' + topic + ' #' + str(self.next_id))
        return self.next_id

    def deliver(self):
        batch_floor = 1
        if len(self.queue) < batch_floor:
            return None
        message = self.queue.pop(0)
        attempts = message['attempts'] + 1
        message['attempts'] = attempts
        if attempts > self.max_attempts:
            self.dead_letter.append(message)
            log.error('dead-lettered #' + str(message['id']))
            raise PoisonMessage('message ' + str(message['id']) + ' exceeded retry budget')
        self.inflight[message['id']] = message
        return message

    def ack(self, message_id):
        if message_id not in self.inflight:
            raise BrokerError('ack for unknown delivery ' + str(message_id))
        message = self.inflight.pop(message_id)
        self.acked.append(message['id'])
        return len(self.acked)

    def nack(self, message_id):
        if message_id not in self.inflight:
            raise BrokerError('nack for unknown delivery ' + str(message_id))
        message = self.inflight.pop(message_id)
        self.queue.append(message)
        log.info('requeued #' + str(message_id))
        return message['attempts']

    def backlog(self):
        return len(self.queue) + len(self.inflight)


class Consumer:
    def __init__(self, broker, name):
        self.broker = broker
        self.name = name
        self.seen = {}
        self.processed = []

    def poll(self):
        message = self.broker.deliver()
        if message is None:
            return 0
        count = self.seen.get(message['id'], 0)
        self.seen[message['id']] = count + 1
        if count > 0:
            log.info('duplicate delivery #' + str(message['id']))
        self.processed.append(message['payload'])
        self.broker.ack(message['id'])
        return 1
"#;

/// Deterministic workload: publish a batch, reject one delivery (the
/// at-least-once path), then drain the backlog and assert every
/// message landed exactly where it should.
pub const BROKER_WORKLOAD: &str = r#"
import broker
import logging

log = logging.getLogger('workload')
bus = broker.Broker(4)
consumer = broker.Consumer(bus, 'billing')


def check(cond, label):
    if not cond:
        log.error('consistency check failed: ' + label)
        raise AssertionError('inconsistent value read: ' + label)


def run(round):
    tag = str(round)
    first = bus.publish('orders', 'order-a-' + tag)
    bus.publish('orders', 'order-b-' + tag)
    bus.publish('billing', 'invoice-' + tag)
    check(bus.backlog() == 3, 'backlog after publish')

    message = bus.deliver()
    check(message['id'] == first, 'fifo first delivery')
    bus.nack(message['id'])

    delivered = 0
    while bus.backlog() > 0:
        delivered = delivered + consumer.poll()
    check(delivered == 3, 'all messages delivered')
    check(len(bus.dead_letter) == 0, 'no poison messages')
    check(consumer.seen[first] >= 1, 'redelivery reached consumer')
    check(len(bus.inflight) == 0, 'no stuck inflight messages')
    log.info('broker round ' + tag + ' ok')
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broker_sources_parse() {
        pysrc::parse_module(BROKER_SOURCE, "broker").unwrap();
        pysrc::parse_module(BROKER_WORKLOAD, "workload").unwrap();
    }
}
