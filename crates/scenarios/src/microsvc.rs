//! Simulated retrying microservice call graph (mini-Python source).
//!
//! Failure surface: timeout amplification and retry budgets. A
//! four-service graph (frontend → orders → {payments, inventory})
//! where every hop charges simulated latency against a request
//! deadline and transient faults are retried with exponential backoff
//! under a fixed attempt budget. Injected delays amplify down the call
//! chain into `UpstreamTimeout`; injections that break the retry loop
//! exhaust the budget (`RetryBudgetExhausted`) or starve the round
//! into the `timeout` class.

/// The call-graph library, registered as importable module `microsvc`.
pub const MICROSVC_SOURCE: &str = r#"
import logging

log = logging.getLogger('microsvc')


class UpstreamTimeout(Exception):
    pass


class TransientError(Exception):
    pass


class RetryBudgetExhausted(Exception):
    pass


def call_with_retry(service, request, deadline_ms, budget):
    attempts = 0
    backoff_ms = 5
    while attempts < budget:
        attempts = attempts + 1
        try:
            reply = service.handle(request, deadline_ms)
            return reply
        except TransientError:
            log.info('retrying ' + service.name + ' attempt ' + str(attempts))
            deadline_ms = deadline_ms - backoff_ms
            backoff_ms = backoff_ms * 2
    raise RetryBudgetExhausted('retry budget exhausted calling ' + service.name)


class Service:
    def __init__(self, name, latency_ms=10, flaky_period=0):
        self.name = name
        self.latency_ms = latency_ms
        self.flaky_period = flaky_period
        self.until_flake = flaky_period
        self.calls = 0
        self.deps = []

    def depends_on(self, service):
        self.deps.append(service)
        return self

    def handle(self, request, deadline_ms):
        self.calls = self.calls + 1
        cost = self.latency_ms
        if deadline_ms < cost:
            log.error(self.name + ' deadline exceeded')
            raise UpstreamTimeout(self.name + ' timed out handling ' + request)
        if self.flaky_period > 0:
            self.until_flake = self.until_flake - 1
            if self.until_flake <= 0:
                self.until_flake = self.flaky_period
                log.info(self.name + ' transient fault')
                raise TransientError(self.name + ' temporarily unavailable')
        total = cost
        remaining = deadline_ms - cost
        for dep in self.deps:
            reply = call_with_retry(dep, request, remaining, 2)
            total = total + reply
        return total


def build_graph():
    frontend = Service('frontend', 5, 0)
    orders = Service('orders', 10, 0)
    payments = Service('payments', 15, 3)
    inventory = Service('inventory', 10, 0)
    frontend.depends_on(orders)
    orders.depends_on(payments)
    orders.depends_on(inventory)
    return frontend
"#;

/// Deterministic workload: a burst of requests through the graph,
/// asserting end-to-end latency stays between the no-retry floor and
/// the request deadline.
pub const MICROSVC_WORKLOAD: &str = r#"
import microsvc
import logging

log = logging.getLogger('workload')
frontend = microsvc.build_graph()


def check(cond, label):
    if not cond:
        log.error('consistency check failed: ' + label)
        raise AssertionError('inconsistent value read: ' + label)


def run(round):
    tag = str(round)
    for i in range(4):
        latency = microsvc.call_with_retry(frontend, 'req-' + tag + '-' + str(i), 200, 2)
        check(latency >= 40, 'latency floor req ' + str(i))
        check(latency <= 200, 'latency within deadline req ' + str(i))
    check(frontend.calls >= 4, 'frontend served every request')
    log.info('microsvc round ' + tag + ' ok')
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microsvc_sources_parse() {
        pysrc::parse_module(MICROSVC_SOURCE, "microsvc").unwrap();
        pysrc::parse_module(MICROSVC_WORKLOAD, "workload").unwrap();
    }
}
