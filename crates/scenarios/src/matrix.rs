//! The campaign matrix: (target × fault model) cross-product,
//! applicability-filtered, each cell submitted as an ordinary campaign
//! through the `CampaignService` path (in-process or over HTTP against
//! a coordinator), aggregated into a [`MatrixReport`].
//!
//! Determinism contract: a cell's report depends only on its
//! [`campaign::CampaignSpec`] — which the matrix derives entirely from
//! its own seed and the (target, model) names — so the same matrix run
//! single-node and through a worker fleet produces byte-identical
//! per-cell reports. The acceptance test in `tests/matrix.rs` holds
//! this line.

use crate::catalog::CatalogTarget;
use crate::corpus::CorpusModel;
use campaign::{report_to_value, CampaignService, CampaignSpec};
use jsonlite::Value;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// A configured matrix run.
#[derive(Clone, Debug)]
pub struct Matrix {
    /// Submitting user (cells land in this user's session).
    pub user: String,
    /// Matrix seed; per-cell campaign seeds derive from it.
    pub seed: u64,
    /// Per-cell experiment cap (`filter.sample`); 0 = run every point.
    pub sample_per_cell: usize,
    /// The targets (rows).
    pub targets: Vec<CatalogTarget>,
    /// The fault models (columns).
    pub models: Vec<CorpusModel>,
}

/// One applicable (target, model) cell with its derived campaign.
#[derive(Clone, Debug)]
pub struct MatrixCell {
    /// Target name.
    pub target: String,
    /// Model name.
    pub model: String,
    /// Expected dominant failure class (corpus metadata).
    pub failure_class: String,
    /// The cell's campaign spec.
    pub spec: CampaignSpec,
}

/// One executed cell: the campaign report plus the parsed
/// failure-class distribution.
#[derive(Clone, Debug)]
pub struct CellReport {
    /// Target name.
    pub target: String,
    /// Model name.
    pub model: String,
    /// Expected dominant failure class (corpus metadata).
    pub expected_class: String,
    /// Experiments executed.
    pub executed: u64,
    /// Experiments that failed.
    pub failures: u64,
    /// Observed failure-class distribution (`mode_distribution`).
    pub classes: BTreeMap<String, u64>,
    /// The canonical wire-format report (the byte-identity unit).
    pub report_json: String,
}

/// The aggregated matrix outcome.
#[derive(Clone, Debug, Default)]
pub struct MatrixReport {
    /// Per-cell reports, in matrix order (targets outer, models inner).
    pub cells: Vec<CellReport>,
}

impl Matrix {
    /// A matrix over `targets` × `models` with the default knobs.
    pub fn new(targets: Vec<CatalogTarget>, models: Vec<CorpusModel>) -> Matrix {
        Matrix {
            user: "matrix".to_string(),
            seed: 17,
            sample_per_cell: 4,
            targets,
            models,
        }
    }

    /// The applicable cells: full cross-product filtered by the
    /// models' target tags, in deterministic matrix order.
    pub fn cells(&self) -> Vec<MatrixCell> {
        let mut cells = Vec::new();
        for target in &self.targets {
            for model in &self.models {
                if !model.applies_to_target(target) {
                    continue;
                }
                cells.push(MatrixCell {
                    target: target.name.clone(),
                    model: model.model.name.clone(),
                    failure_class: model.failure_class.clone(),
                    spec: self.cell_spec(target, model),
                });
            }
        }
        cells
    }

    /// Derives the cell's campaign spec. The seed mixes the matrix
    /// seed with both names, so every cell samples its plan
    /// independently but reproducibly.
    fn cell_spec(&self, target: &CatalogTarget, model: &CorpusModel) -> CampaignSpec {
        let mut spec = CampaignSpec::new(
            &self.user,
            &format!("matrix/{}/{}", target.name, model.model.name),
            &target.host,
            target.sources.clone(),
            target.workload.clone(),
            model.model.clone(),
        );
        spec.setup = target.setup.clone();
        spec.seed = jsonlite::combine_hash64(&[
            self.seed,
            jsonlite::stable_hash64(target.name.as_bytes()),
            jsonlite::stable_hash64(model.model.name.as_bytes()),
        ]);
        spec.filter.sample = self.sample_per_cell;
        spec
    }

    /// Runs every cell through an in-process service, driving the
    /// queue to completion.
    ///
    /// # Errors
    ///
    /// Submission/drive errors, or a cell failing to produce a report.
    pub fn run_local(&self, service: &mut CampaignService) -> Result<MatrixReport, String> {
        let cells = self.cells();
        let ids: Vec<(MatrixCell, String)> = cells
            .into_iter()
            .map(|cell| {
                let id = service
                    .submit(cell.spec.clone())
                    .map_err(|e| format!("submit {}/{}: {e}", cell.target, cell.model))?;
                Ok((cell, id))
            })
            .collect::<Result<_, String>>()?;
        // One drive pass completes every queued campaign; the retry
        // loop only matters if a drive slice ever returns early.
        for _ in 0..ids.len() + 1 {
            service.drive(None).map_err(|e| format!("drive: {e}"))?;
            if ids
                .iter()
                .all(|(_, id)| service.poll(id).is_some_and(|s| s.state.as_str() == "completed"))
            {
                break;
            }
        }
        let mut report = MatrixReport::default();
        for (cell, id) in ids {
            let campaign_report = service
                .engine()
                .report(&id)
                .ok_or_else(|| format!("cell {}/{} did not complete", cell.target, cell.model))?;
            let json = report_to_value(&campaign_report).pretty();
            report.cells.push(CellReport::from_wire(&cell, &json)?);
        }
        Ok(report)
    }

    /// Runs every cell against a coordinator's REST API (single-node
    /// or fleet — the campaign surface is identical): submit all
    /// cells, poll to completion, fetch the wire-format reports.
    ///
    /// # Errors
    ///
    /// HTTP/protocol errors, a failed campaign, or `timeout` elapsing
    /// before every cell completes.
    pub fn run_http(&self, addr: &str, timeout: Duration) -> Result<MatrixReport, String> {
        let mut client = httpd::Client::new(addr);
        let cells = self.cells();
        let ids: Vec<(MatrixCell, String)> = cells
            .into_iter()
            .map(|cell| {
                let resp = client
                    .post_json("/api/campaigns", &cell.spec.to_json())
                    .map_err(|e| format!("submit {}/{}: {e}", cell.target, cell.model))?;
                if resp.status != 201 {
                    return Err(format!(
                        "submit {}/{}: HTTP {} {}",
                        cell.target,
                        cell.model,
                        resp.status,
                        resp.text()
                    ));
                }
                let id = jsonlite::parse(&resp.text())?
                    .req("id")?
                    .as_str()
                    .ok_or("campaign id must be a string")?
                    .to_string();
                Ok((cell, id))
            })
            .collect::<Result<_, String>>()?;
        let deadline = Instant::now() + timeout;
        for (cell, id) in &ids {
            loop {
                let resp = client
                    .get(&format!("/api/campaigns/{id}"))
                    .map_err(|e| format!("poll {id}: {e}"))?;
                let v = jsonlite::parse(&resp.text())?;
                match v.req("state")?.as_str().unwrap_or("") {
                    "completed" => break,
                    "failed" => {
                        return Err(format!(
                            "cell {}/{} failed: {}",
                            cell.target,
                            cell.model,
                            resp.text()
                        ))
                    }
                    state => {
                        if Instant::now() >= deadline {
                            return Err(format!(
                                "cell {}/{} stuck in state {state}",
                                cell.target, cell.model
                            ));
                        }
                        std::thread::sleep(Duration::from_millis(20));
                    }
                }
            }
        }
        let mut report = MatrixReport::default();
        for (cell, id) in ids {
            let resp = client
                .get(&format!("/api/campaigns/{id}/report"))
                .map_err(|e| format!("report {id}: {e}"))?;
            if resp.status != 200 {
                return Err(format!("report {id}: HTTP {}", resp.status));
            }
            report.cells.push(CellReport::from_wire(&cell, &resp.text())?);
        }
        Ok(report)
    }
}

impl CellReport {
    /// Parses a cell report out of the canonical wire-format campaign
    /// report (`report_to_value` text — from the engine or straight
    /// off `GET /api/campaigns/:id/report`).
    ///
    /// # Errors
    ///
    /// Malformed report JSON.
    pub fn from_wire(cell: &MatrixCell, report_json: &str) -> Result<CellReport, String> {
        let v = jsonlite::parse(report_json)?;
        let mut classes = BTreeMap::new();
        if let Value::Obj(pairs) = v.req("mode_distribution")? {
            for (class, n) in pairs {
                classes.insert(
                    class.clone(),
                    n.as_u64()
                        .ok_or_else(|| format!("mode count for '{class}' must be a u64"))?,
                );
            }
        }
        Ok(CellReport {
            target: cell.target.clone(),
            model: cell.model.clone(),
            expected_class: cell.failure_class.clone(),
            executed: v.req("executed")?.as_u64().ok_or("'executed' must be a u64")?,
            failures: v.req("failures")?.as_u64().ok_or("'failures' must be a u64")?,
            classes,
            report_json: report_json.to_string(),
        })
    }
}

impl MatrixReport {
    /// Failure-class totals aggregated per (target, model, class) —
    /// the exact label set the exported counters carry.
    pub fn class_totals(&self) -> BTreeMap<(String, String, String), u64> {
        let mut totals = BTreeMap::new();
        for cell in &self.cells {
            for (class, n) in &cell.classes {
                *totals
                    .entry((cell.target.clone(), cell.model.clone(), class.clone()))
                    .or_insert(0) += n;
            }
        }
        totals
    }

    /// Exports the per-cell failure-class distributions as
    /// `campaign_failure_class_total{target,model,class}` counters.
    /// Counters are create-or-get by label set: export once per run
    /// (or into a fresh registry) to avoid double-counting.
    pub fn export_metrics(&self, registry: &obs::Registry) {
        for ((target, model, class), n) in self.class_totals() {
            registry
                .counter_with(
                    "campaign_failure_class_total",
                    "Experiments per failure class, by matrix cell (target x fault model)",
                    &[
                        ("target", target.as_str()),
                        ("model", model.as_str()),
                        ("class", class.as_str()),
                    ],
                )
                .add(n);
        }
    }

    /// The matrix report as a JSON value.
    pub fn to_value(&self) -> Value {
        Value::obj(vec![(
            "cells",
            Value::Arr(
                self.cells
                    .iter()
                    .map(|cell| {
                        Value::obj(vec![
                            ("target", Value::str(&cell.target)),
                            ("model", Value::str(&cell.model)),
                            ("expected_class", Value::str(&cell.expected_class)),
                            ("executed", Value::UInt(cell.executed)),
                            ("failures", Value::UInt(cell.failures)),
                            (
                                "classes",
                                Value::Obj(
                                    cell.classes
                                        .iter()
                                        .map(|(c, n)| (c.clone(), Value::UInt(*n)))
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        )])
    }

    /// A fixed-width text table of the matrix (CLI output).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:<22} {:>4} {:>5}  {}\n",
            "target", "model", "run", "fail", "failure classes"
        ));
        for cell in &self.cells {
            let classes = cell
                .classes
                .iter()
                .map(|(c, n)| format!("{c}={n}"))
                .collect::<Vec<_>>()
                .join(" ");
            out.push_str(&format!(
                "{:<12} {:<22} {:>4} {:>5}  {}\n",
                cell.target, cell.model, cell.executed, cell.failures, classes
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::noop_catalog;
    use crate::corpus::default_corpus;

    fn matrix() -> Matrix {
        Matrix::new(noop_catalog(), default_corpus())
    }

    #[test]
    fn cells_filter_by_applicability_and_stay_deterministic() {
        let m = matrix();
        let cells = m.cells();
        // 3 targets x 6 generic models + one restricted model each.
        assert_eq!(cells.len(), 3 * 6 + 3, "unexpected cell count");
        assert!(cells
            .iter()
            .any(|c| c.target == "kvstore" && c.model == "stale-read-amplifier"));
        assert!(!cells
            .iter()
            .any(|c| c.target == "broker" && c.model == "stale-read-amplifier"));
        // Deterministic: same matrix, same cells, same specs.
        let again = m.cells();
        assert_eq!(cells.len(), again.len());
        for (a, b) in cells.iter().zip(&again) {
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.spec.content_hash(), b.spec.content_hash());
        }
    }

    #[test]
    fn cell_seeds_differ_but_derive_from_matrix_seed() {
        let m = matrix();
        let cells = m.cells();
        let mut seeds: Vec<u64> = cells.iter().map(|c| c.spec.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), cells.len(), "cell seeds must be distinct");

        let mut reseeded = matrix();
        reseeded.seed = 18;
        assert_ne!(cells[0].spec.seed, reseeded.cells()[0].spec.seed);
    }

    #[test]
    fn cell_spec_carries_target_knobs() {
        let m = Matrix::new(crate::catalog::default_catalog(), default_corpus());
        let cells = m.cells();
        let etcd_cell = cells
            .iter()
            .find(|c| c.target == "python-etcd")
            .expect("etcd target present");
        assert_eq!(etcd_cell.spec.host, "etcd");
        assert_eq!(etcd_cell.spec.setup, vec![vec!["etcd-start".to_string()]]);
        let kv_cell = cells.iter().find(|c| c.target == "kvstore").unwrap();
        assert_eq!(kv_cell.spec.host, "noop");
        assert!(kv_cell.spec.setup.is_empty());
        assert_eq!(kv_cell.spec.filter.sample, m.sample_per_cell);
    }

    #[test]
    fn report_renders_and_aggregates() {
        let cell = MatrixCell {
            target: "kvstore".into(),
            model: "off-by-one".into(),
            failure_class: "inconsistent-read".into(),
            spec: CampaignSpec::new(
                "matrix",
                "matrix/kvstore/off-by-one",
                "noop",
                vec![],
                String::new(),
                faultdsl::predefined_models(),
            ),
        };
        let wire = r#"{
  "name": "matrix/kvstore/off-by-one",
  "planned_points": 3,
  "covered_points": null,
  "executed": 3,
  "failures": 2,
  "availability": 0.5,
  "persistent": 0,
  "logging": 1.0,
  "propagation": 0.0,
  "total_virtual_secs": 1.0,
  "mode_distribution": {"inconsistent-read": 2, "no-failure": 1},
  "per_spec": {}
}"#;
        let parsed = CellReport::from_wire(&cell, wire).unwrap();
        assert_eq!(parsed.executed, 3);
        assert_eq!(parsed.classes.get("inconsistent-read"), Some(&2));
        let report = MatrixReport {
            cells: vec![parsed],
        };
        let totals = report.class_totals();
        assert_eq!(
            totals.get(&(
                "kvstore".to_string(),
                "off-by-one".to_string(),
                "inconsistent-read".to_string()
            )),
            Some(&2)
        );
        let text = report.render_text();
        assert!(text.contains("kvstore"), "{text}");
        assert!(text.contains("inconsistent-read=2"), "{text}");

        let registry = obs::Registry::new();
        report.export_metrics(&registry);
        let rendered = registry.render();
        assert!(
            rendered.contains(
                "campaign_failure_class_total{target=\"kvstore\",model=\"off-by-one\",class=\"inconsistent-read\"} 2"
            ),
            "{rendered}"
        );
        obs::validate_exposition(&rendered).unwrap();
    }
}
