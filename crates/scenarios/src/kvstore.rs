//! Simulated replicated key-value store (mini-Python source).
//!
//! Failure surface: leader/follower divergence and stale reads. The
//! leader commits every operation to an ordered log; followers apply
//! the log asynchronously via `replicate()`. Injections that skip or
//! corrupt replication leave followers lagging, which the workload's
//! consistency checks observe as `inconsistent value read` (the
//! classifier's `inconsistent-read` class) or as a `ReplicationError`
//! when the lag guard trips.

/// The replicated store, registered as importable module `kvstore`.
pub const KVSTORE_SOURCE: &str = r#"
import logging

log = logging.getLogger('kvstore')


class ReplicationError(Exception):
    pass


class Replica:
    def __init__(self, name):
        self.name = name
        self.store = {}
        self.applied = 0

    def apply(self, op):
        kind = op['kind']
        if kind == 'set':
            self.store[op['key']] = op['value']
        if kind == 'delete':
            if op['key'] in self.store:
                self.store.pop(op['key'])
        self.applied = self.applied + 1
        return self.applied


class Cluster:
    def __init__(self, followers=2):
        self.leader = Replica('leader')
        self.followers = []
        self.log_entries = []
        self.commit_index = 0
        self.lag_limit = 0
        for i in range(followers):
            member = Replica('follower-' + str(i))
            self.followers.append(member)

    def _append(self, op):
        index = self.leader.apply(op)
        self.log_entries.append(op)
        self.commit_index = len(self.log_entries)
        log.info('committed ' + op['kind'] + ' ' + op['key'])
        return index

    def replicate(self):
        shipped = 0
        for follower in self.followers:
            while follower.applied < self.commit_index:
                op = self.log_entries[follower.applied]
                follower.apply(op)
                shipped = shipped + 1
        return shipped

    def set(self, key, value):
        op = {'kind': 'set', 'key': key, 'value': value}
        index = self._append(op)
        self.replicate()
        return index

    def delete(self, key):
        op = {'kind': 'delete', 'key': key, 'value': None}
        index = self._append(op)
        self.replicate()
        return index

    def read_leader(self, key):
        if key in self.leader.store:
            return self.leader.store[key]
        return None

    def read_follower(self, index, key):
        follower = self.followers[index]
        lag = self.commit_index - follower.applied
        if lag > self.lag_limit:
            log.error('stale follower ' + follower.name)
            raise ReplicationError('replica lag ' + str(lag) + ' on ' + follower.name)
        if key in follower.store:
            return follower.store[key]
        return None

    def quorum_read(self, key):
        value = self.read_leader(key)
        votes = {}
        votes[str(value)] = 1
        for i in range(len(self.followers)):
            candidate = self.read_follower(i, key)
            tally = votes.get(str(candidate), 0)
            votes[str(candidate)] = tally + 1
        best = None
        best_count = 0
        for candidate in votes.keys():
            count = votes[candidate]
            if count > best_count:
                best = candidate
                best_count = count
        if best != str(value):
            log.error('quorum disagrees with leader for ' + key)
            raise ReplicationError('quorum disagrees with leader for ' + key)
        return value
"#;

/// Deterministic workload: writes through the leader, reads back from
/// every replica tier, and asserts agreement after each step.
pub const KVSTORE_WORKLOAD: &str = r#"
import kvstore
import logging

log = logging.getLogger('workload')
cluster = kvstore.Cluster(3)


def check(cond, label):
    if not cond:
        log.error('consistency check failed: ' + label)
        raise AssertionError('inconsistent value read: ' + label)


def run(round):
    tag = str(round)
    cluster.set('/users/alice', 'admin-' + tag)
    cluster.set('/users/bob', 'viewer-' + tag)
    check(cluster.read_leader('/users/alice') == 'admin-' + tag, 'leader read alice')
    check(cluster.read_follower(0, '/users/alice') == 'admin-' + tag, 'follower-0 read alice')
    check(cluster.read_follower(1, '/users/bob') == 'viewer-' + tag, 'follower-1 read bob')
    cluster.set('/config/limit', '10')
    value = cluster.quorum_read('/config/limit')
    check(value == '10', 'quorum read limit')
    cluster.delete('/users/bob')
    check(cluster.read_leader('/users/bob') is None, 'bob deleted on leader')
    check(cluster.read_follower(2, '/users/bob') is None, 'bob deleted on follower-2')
    cluster.set('/epoch', tag)
    check(cluster.quorum_read('/epoch') == tag, 'epoch quorum')
    log.info('kvstore round ' + tag + ' ok')
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kvstore_sources_parse() {
        pysrc::parse_module(KVSTORE_SOURCE, "kvstore").unwrap();
        pysrc::parse_module(KVSTORE_WORKLOAD, "workload").unwrap();
    }
}
