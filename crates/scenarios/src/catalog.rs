//! The target catalog: every simulated software-under-injection the
//! matrix can exercise, with the metadata the generator filters on.

use crate::{broker, kvstore, microsvc};

/// One catalog entry: a target library plus its deterministic
/// workload and the campaign knobs it needs.
#[derive(Clone, Debug)]
pub struct CatalogTarget {
    /// Catalog name (unique; matrix cells are keyed on it).
    pub name: String,
    /// What the target simulates.
    pub description: String,
    /// Applicability tags fault models filter on (e.g. `replicated`).
    pub tags: Vec<String>,
    /// Host environment name (resolved via the engine's registry).
    pub host: String,
    /// Setup commands run at deploy.
    pub setup: Vec<Vec<String>>,
    /// Target sources: `(import name, source text)`.
    pub sources: Vec<(String, String)>,
    /// Workload module text.
    pub workload: String,
}

impl CatalogTarget {
    fn new(
        name: &str,
        description: &str,
        tags: &[&str],
        sources: Vec<(&str, &str)>,
        workload: &str,
    ) -> CatalogTarget {
        CatalogTarget {
            name: name.to_string(),
            description: description.to_string(),
            tags: tags.iter().map(|t| (*t).to_string()).collect(),
            host: "noop".to_string(),
            setup: Vec::new(),
            sources: sources
                .into_iter()
                .map(|(n, t)| (n.to_string(), t.to_string()))
                .collect(),
            workload: workload.to_string(),
        }
    }

    /// True when this target carries `tag`.
    pub fn has_tag(&self, tag: &str) -> bool {
        self.tags.iter().any(|t| t == tag)
    }

    /// The catalog entry as a JSON value (the `/api/matrix` listing
    /// shape; sources are summarized by module name, not inlined).
    pub fn to_value(&self) -> jsonlite::Value {
        use jsonlite::Value;
        Value::obj(vec![
            ("name", Value::str(&self.name)),
            ("description", Value::str(&self.description)),
            (
                "tags",
                Value::Arr(self.tags.iter().map(Value::str).collect()),
            ),
            ("host", Value::str(&self.host)),
            (
                "modules",
                Value::Arr(self.sources.iter().map(|(n, _)| Value::str(n)).collect()),
            ),
        ])
    }
}

/// The self-contained targets: pure mini-Python state machines that
/// run under the `noop` host (no simulated external services), so any
/// node — coordinator or fleet worker — can execute them.
pub fn noop_catalog() -> Vec<CatalogTarget> {
    vec![
        CatalogTarget::new(
            "kvstore",
            "Replicated key-value store: leader log, async followers, quorum reads \
             (stale-read / divergence failure surface)",
            &["replicated", "kv"],
            vec![("kvstore", kvstore::KVSTORE_SOURCE)],
            kvstore::KVSTORE_WORKLOAD,
        ),
        CatalogTarget::new(
            "broker",
            "Message broker with at-least-once delivery: in-flight tracking, nack \
             redelivery, retry budget, dead-letter queue (redelivery-storm / \
             poison-message failure surface)",
            &["queued", "broker"],
            vec![("broker", broker::BROKER_SOURCE)],
            broker::BROKER_WORKLOAD,
        ),
        CatalogTarget::new(
            "microsvc",
            "Retrying microservice call graph: per-hop latency against a request \
             deadline, exponential backoff, bounded retry budget (timeout-\
             amplification failure surface)",
            &["retrying", "rpc"],
            vec![("microsvc", microsvc::MICROSVC_SOURCE)],
            microsvc::MICROSVC_WORKLOAD,
        ),
    ]
}

/// The full catalog: the self-contained targets plus the paper's
/// python-etcd case-study client (which needs the `etcd` simulated
/// host and its `etcd-start` setup command).
pub fn default_catalog() -> Vec<CatalogTarget> {
    let mut catalog = noop_catalog();
    let mut etcd = CatalogTarget::new(
        "python-etcd",
        "The paper's §V case study: python-etcd-like client against the simulated \
         etcd host (reconnection, membership, guarded-request failure surface)",
        &["kv", "etcd", "external"],
        vec![("etcd", targets::CLIENT_SOURCE)],
        targets::WORKLOAD_BASIC,
    );
    etcd.host = "etcd".to_string();
    etcd.setup = vec![vec!["etcd-start".to_string()]];
    catalog.push(etcd);
    catalog
}

/// Filters a catalog by comma-separated name globs (`kv*,broker`).
/// An empty pattern list keeps everything.
pub fn filter_by_globs(catalog: Vec<CatalogTarget>, globs: &[String]) -> Vec<CatalogTarget> {
    if globs.is_empty() {
        return catalog;
    }
    catalog
        .into_iter()
        .filter(|t| globs.iter().any(|g| faultdsl::glob_match(g, &t.name)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique_and_tagged() {
        let catalog = default_catalog();
        assert!(catalog.len() >= 4);
        let mut names: Vec<&str> = catalog.iter().map(|t| t.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), catalog.len(), "duplicate catalog names");
        for target in &catalog {
            assert!(!target.tags.is_empty(), "{} has no tags", target.name);
            assert!(!target.sources.is_empty(), "{} has no sources", target.name);
        }
    }

    #[test]
    fn every_catalog_source_parses() {
        for target in default_catalog() {
            for (name, text) in &target.sources {
                pysrc::parse_module(text, name)
                    .unwrap_or_else(|e| panic!("{}/{name} does not parse: {e}", target.name));
            }
            pysrc::parse_module(&target.workload, "workload")
                .unwrap_or_else(|e| panic!("{} workload does not parse: {e}", target.name));
        }
    }

    #[test]
    fn glob_filter_selects_by_name() {
        let names = |globs: &[&str]| -> Vec<String> {
            filter_by_globs(
                default_catalog(),
                &globs.iter().map(|g| (*g).to_string()).collect::<Vec<_>>(),
            )
            .into_iter()
            .map(|t| t.name)
            .collect()
        };
        assert_eq!(names(&["kv*"]), vec!["kvstore"]);
        assert_eq!(names(&["broker", "micro*"]), vec!["broker", "microsvc"]);
        assert_eq!(names(&[]).len(), default_catalog().len());
        assert!(names(&["nope"]).is_empty());
    }
}
