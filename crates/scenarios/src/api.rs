//! The `/api/matrix` surface: the scenario catalog as JSON, mounted
//! onto the campaign API router the same way the cluster crate mounts
//! the fleet surface (`ApiServer::serve_with`).

use crate::catalog::default_catalog;
use crate::corpus::default_corpus;
use crate::matrix::Matrix;
use campaign::SharedService;
use httpd::{Response, Router};
use jsonlite::Value;

/// The catalog listing: targets, models, and the applicable cells the
/// default matrix would run.
pub fn catalog_value() -> Value {
    let targets = default_catalog();
    let models = default_corpus();
    let cells = Matrix::new(targets.clone(), models.clone()).cells();
    Value::obj(vec![
        (
            "targets",
            Value::Arr(targets.iter().map(|t| t.to_value()).collect()),
        ),
        (
            "models",
            Value::Arr(models.iter().map(|m| m.to_value()).collect()),
        ),
        (
            "cells",
            Value::Arr(
                cells
                    .iter()
                    .map(|c| {
                        Value::obj(vec![
                            ("target", Value::str(&c.target)),
                            ("model", Value::str(&c.model)),
                            ("campaign", Value::str(&c.spec.name)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Mounts `GET /api/matrix` onto `router` — pass to
/// [`campaign::ApiServer::serve_with`].
pub fn mount(router: Router, _shared: &SharedService) -> Router {
    router.route("GET", "/api/matrix", |_req| {
        Response::json(200, catalog_value().pretty())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_value_lists_targets_models_and_cells() {
        let v = catalog_value();
        let targets = v.req("targets").unwrap().as_arr().unwrap();
        let models = v.req("models").unwrap().as_arr().unwrap();
        let cells = v.req("cells").unwrap().as_arr().unwrap();
        assert!(targets.len() >= 4);
        assert!(models.len() >= 6);
        // Cross-product minus tag-filtered cells: more cells than
        // targets, fewer than the full product.
        assert!(cells.len() > targets.len());
        assert!(cells.len() < targets.len() * models.len());
        let first = &cells[0];
        assert!(first
            .req("campaign")
            .unwrap()
            .as_str()
            .unwrap()
            .starts_with("matrix/"));
    }
}
