//! The fault-model corpus: reusable `faultdsl` models shipped with the
//! scenario catalog, each annotated with the failure class it is
//! expected to dominate and the target tags it applies to.

use crate::catalog::CatalogTarget;
use faultdsl::{FaultModel, SpecSource};

/// A catalog fault model: the compiled-on-demand `faultdsl` model plus
/// the metadata the matrix generator filters and reports on.
#[derive(Clone, Debug)]
pub struct CorpusModel {
    /// The reusable fault model (name is the matrix cell key).
    pub model: FaultModel,
    /// The failure class this model is expected to dominate (one of
    /// the classifier labels, e.g. `timeout` or `inconsistent-read`).
    pub failure_class: String,
    /// Target tags this model applies to; `any` applies everywhere.
    pub applies_to: Vec<String>,
}

impl CorpusModel {
    /// True when the model applies to `target` (tag intersection, with
    /// `any` as the universal tag).
    pub fn applies_to_target(&self, target: &CatalogTarget) -> bool {
        self.applies_to
            .iter()
            .any(|tag| tag == "any" || target.has_tag(tag))
    }

    /// The corpus entry as a JSON value (the `/api/matrix` listing
    /// shape).
    pub fn to_value(&self) -> jsonlite::Value {
        use jsonlite::Value;
        Value::obj(vec![
            ("name", Value::str(&self.model.name)),
            ("description", Value::str(&self.model.description)),
            ("failure_class", Value::str(&self.failure_class)),
            (
                "applies_to",
                Value::Arr(self.applies_to.iter().map(Value::str).collect()),
            ),
            ("specs", Value::UInt(self.model.specs.len() as u64)),
        ])
    }
}

fn spec(name: &str, description: &str, dsl: &str) -> SpecSource {
    SpecSource {
        name: name.to_string(),
        description: description.to_string(),
        dsl: dsl.trim_start_matches('\n').to_string(),
    }
}

fn corpus_model(
    name: &str,
    description: &str,
    failure_class: &str,
    applies_to: &[&str],
    specs: Vec<SpecSource>,
) -> CorpusModel {
    CorpusModel {
        model: FaultModel {
            name: name.to_string(),
            description: description.to_string(),
            specs,
        },
        failure_class: failure_class.to_string(),
        applies_to: applies_to.iter().map(|t| (*t).to_string()).collect(),
    }
}

/// The shipped corpus. Six generic models (applicable to every
/// target) plus one tag-restricted model per failure surface, so the
/// matrix generator's applicability filter has real work to do.
pub fn default_corpus() -> Vec<CorpusModel> {
    vec![
        corpus_model(
            "exception-storm",
            "Raise an injected exception in place of a call statement \
             (error-handler coverage, paper §III Throw Exception)",
            "crash",
            &["any"],
            vec![spec(
                "STORM-RAISE",
                "Replace a statement-level call with an injected RuntimeError",
                r#"
change {
    $BLOCK{tag=b1; stmts=1,*}
    $CALL{name=*}(...)
} into {
    $BLOCK{tag=b1}
    raise RuntimeError('injected exception')
}"#,
            )],
        ),
        corpus_model(
            "resource-hog",
            "Spawn a stale CPU-hog thread after an assigned call via the \
             $HOG hook (paper §III high resource consumption)",
            "timeout",
            &["any"],
            vec![spec(
                "HOG-AFTER-CALL",
                "CPU hog left running after a call returns",
                r#"
change {
    $VAR#r = $CALL#c{name=*}(...)
} into {
    $VAR#r = $CALL#c(...)
    $HOG
}"#,
            )],
        ),
        corpus_model(
            "latency-injection",
            "Charge a large artificial delay before an assigned call via \
             $TIMEOUT (paper §III artificial time delay)",
            "timeout",
            &["any"],
            vec![spec(
                "DELAY-BEFORE-CALL",
                "30 virtual seconds of latency ahead of the call",
                r#"
change {
    $VAR#r = $CALL#c{name=*}(...)
} into {
    $TIMEOUT{secs=30}
    $VAR#r = $CALL#c(...)
}"#,
            )],
        ),
        corpus_model(
            "value-corruption",
            "Corrupt the value produced by a call with $CORRUPT, so wrong \
             data propagates instead of an error (paper §III wrong value)",
            "inconsistent-read",
            &["any"],
            vec![spec(
                "CORRUPT-RESULT",
                "Wrap an assigned call's result in profipy_rt.corrupt",
                r#"
change {
    $VAR#r = $CALL#c{name=*}(...)
} into {
    $VAR#r = $CORRUPT($CALL#c(...))
}"#,
            )],
        ),
        corpus_model(
            "off-by-one",
            "Shift a numeric initialization by one (G-SWFIT wrong value \
             assigned, boundary form)",
            "inconsistent-read",
            &["any"],
            vec![spec(
                "OFF-BY-ONE-INIT",
                "Numeric initialization incremented by one",
                r#"
change {
    $VAR#x = $NUM#n
} into {
    $VAR#x = $NUM#n + 1
}"#,
            )],
        ),
        corpus_model(
            "inverted-condition",
            "Negate an IF guard, taking the branch exactly when it should \
             be skipped (G-SWFIT wrong branch condition)",
            "crash",
            &["any"],
            vec![spec(
                "INVERT-GUARD",
                "IF condition wrapped in not",
                r#"
change {
    if $EXPR#c:
        $BLOCK{tag=body; stmts=1,*}
} into {
    if not $EXPR#c:
        $BLOCK{tag=body}
}"#,
            )],
        ),
        corpus_model(
            "stale-read-amplifier",
            "Skip the replication step after a committed write, leaving \
             followers permanently stale (replicated stores only)",
            "inconsistent-read",
            &["replicated"],
            vec![spec(
                "SKIP-REPLICATE",
                "Omit the self.replicate() fan-out call",
                r#"
change {
    $CALL{name=self.replicate}(...)
} into {
    pass
}"#,
            )],
        ),
        corpus_model(
            "redelivery-storm",
            "Drop the consumer's ack, stranding deliveries in-flight so \
             the drain loop never converges (queued brokers only)",
            "timeout",
            &["queued"],
            vec![spec(
                "DROP-ACK",
                "Omit the *.ack(...) call after processing",
                r#"
change {
    $CALL{name=*.ack}(...)
} into {
    pass
}"#,
            )],
        ),
        corpus_model(
            "retry-starvation",
            "Stall every upstream hop with a long delay so retries amplify \
             the latency past the request deadline (retrying graphs only)",
            "timeout",
            &["retrying"],
            vec![spec(
                "STALL-HANDLE",
                "45 virtual seconds ahead of each service.handle call",
                r#"
change {
    $VAR#r = $CALL#c{name=*.handle}(...)
} into {
    $TIMEOUT{secs=45}
    $VAR#r = $CALL#c(...)
}"#,
            )],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{default_catalog, noop_catalog};

    #[test]
    fn corpus_models_compile() {
        for entry in default_corpus() {
            let compiled = entry
                .model
                .compile()
                .unwrap_or_else(|e| panic!("{} failed to compile: {e}", entry.model.name));
            assert_eq!(compiled.len(), entry.model.specs.len());
        }
    }

    #[test]
    fn corpus_has_generic_and_restricted_models() {
        let corpus = default_corpus();
        assert!(corpus.len() >= 6, "corpus too small: {}", corpus.len());
        let generic = corpus
            .iter()
            .filter(|m| m.applies_to.iter().any(|t| t == "any"))
            .count();
        assert!(generic >= 6, "need >= 6 generic models, got {generic}");
        assert!(
            corpus.iter().any(|m| !m.applies_to.iter().any(|t| t == "any")),
            "need at least one tag-restricted model"
        );
    }

    #[test]
    fn applicability_filter_respects_tags() {
        let corpus = default_corpus();
        let catalog = default_catalog();
        let by_name = |name: &str| catalog.iter().find(|t| t.name == name).unwrap();
        let model = |name: &str| corpus.iter().find(|m| m.model.name == name).unwrap();

        assert!(model("stale-read-amplifier").applies_to_target(by_name("kvstore")));
        assert!(!model("stale-read-amplifier").applies_to_target(by_name("broker")));
        assert!(model("redelivery-storm").applies_to_target(by_name("broker")));
        assert!(!model("redelivery-storm").applies_to_target(by_name("microsvc")));
        assert!(model("retry-starvation").applies_to_target(by_name("microsvc")));
        // Generic models hit everything.
        for target in &catalog {
            assert!(model("exception-storm").applies_to_target(target));
        }
        // Every noop target has at least one restricted model aimed at it.
        for target in noop_catalog() {
            let restricted = corpus
                .iter()
                .filter(|m| !m.applies_to.iter().any(|t| t == "any"))
                .filter(|m| m.applies_to_target(&target))
                .count();
            assert!(restricted >= 1, "{} has no targeted model", target.name);
        }
    }

    #[test]
    fn corpus_names_are_unique(){
        let corpus = default_corpus();
        let mut names: Vec<String> = corpus.iter().map(|m| m.model.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), corpus.len());
    }
}
