//! Edge-case tests for built-in methods, string formatting, and the
//! simulated stdlib modules.

use pyrt::Vm;

fn run(src: &str) -> String {
    let m = pysrc::parse_module(src, "t.py").unwrap();
    let mut vm = Vm::new();
    vm.run_module(&m)
        .unwrap_or_else(|e| panic!("uncaught {e}\n{}", vm.stderr()));
    vm.stdout()
}

fn run_err(src: &str) -> String {
    let m = pysrc::parse_module(src, "t.py").unwrap();
    let mut vm = Vm::new();
    vm.run_module(&m).expect_err("should raise").class_name
}

#[test]
fn string_method_edges() {
    assert_eq!(run("print('abc'.find('b'), 'abc'.find('z'))\n"), "1 -1\n");
    assert_eq!(run("print('ababab'.count('ab'))\n"), "3\n");
    assert_eq!(run("print('7'.zfill(3))\n"), "007\n");
    assert_eq!(run("print('12'.isdigit(), 'a1'.isdigit(), ''.isdigit())\n"), "True False False\n");
    assert_eq!(run("print('ab'.isalpha(), 'a b'.isalpha())\n"), "True False\n");
    assert_eq!(run("print('x=1&y=2'.split('&'))\n"), "['x=1', 'y=2']\n");
    assert_eq!(run("print(''.join(['a', 'b', 'c']))\n"), "abc\n");
    assert_eq!(run("print('hello'.replace('l', 'L'))\n"), "heLLo\n");
    assert_eq!(run("s = 'key'\nprint(s.encode())\n"), "key\n");
    // Unicode-aware length and slicing.
    assert_eq!(run("s = 'caf\u{00e9}'\nprint(len(s), s[3])\n"), "4 \u{00e9}\n");
}

#[test]
fn percent_formatting_edges() {
    assert_eq!(run("print('%s=%d' % ('n', 3))\n"), "n=3\n");
    assert_eq!(run("print('%r' % 'x')\n"), "'x'\n");
    assert_eq!(run("print('100%%' % ())\n"), "100%\n");
    assert_eq!(run("print('%f' % 2)\n"), "2.000000\n");
    assert_eq!(run_err("print('%d' % 'nope')\n"), "TypeError");
    assert_eq!(run_err("print('%s %s' % 'one')\n"), "TypeError");
    assert_eq!(run_err("print('%s' % ('a', 'b'))\n"), "TypeError");
}

#[test]
fn list_method_edges() {
    assert_eq!(run("xs = [1, 2, 3]\nxs.insert(0, 0)\nxs.insert(-1, 9)\nprint(xs)\n"), "[0, 1, 2, 9, 3]\n");
    assert_eq!(run("xs = [3, 1]\nxs.extend([2])\nxs.sort()\nprint(xs)\n"), "[1, 2, 3]\n");
    assert_eq!(run("xs = [1, 2]\nxs.reverse()\nprint(xs)\n"), "[2, 1]\n");
    assert_eq!(run("xs = [1, 2, 2]\nprint(xs.count(2), xs.index(2))\n"), "2 1\n");
    assert_eq!(run("xs = [1, 2]\nxs.remove(1)\nprint(xs)\n"), "[2]\n");
    assert_eq!(run_err("xs = []\nxs.pop()\n"), "IndexError");
    assert_eq!(run_err("xs = [1]\nxs.remove(9)\n"), "ValueError");
    assert_eq!(run("print(sorted(['b', 'a'], key=lambda s: s))\n"), "['a', 'b']\n");
    assert_eq!(
        run("xs = [(2, 'b'), (1, 'a')]\nxs.sort(key=lambda p: p[0])\nprint(xs)\n"),
        "[(1, 'a'), (2, 'b')]\n"
    );
}

#[test]
fn dict_method_edges() {
    assert_eq!(run("d = {}\nprint(d.setdefault('k', 5), d['k'])\n"), "5 5\n");
    assert_eq!(run("d = {'k': 1}\nprint(d.setdefault('k', 5))\n"), "1\n");
    assert_eq!(run("d = {'a': 1}\nd.update({'b': 2}, c=3)\nprint(len(d))\n"), "3\n");
    assert_eq!(run("d = {'a': 1}\nprint(d.pop('a'), d.pop('a', 'gone'))\n"), "1 gone\n");
    assert_eq!(run_err("d = {}\nd.pop('missing')\n"), "KeyError");
    assert_eq!(run("d = {'a': 1}\ne = d.copy()\ne['a'] = 2\nprint(d['a'], e['a'])\n"), "1 2\n");
    assert_eq!(run("d = {'a': 1}\nd.clear()\nprint(len(d))\n"), "0\n");
}

#[test]
fn slicing_edges() {
    assert_eq!(run("xs = [0, 1, 2, 3]\nprint(xs[1:], xs[:2], xs[:], xs[-2:])\n"), "[1, 2, 3] [0, 1] [0, 1, 2, 3] [2, 3]\n");
    assert_eq!(run("print('hello'[10:20])\n"), "\n");
    assert_eq!(run("t = (1, 2, 3)\nprint(t[1:3])\n"), "(2, 3)\n");
    assert_eq!(run("print('abcdef'[2:4])\n"), "cd\n");
}

#[test]
fn negative_indexing() {
    assert_eq!(run("xs = [1, 2, 3]\nprint(xs[-1], xs[-3])\n"), "3 1\n");
    assert_eq!(run_err("xs = [1]\nprint(xs[-2])\n"), "IndexError");
}

#[test]
fn os_module_with_noop_host() {
    assert_eq!(run("import os\nprint(os.getenv('NOPE', 'fallback'))\n"), "fallback\n");
    assert_eq!(run("import os\nprint(os.path_exists('/etc/hosts'))\n"), "False\n");
    assert_eq!(run_err("import os\nos.read_file('/missing')\n"), "IOError");
}

#[test]
fn urllib_quote_and_urlencode() {
    assert_eq!(run("import urllib\nprint(urllib.quote('a b/c'))\n"), "a%20b/c\n");
    assert_eq!(
        run("import urllib\nprint(urllib.quote('caf\u{00e9}'))\n"),
        "caf%C3%A9\n"
    );
    assert_eq!(
        run("import urllib\nprint(urllib.urlencode({'a': 1, 'b': 'x'}))\n"),
        "a=1&b=x\n"
    );
}

#[test]
fn random_module_bounds() {
    assert_eq!(run("import random\nr = random.randint(5, 5)\nprint(r)\n"), "5\n");
    assert_eq!(
        run("import random\nok = True\nfor i in range(50):\n    v = random.randint(1, 3)\n    ok = ok and 1 <= v and v <= 3\nprint(ok)\n"),
        "True\n"
    );
    assert_eq!(run_err("import random\nrandom.randint(3, 1)\n"), "ValueError");
    assert_eq!(run_err("import random\nrandom.choice([])\n"), "IndexError");
}

#[test]
fn exception_hierarchy_from_python() {
    assert_eq!(
        run(concat!(
            "try:\n",
            "    raise ConnectionRefusedError('nope')\n",
            "except OSError as e:\n",
            "    print('oserror caught:', str(e))\n",
        )),
        "oserror caught: nope\n"
    );
    assert_eq!(
        run(concat!(
            "try:\n",
            "    raise UnboundLocalError('x')\n",
            "except NameError:\n",
            "    print('namerror superclass works')\n",
        )),
        "namerror superclass works\n"
    );
}

#[test]
fn nested_functions_and_methods_share_module_globals() {
    assert_eq!(
        run(concat!(
            "LIMIT = 10\n",
            "class Box:\n",
            "    def fits(self, n):\n",
            "        return n <= LIMIT\n",
            "b = Box()\n",
            "print(b.fits(5), b.fits(50))\n",
        )),
        "True False\n"
    );
}

#[test]
fn method_values_are_first_class() {
    assert_eq!(
        run(concat!(
            "s = '/v2/keys'\n",
            "f = s.startswith\n",
            "print(f('/v2'), f('/v3'))\n",
        )),
        "True False\n"
    );
}

#[test]
fn chained_subscript_attribute_calls() {
    assert_eq!(
        run(concat!(
            "data = {'rows': [{'name': 'a'}, {'name': 'b'}]}\n",
            "print(data['rows'][1]['name'].upper())\n",
        )),
        "B\n"
    );
}

#[test]
fn try_finally_with_return_runs_finally() {
    assert_eq!(
        run(concat!(
            "log = []\n",
            "def f():\n",
            "    try:\n",
            "        return 'early'\n",
            "    finally:\n",
            "        log.append('cleanup')\n",
            "print(f(), log)\n",
        )),
        "early ['cleanup']\n"
    );
}

#[test]
fn deadline_exceeded_is_timeout() {
    let m = pysrc::parse_module(
        "import time\nwhile True:\n    time.sleep(10)\n",
        "t.py",
    )
    .unwrap();
    let mut vm = Vm::new();
    vm.deadline.set(Some(100.0));
    let err = vm.run_module(&m).unwrap_err();
    assert_eq!(err.class_name, "ProfipyFuelExhausted");
    assert!(vm.clock.now() >= 100.0);
}
