//! Semantics regression suite for the slot-resolved interpreter.
//!
//! Every test here pins a scoping behavior the pre-refactor
//! (string-scanning) interpreter exhibited, so the prepare/resolve fast
//! path can never silently diverge: closures, `global` declarations,
//! shadowing, `del`, class-attribute resolution, dict insertion order,
//! and the `UnboundLocalError` semantics the paper's §V-C failure mode
//! depends on.

use pyrt::vm::Vm;
use std::rc::Rc;
use std::sync::Arc;

fn run(src: &str) -> String {
    let m = pysrc::parse_module(src, "test.py").expect("source parses");
    let mut vm = Vm::new();
    vm.run_module(&m).expect("runs without exception");
    vm.stdout()
}

fn run_err(src: &str) -> (String, String) {
    let m = pysrc::parse_module(src, "test.py").expect("source parses");
    let mut vm = Vm::new();
    let e = vm.run_module(&m).expect_err("raises");
    (e.class_name, e.message)
}

// ---------- closures ----------

#[test]
fn closure_reads_enclosing_local() {
    assert_eq!(
        run(concat!(
            "def outer():\n",
            "    x = 10\n",
            "    def inner():\n",
            "        return x + 1\n",
            "    return inner()\n",
            "print(outer())\n",
        )),
        "11\n"
    );
}

#[test]
fn closure_sees_enclosing_mutation_by_reference() {
    // The captured scope is shared, not snapshotted: a later assignment
    // in the enclosing function is visible through the closure.
    assert_eq!(
        run(concat!(
            "def outer():\n",
            "    x = 1\n",
            "    def inner():\n",
            "        return x\n",
            "    x = 2\n",
            "    return inner()\n",
            "print(outer())\n",
        )),
        "2\n"
    );
}

#[test]
fn closure_over_loop_variable_is_late_bound() {
    assert_eq!(
        run(concat!(
            "def make():\n",
            "    fns = []\n",
            "    for i in range(3):\n",
            "        fns.append(lambda: i)\n",
            "    return fns\n",
            "print([f() for f in make()])\n",
        )),
        "[2, 2, 2]\n"
    );
}

#[test]
fn nested_closures_capture_innermost_first() {
    assert_eq!(
        run(concat!(
            "def a():\n",
            "    v = 'a'\n",
            "    def b():\n",
            "        v = 'b'\n",
            "        def c():\n",
            "            return v\n",
            "        return c()\n",
            "    return b()\n",
            "print(a())\n",
        )),
        "b\n"
    );
}

#[test]
fn lambda_default_evaluated_at_definition_time() {
    assert_eq!(
        run(concat!(
            "x = 1\n",
            "f = lambda y=x: y\n",
            "x = 2\n",
            "print(f())\n",
        )),
        "1\n"
    );
}

// ---------- global declarations ----------

#[test]
fn global_write_reaches_module_scope() {
    assert_eq!(
        run(concat!(
            "count = 0\n",
            "def bump():\n",
            "    global count\n",
            "    count = count + 1\n",
            "bump()\n",
            "bump()\n",
            "print(count)\n",
        )),
        "2\n"
    );
}

#[test]
fn assignment_without_global_shadows_module_name() {
    assert_eq!(
        run(concat!(
            "x = 'module'\n",
            "def f():\n",
            "    x = 'local'\n",
            "    return x\n",
            "print(f(), x)\n",
        )),
        "local module\n"
    );
}

#[test]
fn global_decl_in_one_function_does_not_leak_to_another() {
    assert_eq!(
        run(concat!(
            "x = 'module'\n",
            "def writer():\n",
            "    global x\n",
            "    x = 'written'\n",
            "def shadower():\n",
            "    x = 'shadow'\n",
            "    return x\n",
            "writer()\n",
            "print(shadower(), x)\n",
        )),
        "shadow written\n"
    );
}

#[test]
fn global_declared_parameter_binds_invisibly() {
    // Degenerate corner (CPython rejects it at compile time): a
    // parameter that is also declared `global`. The pre-refactor
    // interpreter bound the argument into the locals scope but reads
    // resolved to the module global — and crucially the other
    // parameters stayed intact. Pinned against slot misbinding.
    assert_eq!(
        run(concat!(
            "b = 'module-b'\n",
            "def f(a, b):\n",
            "    global b\n",
            "    return (a, b)\n",
            "print(f(1, 2))\n",
        )),
        "(1, 'module-b')\n"
    );
}

// ---------- UnboundLocalError (paper §V-C) ----------

#[test]
fn read_before_assign_is_unbound_local() {
    let (class, msg) = run_err(concat!(
        "def f():\n",
        "    y = x\n",
        "    x = 1\n",
        "f()\n",
    ));
    assert_eq!(class, "UnboundLocalError");
    assert!(msg.contains("local variable 'x' referenced before assignment"));
}

#[test]
fn conditional_assignment_still_makes_name_local() {
    // Assignment anywhere in the body makes the name local everywhere
    // in the body, even if the assigning branch never runs.
    let (class, _) = run_err(concat!(
        "x = 'module'\n",
        "def f(flag):\n",
        "    if flag:\n",
        "        x = 'local'\n",
        "    return x\n",
        "f(False)\n",
    ));
    assert_eq!(class, "UnboundLocalError");
}

// ---------- shadowing ----------

#[test]
fn parameter_shadows_global_and_builtin() {
    assert_eq!(
        run(concat!(
            "len = 'global-len'\n",
            "def f(len):\n",
            "    return len\n",
            "print(f('param'))\n",
        )),
        "param\n"
    );
}

#[test]
fn builtin_shadowed_by_global_then_restored_by_del() {
    assert_eq!(
        run(concat!(
            "abs = 'shadow'\n",
            "print(abs)\n",
            "del abs\n",
            "print(abs(-3))\n",
        )),
        "shadow\n3\n"
    );
}

// ---------- del ----------

#[test]
fn del_local_then_read_is_name_error_class() {
    // Pre-refactor behavior pinned: deleting a bound local, then
    // reading it, surfaces as an unbound local read.
    let (class, _) = run_err(concat!(
        "def f():\n",
        "    x = 1\n",
        "    del x\n",
        "    return x\n",
        "f()\n",
    ));
    assert_eq!(class, "UnboundLocalError");
}

#[test]
fn del_unbound_local_is_name_error() {
    let (class, _) = run_err(concat!(
        "def f():\n",
        "    del x\n",
        "f()\n",
    ));
    assert_eq!(class, "NameError");
}

#[test]
fn del_module_name_and_dict_key() {
    assert_eq!(
        run(concat!(
            "d = {'a': 1, 'b': 2}\n",
            "del d['a']\n",
            "print(list(d.keys()))\n",
            "x = 5\n",
            "del x\n",
            "try:\n",
            "    print(x)\n",
            "except NameError:\n",
            "    print('gone')\n",
        )),
        "['b']\ngone\n"
    );
}

#[test]
fn del_rebind_again_works() {
    assert_eq!(
        run(concat!(
            "def f():\n",
            "    x = 1\n",
            "    del x\n",
            "    x = 2\n",
            "    return x\n",
            "print(f())\n",
        )),
        "2\n"
    );
}

// ---------- class-attribute resolution ----------

#[test]
fn instance_attr_shadows_class_attr() {
    assert_eq!(
        run(concat!(
            "class C:\n",
            "    kind = 'class'\n",
            "    def __init__(self):\n",
            "        self.name = 'inst'\n",
            "c = C()\n",
            "print(c.kind, c.name)\n",
            "c.kind = 'shadowed'\n",
            "print(c.kind, C.kind)\n",
        )),
        "class inst\nshadowed class\n"
    );
}

#[test]
fn inherited_method_resolution_walks_bases() {
    assert_eq!(
        run(concat!(
            "class Base:\n",
            "    def who(self):\n",
            "        return 'base'\n",
            "class Mid(Base):\n",
            "    pass\n",
            "class Leaf(Mid):\n",
            "    def leaf_only(self):\n",
            "        return 'leaf'\n",
            "obj = Leaf()\n",
            "print(obj.who(), obj.leaf_only())\n",
        )),
        "base leaf\n"
    );
}

#[test]
fn method_override_wins_over_base() {
    assert_eq!(
        run(concat!(
            "class Base:\n",
            "    def who(self):\n",
            "        return 'base'\n",
            "class Leaf(Base):\n",
            "    def who(self):\n",
            "        return 'leaf'\n",
            "print(Leaf().who())\n",
        )),
        "leaf\n"
    );
}

#[test]
fn class_body_is_its_own_scope() {
    assert_eq!(
        run(concat!(
            "x = 'module'\n",
            "class C:\n",
            "    x = 'class'\n",
            "    y = x\n",
            "print(C.y, x)\n",
        )),
        "class module\n"
    );
}

// ---------- dict insertion order ----------

#[test]
fn dict_iteration_preserves_insertion_order_at_scale() {
    // Large enough that the hash index is active.
    assert_eq!(
        run(concat!(
            "d = {}\n",
            "for i in range(50):\n",
            "    d['k' + str(i)] = i\n",
            "d['k7'] = -1\n",
            "del d['k3']\n",
            "keys = list(d.keys())\n",
            "print(keys[0], keys[1], keys[2], keys[3], len(keys))\n",
            "print(d['k7'], d['k49'])\n",
        )),
        "k0 k1 k2 k4 49\n-1 49\n"
    );
}

#[test]
fn dict_membership_and_get_agree_with_equality_coercion() {
    assert_eq!(
        run(concat!(
            "d = {}\n",
            "for i in range(20):\n",
            "    d[i] = i * 10\n",
            "print(5.0 in d, d[5.0], True in d, d[True])\n",
        )),
        "True 50 True 10\n"
    );
}

// ---------- comprehension scope quirk (pre-refactor compatible) ----------

#[test]
fn comprehension_target_in_function_stays_invisible() {
    // The pre-slot interpreter never treated a comprehension target as
    // a readable local inside a function (assignment analysis is
    // statement-level), so the comprehension body's read of the target
    // raises NameError. Pinned so the fast path reproduces campaign
    // outcomes bit-for-bit.
    let (class, msg) = run_err(concat!(
        "def f():\n",
        "    return [n for n in [1, 2]]\n",
        "f()\n",
    ));
    assert_eq!(class, "NameError");
    assert!(msg.contains("'n'"));
    // At module level the target writes through to globals and works.
    assert_eq!(run("print([n * 2 for n in [1, 2, 3]])\n"), "[2, 4, 6]\n");
}

// ---------- recursion limit (satellite: MAX_DEPTH raise) ----------

#[test]
fn recursion_depth_beyond_old_limit_now_works() {
    // The pre-refactor limit was 32; slot frames shrank the per-frame
    // cost enough to double it. Depth 60 must succeed.
    assert_eq!(
        run(concat!(
            "def count(n):\n",
            "    if n == 0:\n",
            "        return 0\n",
            "    return 1 + count(n - 1)\n",
            "print(count(60))\n",
        )),
        "60\n"
    );
}

#[test]
fn runaway_recursion_still_bounded() {
    let (class, msg) = run_err(concat!(
        "def f():\n",
        "    return f()\n",
        "f()\n",
    ));
    assert_eq!(class, "RuntimeError");
    assert!(msg.contains("maximum recursion depth exceeded"));
}

// ---------- prepared-path equivalence ----------

#[test]
fn prepared_and_ad_hoc_execution_agree() {
    let src = concat!(
        "import mylib\n",
        "total = 0\n",
        "for i in range(5):\n",
        "    total = total + mylib.double(i)\n",
        "print(total, mylib.NAME)\n",
    );
    let lib_src = "NAME = 'lib'\ndef double(x):\n    return x * 2\n";

    // Ad-hoc path: parse + register, prepare happens at import.
    let main = pysrc::parse_module(src, "main.py").unwrap();
    let lib = pysrc::parse_module(lib_src, "mylib.py").unwrap();
    let mut vm1 = Vm::new();
    vm1.register_source("mylib", Rc::new(lib));
    vm1.run_module(&main).unwrap();

    // Prepared path: modules prepared once, shared via Arc — the
    // campaign fast path.
    let lib2 = Arc::new(pysrc::parse_module(lib_src, "mylib.py").unwrap());
    let prepared_lib = pyrt::prepare::prepare(lib2);
    let main2 = Arc::new(pysrc::parse_module(src, "main.py").unwrap());
    let prepared_main = pyrt::prepare::prepare(main2);
    let mut vm2 = Vm::new();
    vm2.register_prepared_source("mylib", prepared_lib);
    vm2.run_prepared(&prepared_main).unwrap();

    assert_eq!(vm1.stdout(), vm2.stdout());
    assert_eq!(vm1.stdout(), "20 lib\n");
}

#[test]
fn prepared_module_is_reusable_across_vms() {
    let src = "state = []\ndef push(x):\n    state.append(x)\n    return len(state)\nprint(push(1), push(2))\n";
    let prepared = pyrt::prepare::prepare(Arc::new(
        pysrc::parse_module(src, "m.py").unwrap(),
    ));
    for _ in 0..3 {
        let mut vm = Vm::new();
        vm.run_prepared(&prepared).unwrap();
        assert_eq!(vm.stdout(), "1 2\n", "state never leaks across VMs");
    }
}
