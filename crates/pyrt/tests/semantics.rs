//! Semantics regression suite for the slot-resolved interpreter.
//!
//! Every test here pins a scoping behavior the pre-refactor
//! (string-scanning) interpreter exhibited, so the prepare/resolve fast
//! path can never silently diverge: closures, `global` declarations,
//! shadowing, `del`, class-attribute resolution, dict insertion order,
//! and the `UnboundLocalError` semantics the paper's §V-C failure mode
//! depends on.

use pyrt::vm::Vm;
use std::rc::Rc;
use std::sync::Arc;

fn run(src: &str) -> String {
    let m = pysrc::parse_module(src, "test.py").expect("source parses");
    let mut vm = Vm::new();
    vm.run_module(&m).expect("runs without exception");
    vm.stdout()
}

fn run_err(src: &str) -> (String, String) {
    let m = pysrc::parse_module(src, "test.py").expect("source parses");
    let mut vm = Vm::new();
    let e = vm.run_module(&m).expect_err("raises");
    (e.class_name, e.message)
}

// ---------- closures ----------

#[test]
fn closure_reads_enclosing_local() {
    assert_eq!(
        run(concat!(
            "def outer():\n",
            "    x = 10\n",
            "    def inner():\n",
            "        return x + 1\n",
            "    return inner()\n",
            "print(outer())\n",
        )),
        "11\n"
    );
}

#[test]
fn closure_sees_enclosing_mutation_by_reference() {
    // The captured scope is shared, not snapshotted: a later assignment
    // in the enclosing function is visible through the closure.
    assert_eq!(
        run(concat!(
            "def outer():\n",
            "    x = 1\n",
            "    def inner():\n",
            "        return x\n",
            "    x = 2\n",
            "    return inner()\n",
            "print(outer())\n",
        )),
        "2\n"
    );
}

#[test]
fn closure_over_loop_variable_is_late_bound() {
    assert_eq!(
        run(concat!(
            "def make():\n",
            "    fns = []\n",
            "    for i in range(3):\n",
            "        fns.append(lambda: i)\n",
            "    return fns\n",
            "print([f() for f in make()])\n",
        )),
        "[2, 2, 2]\n"
    );
}

#[test]
fn nested_closures_capture_innermost_first() {
    assert_eq!(
        run(concat!(
            "def a():\n",
            "    v = 'a'\n",
            "    def b():\n",
            "        v = 'b'\n",
            "        def c():\n",
            "            return v\n",
            "        return c()\n",
            "    return b()\n",
            "print(a())\n",
        )),
        "b\n"
    );
}

#[test]
fn lambda_default_evaluated_at_definition_time() {
    assert_eq!(
        run(concat!(
            "x = 1\n",
            "f = lambda y=x: y\n",
            "x = 2\n",
            "print(f())\n",
        )),
        "1\n"
    );
}

// ---------- global declarations ----------

#[test]
fn global_write_reaches_module_scope() {
    assert_eq!(
        run(concat!(
            "count = 0\n",
            "def bump():\n",
            "    global count\n",
            "    count = count + 1\n",
            "bump()\n",
            "bump()\n",
            "print(count)\n",
        )),
        "2\n"
    );
}

#[test]
fn assignment_without_global_shadows_module_name() {
    assert_eq!(
        run(concat!(
            "x = 'module'\n",
            "def f():\n",
            "    x = 'local'\n",
            "    return x\n",
            "print(f(), x)\n",
        )),
        "local module\n"
    );
}

#[test]
fn global_decl_in_one_function_does_not_leak_to_another() {
    assert_eq!(
        run(concat!(
            "x = 'module'\n",
            "def writer():\n",
            "    global x\n",
            "    x = 'written'\n",
            "def shadower():\n",
            "    x = 'shadow'\n",
            "    return x\n",
            "writer()\n",
            "print(shadower(), x)\n",
        )),
        "shadow written\n"
    );
}

#[test]
fn global_declared_parameter_binds_invisibly() {
    // Degenerate corner (CPython rejects it at compile time): a
    // parameter that is also declared `global`. The pre-refactor
    // interpreter bound the argument into the locals scope but reads
    // resolved to the module global — and crucially the other
    // parameters stayed intact. Pinned against slot misbinding.
    assert_eq!(
        run(concat!(
            "b = 'module-b'\n",
            "def f(a, b):\n",
            "    global b\n",
            "    return (a, b)\n",
            "print(f(1, 2))\n",
        )),
        "(1, 'module-b')\n"
    );
}

// ---------- UnboundLocalError (paper §V-C) ----------

#[test]
fn read_before_assign_is_unbound_local() {
    let (class, msg) = run_err(concat!(
        "def f():\n",
        "    y = x\n",
        "    x = 1\n",
        "f()\n",
    ));
    assert_eq!(class, "UnboundLocalError");
    assert!(msg.contains("local variable 'x' referenced before assignment"));
}

#[test]
fn conditional_assignment_still_makes_name_local() {
    // Assignment anywhere in the body makes the name local everywhere
    // in the body, even if the assigning branch never runs.
    let (class, _) = run_err(concat!(
        "x = 'module'\n",
        "def f(flag):\n",
        "    if flag:\n",
        "        x = 'local'\n",
        "    return x\n",
        "f(False)\n",
    ));
    assert_eq!(class, "UnboundLocalError");
}

// ---------- shadowing ----------

#[test]
fn parameter_shadows_global_and_builtin() {
    assert_eq!(
        run(concat!(
            "len = 'global-len'\n",
            "def f(len):\n",
            "    return len\n",
            "print(f('param'))\n",
        )),
        "param\n"
    );
}

#[test]
fn builtin_shadowed_by_global_then_restored_by_del() {
    assert_eq!(
        run(concat!(
            "abs = 'shadow'\n",
            "print(abs)\n",
            "del abs\n",
            "print(abs(-3))\n",
        )),
        "shadow\n3\n"
    );
}

// ---------- del ----------

#[test]
fn del_local_then_read_is_name_error_class() {
    // Pre-refactor behavior pinned: deleting a bound local, then
    // reading it, surfaces as an unbound local read.
    let (class, _) = run_err(concat!(
        "def f():\n",
        "    x = 1\n",
        "    del x\n",
        "    return x\n",
        "f()\n",
    ));
    assert_eq!(class, "UnboundLocalError");
}

#[test]
fn del_unbound_local_is_name_error() {
    let (class, _) = run_err(concat!(
        "def f():\n",
        "    del x\n",
        "f()\n",
    ));
    assert_eq!(class, "NameError");
}

#[test]
fn del_module_name_and_dict_key() {
    assert_eq!(
        run(concat!(
            "d = {'a': 1, 'b': 2}\n",
            "del d['a']\n",
            "print(list(d.keys()))\n",
            "x = 5\n",
            "del x\n",
            "try:\n",
            "    print(x)\n",
            "except NameError:\n",
            "    print('gone')\n",
        )),
        "['b']\ngone\n"
    );
}

#[test]
fn del_rebind_again_works() {
    assert_eq!(
        run(concat!(
            "def f():\n",
            "    x = 1\n",
            "    del x\n",
            "    x = 2\n",
            "    return x\n",
            "print(f())\n",
        )),
        "2\n"
    );
}

// ---------- class-attribute resolution ----------

#[test]
fn instance_attr_shadows_class_attr() {
    assert_eq!(
        run(concat!(
            "class C:\n",
            "    kind = 'class'\n",
            "    def __init__(self):\n",
            "        self.name = 'inst'\n",
            "c = C()\n",
            "print(c.kind, c.name)\n",
            "c.kind = 'shadowed'\n",
            "print(c.kind, C.kind)\n",
        )),
        "class inst\nshadowed class\n"
    );
}

#[test]
fn inherited_method_resolution_walks_bases() {
    assert_eq!(
        run(concat!(
            "class Base:\n",
            "    def who(self):\n",
            "        return 'base'\n",
            "class Mid(Base):\n",
            "    pass\n",
            "class Leaf(Mid):\n",
            "    def leaf_only(self):\n",
            "        return 'leaf'\n",
            "obj = Leaf()\n",
            "print(obj.who(), obj.leaf_only())\n",
        )),
        "base leaf\n"
    );
}

#[test]
fn method_override_wins_over_base() {
    assert_eq!(
        run(concat!(
            "class Base:\n",
            "    def who(self):\n",
            "        return 'base'\n",
            "class Leaf(Base):\n",
            "    def who(self):\n",
            "        return 'leaf'\n",
            "print(Leaf().who())\n",
        )),
        "leaf\n"
    );
}

#[test]
fn class_body_is_its_own_scope() {
    assert_eq!(
        run(concat!(
            "x = 'module'\n",
            "class C:\n",
            "    x = 'class'\n",
            "    y = x\n",
            "print(C.y, x)\n",
        )),
        "class module\n"
    );
}

// ---------- dict insertion order ----------

#[test]
fn dict_iteration_preserves_insertion_order_at_scale() {
    // Large enough that the hash index is active.
    assert_eq!(
        run(concat!(
            "d = {}\n",
            "for i in range(50):\n",
            "    d['k' + str(i)] = i\n",
            "d['k7'] = -1\n",
            "del d['k3']\n",
            "keys = list(d.keys())\n",
            "print(keys[0], keys[1], keys[2], keys[3], len(keys))\n",
            "print(d['k7'], d['k49'])\n",
        )),
        "k0 k1 k2 k4 49\n-1 49\n"
    );
}

#[test]
fn dict_membership_and_get_agree_with_equality_coercion() {
    assert_eq!(
        run(concat!(
            "d = {}\n",
            "for i in range(20):\n",
            "    d[i] = i * 10\n",
            "print(5.0 in d, d[5.0], True in d, d[True])\n",
        )),
        "True 50 True 10\n"
    );
}

// ---------- comprehension scope quirk (pre-refactor compatible) ----------

#[test]
fn comprehension_target_in_function_stays_invisible() {
    // The pre-slot interpreter never treated a comprehension target as
    // a readable local inside a function (assignment analysis is
    // statement-level), so the comprehension body's read of the target
    // raises NameError. Pinned so the fast path reproduces campaign
    // outcomes bit-for-bit.
    let (class, msg) = run_err(concat!(
        "def f():\n",
        "    return [n for n in [1, 2]]\n",
        "f()\n",
    ));
    assert_eq!(class, "NameError");
    assert!(msg.contains("'n'"));
    // At module level the target writes through to globals and works.
    assert_eq!(run("print([n * 2 for n in [1, 2, 3]])\n"), "[2, 4, 6]\n");
}

// ---------- augmented assignment targets ----------

#[test]
fn augassign_attribute_target_evaluates_object_twice() {
    // `get_box(b).v += 5` evaluates the object expression once for the
    // read and once more for the write — side effects and all. The
    // lowering must preserve the double evaluation.
    assert_eq!(
        run(concat!(
            "class Box:\n",
            "    def __init__(self):\n",
            "        self.v = 10\n",
            "calls = []\n",
            "def get_box(b):\n",
            "    calls.append(1)\n",
            "    return b\n",
            "b = Box()\n",
            "get_box(b).v += 5\n",
            "print(b.v, len(calls))\n",
        )),
        "15 2\n"
    );
}

#[test]
fn augassign_subscript_target_evaluates_index_twice() {
    assert_eq!(
        run(concat!(
            "d = {'k': 1}\n",
            "keys = []\n",
            "def k():\n",
            "    keys.append(1)\n",
            "    return 'k'\n",
            "d[k()] += 10\n",
            "print(d['k'], len(keys))\n",
        )),
        "11 2\n"
    );
}

#[test]
fn augassign_local_global_and_string() {
    assert_eq!(
        run(concat!(
            "total = 0\n",
            "def bump(n):\n",
            "    global total\n",
            "    total += n\n",
            "    s = 'a'\n",
            "    s += 'b'\n",
            "    return s\n",
            "print(bump(3), total)\n",
            "total += 1\n",
            "print(total)\n",
        )),
        "ab 3\n4\n"
    );
}

#[test]
fn augassign_unbound_local_raises() {
    let (class, _) = run_err(concat!(
        "def f():\n",
        "    x += 1\n",
        "    return x\n",
        "f()\n",
    ));
    assert_eq!(class, "UnboundLocalError");
}

// ---------- multiple / unpacking assignment ----------

#[test]
fn chained_assignment_aliases_single_value() {
    assert_eq!(
        run("a = b = [1, 2]\na.append(3)\nprint(b)\n"),
        "[1, 2, 3]\n"
    );
}

#[test]
fn nested_unpack_targets() {
    assert_eq!(
        run("x, (y, z) = 1, (2, 3)\nprint(x, y, z)\n"),
        "1 2 3\n"
    );
}

#[test]
fn unpack_length_mismatch_message() {
    let (class, msg) = run_err("a, b = 1, 2, 3\n");
    assert_eq!(class, "ValueError");
    assert!(msg.contains("cannot unpack 3 values into 2 targets"), "{msg}");
}

// ---------- aliasing & identity (pinned before the heap swap) ----------
//
// These tests pin the Python object-identity semantics the arena-backed
// value representation must preserve bit-for-bit: mutation through a
// second binding, container self-reference, `is` on aggregates vs.
// immediates, and bound-method receiver aliasing.

#[test]
fn mutation_through_second_binding_is_visible() {
    assert_eq!(
        run(concat!(
            "a = [1, 2]\n",
            "b = a\n",
            "b.append(3)\n",
            "a[0] = 99\n",
            "print(a, b, a is b)\n",
            "d = {'k': 1}\n",
            "e = d\n",
            "e['k'] = 2\n",
            "e['j'] = 3\n",
            "print(d['k'], d['j'], d is e)\n",
        )),
        "[99, 2, 3] [99, 2, 3] True\n2 3 True\n"
    );
}

#[test]
fn aliasing_through_function_call_and_container() {
    // An argument is the same object inside the callee, and a value
    // stored into a container stays the same object when read back.
    assert_eq!(
        run(concat!(
            "def grow(lst):\n",
            "    lst.append(len(lst))\n",
            "    return lst\n",
            "xs = []\n",
            "ys = grow(xs)\n",
            "print(xs is ys, xs)\n",
            "holder = {'inner': xs}\n",
            "holder['inner'].append(9)\n",
            "print(xs, holder['inner'] is xs)\n",
        )),
        "True [0]\n[0, 9] True\n"
    );
}

#[test]
fn list_self_reference_identity() {
    assert_eq!(
        run(concat!(
            "l = [1]\n",
            "l.append(l)\n",
            "print(l[1] is l, l[1][0], len(l[1]))\n",
            "l[0] = 7\n",
            "print(l[1][0])\n",
        )),
        "True 1 2\n7\n"
    );
}

#[test]
fn dict_self_reference_identity() {
    assert_eq!(
        run(concat!(
            "d = {'n': 0}\n",
            "d['self'] = d\n",
            "print(d['self'] is d)\n",
            "d['self']['n'] = 5\n",
            "print(d['n'])\n",
            "print(d['self']['self']['self'] is d)\n",
        )),
        "True\n5\nTrue\n"
    );
}

#[test]
fn is_operator_on_aggregates_and_immediates() {
    assert_eq!(
        run(concat!(
            "a = [1]\n",
            "b = [1]\n",
            "print(a is a, a is b, a == b)\n",
            "print([] is [], {} is {})\n",
            "n = None\n",
            "print(n is None, 5 is 5, True is True)\n",
            "s = 'hello'\n",
            "t = s\n",
            "print(s is t)\n",
        )),
        "True False True\nFalse False\nTrue True True\nTrue\n"
    );
}

#[test]
fn equal_strings_compare_is_true() {
    // Pre-refactor pin: `is` on strings falls back to content equality
    // (Rc ptr-eq OR text-eq), so even strings built at runtime satisfy
    // `is`. Interning must not change this observable.
    assert_eq!(
        run(concat!(
            "a = 'ab'\n",
            "b = 'a' + 'b'\n",
            "print(a is b, a == b)\n",
        )),
        "True True\n"
    );
}

#[test]
fn bound_method_receiver_aliasing() {
    // Extracting a method binds the receiver object, not a snapshot:
    // calls through the extracted method mutate the original, and
    // rebinding the name does not rebind the method's receiver.
    assert_eq!(
        run(concat!(
            "class Counter:\n",
            "    def __init__(self):\n",
            "        self.n = 0\n",
            "    def bump(self):\n",
            "        self.n = self.n + 1\n",
            "        return self.n\n",
            "c = Counter()\n",
            "m = c.bump\n",
            "print(m(), m())\n",
            "print(c.n)\n",
            "c2 = c\n",
            "c = None\n",
            "print(m(), c2.n)\n",
        )),
        "1 2\n2\n3 3\n"
    );
}

#[test]
fn builtin_method_receiver_aliasing() {
    // The same holds for builtin methods on lists/dicts: the extracted
    // method writes through to the receiver object.
    assert_eq!(
        run(concat!(
            "xs = [1]\n",
            "push = xs.append\n",
            "push(2)\n",
            "push(3)\n",
            "print(xs)\n",
            "d = {}\n",
            "put = d.setdefault\n",
            "put('a', 1)\n",
            "print(d, d.get('a'))\n",
        )),
        "[1, 2, 3]\n{'a': 1} 1\n"
    );
}

#[test]
fn shared_mutable_default_is_one_object() {
    // Python's classic shared-mutable-default gotcha depends on the
    // default being evaluated once and aliased by every call.
    assert_eq!(
        run(concat!(
            "def push(v, acc=[]):\n",
            "    acc.append(v)\n",
            "    return acc\n",
            "print(push(1), push(2), push(3))\n",
        )),
        "[1, 2, 3] [1, 2, 3] [1, 2, 3]\n"
    );
}

#[test]
fn instance_attribute_aliases_stored_object() {
    assert_eq!(
        run(concat!(
            "class Box:\n",
            "    def __init__(self, v):\n",
            "        self.v = v\n",
            "shared = [0]\n",
            "a = Box(shared)\n",
            "b = Box(shared)\n",
            "a.v.append(1)\n",
            "print(b.v, shared is a.v, a.v is b.v)\n",
        )),
        "[0, 1] True True\n"
    );
}

#[test]
fn tuple_holds_references_not_copies() {
    assert_eq!(
        run(concat!(
            "inner = [1]\n",
            "t = (inner, inner)\n",
            "t[0].append(2)\n",
            "print(t[1], t[0] is t[1], t[0] is inner)\n",
        )),
        "[1, 2] True True\n"
    );
}

// ---------- try/except/finally control flow ----------

#[test]
fn finally_return_overrides_body_return() {
    assert_eq!(
        run(concat!(
            "def f():\n",
            "    try:\n",
            "        return 'body'\n",
            "    finally:\n",
            "        return 'finally'\n",
            "print(f())\n",
        )),
        "finally\n"
    );
}

#[test]
fn finally_return_swallows_exception() {
    assert_eq!(
        run(concat!(
            "def f():\n",
            "    try:\n",
            "        raise ValueError('x')\n",
            "    finally:\n",
            "        return 'swallowed'\n",
            "print(f())\n",
        )),
        "swallowed\n"
    );
}

#[test]
fn try_else_runs_only_without_exception() {
    assert_eq!(
        run(concat!(
            "out = []\n",
            "try:\n",
            "    out.append('body')\n",
            "except ValueError:\n",
            "    out.append('handler')\n",
            "else:\n",
            "    out.append('else')\n",
            "finally:\n",
            "    out.append('finally')\n",
            "try:\n",
            "    raise ValueError('v')\n",
            "except ValueError:\n",
            "    out.append('handler2')\n",
            "else:\n",
            "    out.append('else2')\n",
            "print(out)\n",
        )),
        "['body', 'else', 'finally', 'handler2']\n"
    );
}

#[test]
fn bare_raise_rethrows_to_outer_handler() {
    assert_eq!(
        run(concat!(
            "def f():\n",
            "    try:\n",
            "        try:\n",
            "            raise ValueError('inner')\n",
            "        except ValueError:\n",
            "            raise\n",
            "    except ValueError as e:\n",
            "        return 'caught: ' + e.message\n",
            "print(f())\n",
        )),
        "caught: inner\n"
    );
}

#[test]
fn break_through_finally_runs_finally_first() {
    assert_eq!(
        run(concat!(
            "out = []\n",
            "for i in range(3):\n",
            "    try:\n",
            "        if i == 1:\n",
            "            break\n",
            "        out.append(i)\n",
            "    finally:\n",
            "        out.append('f')\n",
            "print(out)\n",
        )),
        "[0, 'f', 'f']\n"
    );
}

#[test]
fn except_tuple_matches_subclass() {
    assert_eq!(
        run(concat!(
            "class MyErr(ValueError):\n",
            "    pass\n",
            "def f():\n",
            "    try:\n",
            "        raise MyErr('m')\n",
            "    except (KeyError, ValueError):\n",
            "        return 'match'\n",
            "print(f())\n",
        )),
        "match\n"
    );
}

#[test]
fn fuel_exhaustion_is_uncatchable_by_bare_except() {
    let m = pysrc::parse_module(
        concat!(
            "try:\n",
            "    while True:\n",
            "        pass\n",
            "except:\n",
            "    print('caught')\n",
        ),
        "test.py",
    )
    .unwrap();
    let mut vm = Vm::new();
    vm.fuel.refill(5_000);
    let e = vm.run_module(&m).expect_err("budget trips");
    assert_eq!(e.class_name, "ProfipyFuelExhausted");
    assert_eq!(vm.stdout(), "", "handler must not run");
}

// ---------- loop else clauses ----------

#[test]
fn for_else_runs_on_normal_exit_and_skips_on_break() {
    assert_eq!(
        run(concat!(
            "for i in range(2):\n",
            "    pass\n",
            "else:\n",
            "    print('else-ran')\n",
            "for i in range(5):\n",
            "    if i == 2:\n",
            "        break\n",
            "else:\n",
            "    print('not-printed')\n",
            "print('after', i)\n",
        )),
        "else-ran\nafter 2\n"
    );
}

#[test]
fn while_else_runs_after_condition_fails() {
    assert_eq!(
        run(concat!(
            "n = 0\n",
            "while n < 3:\n",
            "    n += 1\n",
            "else:\n",
            "    print('done', n)\n",
        )),
        "done 3\n"
    );
}

#[test]
fn return_from_loop_else_propagates() {
    assert_eq!(
        run(concat!(
            "def f():\n",
            "    for i in range(2):\n",
            "        pass\n",
            "    else:\n",
            "        return 'from-else'\n",
            "    return 'after'\n",
            "print(f())\n",
        )),
        "from-else\n"
    );
}

#[test]
fn break_inside_loop_else_is_discarded() {
    // Pre-refactor quirk pinned: a `break` in a loop's `else` block is
    // swallowed by that loop (it neither breaks the outer loop nor
    // skips the statements after the inner one).
    assert_eq!(
        run(concat!(
            "out = []\n",
            "for i in range(2):\n",
            "    for j in range(1):\n",
            "        pass\n",
            "    else:\n",
            "        out.append('else' + str(i))\n",
            "        break\n",
            "    out.append('after-inner')\n",
            "print(out)\n",
        )),
        "['else0', 'after-inner', 'else1', 'after-inner']\n"
    );
}

// ---------- comprehension-target leak corners ----------

#[test]
fn comprehension_target_leaks_at_module_level() {
    assert_eq!(
        run("r = [x * x for x in range(4)]\nprint(x, r[3])\n"),
        "3 9\n"
    );
}

#[test]
fn comprehension_body_reads_enclosing_scope_not_target() {
    // Inside a function the comprehension target is invisible to reads
    // (see comprehension_target_in_function_stays_invisible); when an
    // enclosing scope binds the same name, the body reads *that*
    // binding on every iteration.
    assert_eq!(
        run(concat!(
            "def outer():\n",
            "    n = 100\n",
            "    def inner():\n",
            "        return [n for n in [1, 2, 3]]\n",
            "    return inner()\n",
            "print(outer())\n",
        )),
        "[100, 100, 100]\n"
    );
}

// ---------- spec-versioned comprehension scoping

#[test]
fn scoped_spec_restores_prior_comprehension_target_binding() {
    let m = pysrc::parse_module(
        "z = 'kept'\nsquares = [z * z for z in range(3)]\nprint(squares)\nprint(z)\n",
        "m.py",
    )
    .expect("parse");
    let mut vm = Vm::new();
    vm.set_spec_version(pyrt::vm::SpecVersion::Scoped);
    vm.run_module(&m).expect("run");
    assert_eq!(vm.stdout(), "[0, 1, 4]\nkept\n");
}

#[test]
fn scoped_spec_unbinds_fresh_comprehension_target() {
    let m = pysrc::parse_module(
        "squares = [z for z in range(3)]\nprint(z)\n",
        "m.py",
    )
    .expect("parse");
    let mut vm = Vm::new();
    vm.set_spec_version(pyrt::vm::SpecVersion::Scoped);
    let e = vm.run_module(&m).expect_err("z must not leak under Scoped");
    assert_eq!(e.class_name, "NameError");
}

#[test]
fn default_spec_version_is_legacy() {
    // The leaking behavior pinned above is the default; campaigns see
    // no change until a report opts into `SpecVersion::Scoped`.
    let vm = Vm::new();
    assert_eq!(vm.spec_version(), pyrt::vm::SpecVersion::Legacy);
}

// ---------- evaluation-order pins for the lowering ----------

#[test]
fn chained_comparison_short_circuits_side_effects() {
    assert_eq!(
        run(concat!(
            "calls = []\n",
            "def t(v):\n",
            "    calls.append(v)\n",
            "    return v\n",
            "print(t(1) < t(2) < t(0) < t(99))\n",
            "print(calls)\n",
        )),
        "False\n[1, 2, 0]\n"
    );
}

#[test]
fn boolop_returns_deciding_operand() {
    assert_eq!(
        run("print(0 or 'x', 1 and 2, '' and 'y', [] or {})\n"),
        "x 2  {}\n"
    );
}

#[test]
fn conditional_expression_evaluates_single_branch() {
    assert_eq!(
        run(concat!(
            "calls = []\n",
            "def side(tag, v):\n",
            "    calls.append(tag)\n",
            "    return v\n",
            "print(side('a', 1) if True else side('b', 2))\n",
            "print(calls)\n",
        )),
        "1\n['a']\n"
    );
}

// ---------- recursion limit (satellite: MAX_DEPTH raise) ----------

#[test]
fn recursion_depth_beyond_old_limit_now_works() {
    // The pre-refactor limit was 32; slot frames shrank the per-frame
    // cost enough to double it. Depth 60 must succeed.
    assert_eq!(
        run(concat!(
            "def count(n):\n",
            "    if n == 0:\n",
            "        return 0\n",
            "    return 1 + count(n - 1)\n",
            "print(count(60))\n",
        )),
        "60\n"
    );
}

#[test]
fn runaway_recursion_still_bounded() {
    let (class, msg) = run_err(concat!(
        "def f():\n",
        "    return f()\n",
        "f()\n",
    ));
    assert_eq!(class, "RuntimeError");
    assert!(msg.contains("maximum recursion depth exceeded"));
}

// ---------- prepared-path equivalence ----------

#[test]
fn prepared_and_ad_hoc_execution_agree() {
    let src = concat!(
        "import mylib\n",
        "total = 0\n",
        "for i in range(5):\n",
        "    total = total + mylib.double(i)\n",
        "print(total, mylib.NAME)\n",
    );
    let lib_src = "NAME = 'lib'\ndef double(x):\n    return x * 2\n";

    // Ad-hoc path: parse + register, prepare happens at import.
    let main = pysrc::parse_module(src, "main.py").unwrap();
    let lib = pysrc::parse_module(lib_src, "mylib.py").unwrap();
    let mut vm1 = Vm::new();
    vm1.register_source("mylib", Rc::new(lib));
    vm1.run_module(&main).unwrap();

    // Prepared path: modules prepared once, shared via Arc — the
    // campaign fast path.
    let lib2 = Arc::new(pysrc::parse_module(lib_src, "mylib.py").unwrap());
    let prepared_lib = pyrt::prepare::prepare(lib2);
    let main2 = Arc::new(pysrc::parse_module(src, "main.py").unwrap());
    let prepared_main = pyrt::prepare::prepare(main2);
    let mut vm2 = Vm::new();
    vm2.register_prepared_source("mylib", prepared_lib);
    vm2.run_prepared(&prepared_main).unwrap();

    assert_eq!(vm1.stdout(), vm2.stdout());
    assert_eq!(vm1.stdout(), "20 lib\n");
}

#[test]
fn prepared_module_is_reusable_across_vms() {
    let src = "state = []\ndef push(x):\n    state.append(x)\n    return len(state)\nprint(push(1), push(2))\n";
    let prepared = pyrt::prepare::prepare(Arc::new(
        pysrc::parse_module(src, "m.py").unwrap(),
    ));
    for _ in 0..3 {
        let mut vm = Vm::new();
        vm.run_prepared(&prepared).unwrap();
        assert_eq!(vm.stdout(), "1 2\n", "state never leaks across VMs");
    }
}
