//! End-to-end language-semantics tests for the mini-Python interpreter.
//!
//! Each test runs a program and checks captured stdout or the uncaught
//! exception, pinning the CPython behaviors the ProFIPy case study
//! depends on.

use pyrt::vm::Vm;

fn run(src: &str) -> String {
    let m = pysrc::parse_module(src, "test.py").unwrap();
    let mut vm = Vm::new();
    vm.run_module(&m).unwrap_or_else(|e| panic!("uncaught {e}\nstderr: {}", vm.stderr()));
    vm.stdout()
}

fn run_err(src: &str) -> (String, String) {
    let m = pysrc::parse_module(src, "test.py").unwrap();
    let mut vm = Vm::new();
    let err = vm
        .run_module(&m)
        .expect_err("expected an uncaught exception");
    (err.class_name, err.message)
}

#[test]
fn arithmetic_and_precedence() {
    assert_eq!(run("print(1 + 2 * 3)\n"), "7\n");
    assert_eq!(run("print((1 + 2) * 3)\n"), "9\n");
    assert_eq!(run("print(7 // 2, 7 % 2, 7 / 2)\n"), "3 1 3.5\n");
    assert_eq!(run("print(2 ** 10)\n"), "1024\n");
    assert_eq!(run("print(-3 ** 2)\n"), "-9\n");
    assert_eq!(run("print(7 % -2)\n"), "1\n"); // rem_euclid keeps sign of... checked below
}

#[test]
fn division_by_zero() {
    let (class, _) = run_err("x = 1 / 0\n");
    assert_eq!(class, "ZeroDivisionError");
    let (class, _) = run_err("x = 1 % 0\n");
    assert_eq!(class, "ZeroDivisionError");
}

#[test]
fn string_operations() {
    assert_eq!(run("print('a' + 'b')\n"), "ab\n");
    assert_eq!(run("print('ab' * 3)\n"), "ababab\n");
    assert_eq!(run("print('hello'[1])\n"), "e\n");
    assert_eq!(run("print('hello'[-1])\n"), "o\n");
    assert_eq!(run("print('hello'[1:3])\n"), "el\n");
    assert_eq!(run("print('a,b,c'.split(','))\n"), "['a', 'b', 'c']\n");
    assert_eq!(run("print('-'.join(['a', 'b']))\n"), "a-b\n");
    assert_eq!(run("print('/v2/keys'.startswith('/v2'))\n"), "True\n");
    assert_eq!(run("print('  x '.strip())\n"), "x\n");
    assert_eq!(run("print('abc'.upper(), 'ABC'.lower())\n"), "ABC abc\n");
    assert_eq!(run("print('a%s-%d' % ('x', 3))\n"), "ax-3\n");
    assert_eq!(run("print('k={}'.format(42))\n"), "k=42\n");
    assert_eq!(run("print('sub' in 'a substring')\n"), "True\n");
    assert_eq!(run("print(len('hello'))\n"), "5\n");
}

#[test]
fn list_and_dict_operations() {
    assert_eq!(
        run("xs = [1, 2]\nxs.append(3)\nprint(xs, len(xs))\n"),
        "[1, 2, 3] 3\n"
    );
    assert_eq!(run("d = {'a': 1}\nd['b'] = 2\nprint(d['b'], d.get('c', 9))\n"), "2 9\n");
    assert_eq!(
        run("d = {'a': 1, 'b': 2}\nfor k, v in d.items():\n    print(k, v)\n"),
        "a 1\nb 2\n"
    );
    assert_eq!(run("xs = [3, 1, 2]\nxs.sort()\nprint(xs)\n"), "[1, 2, 3]\n");
    assert_eq!(run("print(sorted([3, 1, 2], reverse=True))\n"), "[3, 2, 1]\n");
    assert_eq!(run("xs = [1, 2, 3]\nprint(xs.pop(), xs)\n"), "3 [1, 2]\n");
    assert_eq!(run("print([x * 2 for x in range(4) if x > 0])\n"), "[2, 4, 6]\n");
    let (class, _) = run_err("d = {}\nx = d['missing']\n");
    assert_eq!(class, "KeyError");
    let (class, _) = run_err("xs = [1]\nx = xs[5]\n");
    assert_eq!(class, "IndexError");
}

#[test]
fn tuple_unpacking_and_multiple_assignment() {
    assert_eq!(run("a, b = 1, 2\nprint(a, b)\n"), "1 2\n");
    assert_eq!(run("a = b = 5\nprint(a, b)\n"), "5 5\n");
    // Chained assignment binds target lists left-to-right, so the
    // second list `b, a` overwrites the first: a=2, b=1 (CPython).
    assert_eq!(run("a, b = b, a = 1, 2\nprint(a, b)\n"), "2 1\n");
    let (class, _) = run_err("a, b = [1, 2, 3]\n");
    assert_eq!(class, "ValueError");
}

#[test]
fn functions_defaults_kwargs_star() {
    assert_eq!(
        run("def f(a, b=10):\n    return a + b\nprint(f(1), f(1, 2), f(1, b=5))\n"),
        "11 3 6\n"
    );
    assert_eq!(
        run("def f(*args, **kw):\n    return len(args) + len(kw)\nprint(f(1, 2, x=3))\n"),
        "3\n"
    );
    let (class, msg) = run_err("def f(a):\n    return a\nf()\n");
    assert_eq!(class, "TypeError");
    assert!(msg.contains("missing required argument"));
    let (class, msg) = run_err("def f(a):\n    return a\nf(1, q=2)\n");
    assert_eq!(class, "TypeError");
    assert!(msg.contains("unexpected keyword"));
}

#[test]
fn closures_capture_enclosing_scope() {
    assert_eq!(
        run("def outer():\n    x = 10\n    def inner():\n        return x + 1\n    return inner()\nprint(outer())\n"),
        "11\n"
    );
}

#[test]
fn global_statement() {
    assert_eq!(
        run("count = 0\ndef bump():\n    global count\n    count = count + 1\nbump()\nbump()\nprint(count)\n"),
        "2\n"
    );
}

#[test]
fn unbound_local_error_matches_paper() {
    // Assignment anywhere in the function makes the name local; reading
    // before the assignment executes raises UnboundLocalError — the
    // dominant §V-C failure mode.
    let (class, msg) = run_err(
        "def f(flag):\n    if flag:\n        response = 1\n    return response\nf(False)\n",
    );
    assert_eq!(class, "UnboundLocalError");
    assert!(msg.contains("local variable 'response' referenced before assignment"));
}

#[test]
fn none_attribute_error_matches_paper() {
    let (class, msg) = run_err("key = None\nkey.startswith('/')\n");
    assert_eq!(class, "AttributeError");
    assert_eq!(msg, "'NoneType' object has no attribute 'startswith'");
}

#[test]
fn classes_methods_inheritance() {
    assert_eq!(
        run(concat!(
            "class Animal:\n",
            "    def __init__(self, name):\n",
            "        self.name = name\n",
            "    def speak(self):\n",
            "        return self.name + ' makes a sound'\n",
            "class Dog(Animal):\n",
            "    def speak(self):\n",
            "        return self.name + ' barks'\n",
            "d = Dog('rex')\n",
            "print(d.speak())\n",
            "a = Animal('cat')\n",
            "print(a.speak())\n",
        )),
        "rex barks\ncat makes a sound\n"
    );
}

#[test]
fn isinstance_checks() {
    assert_eq!(run("print(isinstance('x', str), isinstance(1, str))\n"), "True False\n");
    assert_eq!(
        run("class A:\n    pass\nclass B(A):\n    pass\nb = B()\nprint(isinstance(b, A), isinstance(b, B))\n"),
        "True True\n"
    );
}

#[test]
fn try_except_else_finally_ordering() {
    assert_eq!(
        run(concat!(
            "def f(fail):\n",
            "    out = []\n",
            "    try:\n",
            "        out.append('try')\n",
            "        if fail:\n",
            "            raise ValueError('x')\n",
            "    except ValueError:\n",
            "        out.append('except')\n",
            "    else:\n",
            "        out.append('else')\n",
            "    finally:\n",
            "        out.append('finally')\n",
            "    return out\n",
            "print(f(False))\n",
            "print(f(True))\n",
        )),
        "['try', 'else', 'finally']\n['try', 'except', 'finally']\n"
    );
}

#[test]
fn except_matches_subclasses() {
    assert_eq!(
        run("try:\n    raise KeyError('k')\nexcept LookupError:\n    print('caught')\n"),
        "caught\n"
    );
    assert_eq!(
        run("try:\n    raise ValueError('v')\nexcept (KeyError, ValueError):\n    print('caught')\n"),
        "caught\n"
    );
    // Non-matching classes propagate.
    let (class, _) = run_err("try:\n    raise ValueError('v')\nexcept KeyError:\n    pass\n");
    assert_eq!(class, "ValueError");
}

#[test]
fn except_as_binds_exception_object() {
    assert_eq!(
        run("try:\n    raise ValueError('boom')\nexcept ValueError as e:\n    print(str(e))\n"),
        "boom\n"
    );
}

#[test]
fn user_exception_classes() {
    assert_eq!(
        run(concat!(
            "class EtcdException(Exception):\n",
            "    pass\n",
            "class EtcdKeyNotFound(EtcdException):\n",
            "    pass\n",
            "try:\n",
            "    raise EtcdKeyNotFound('Key not found: /x')\n",
            "except EtcdException as e:\n",
            "    print('caught:', str(e))\n",
        )),
        "caught: Key not found: /x\n"
    );
}

#[test]
fn bare_raise_reraises() {
    let (class, msg) = run_err(concat!(
        "try:\n",
        "    raise ValueError('orig')\n",
        "except ValueError:\n",
        "    raise\n",
    ));
    assert_eq!(class, "ValueError");
    assert_eq!(msg, "orig");
}

#[test]
fn finally_runs_on_exception() {
    let m = pysrc::parse_module(
        "try:\n    raise ValueError('x')\nfinally:\n    print('cleanup')\n",
        "t.py",
    )
    .unwrap();
    let mut vm = Vm::new();
    let err = vm.run_module(&m).unwrap_err();
    assert_eq!(err.class_name, "ValueError");
    assert_eq!(vm.stdout(), "cleanup\n");
}

#[test]
fn loops_break_continue_else() {
    assert_eq!(
        run("for i in range(5):\n    if i == 3:\n        break\n    print(i)\nelse:\n    print('no break')\n"),
        "0\n1\n2\n"
    );
    assert_eq!(
        run("for i in range(3):\n    pass\nelse:\n    print('completed')\n"),
        "completed\n"
    );
    assert_eq!(
        run("total = 0\nfor i in range(10):\n    if i % 2 == 0:\n        continue\n    total += i\nprint(total)\n"),
        "25\n"
    );
    assert_eq!(
        run("i = 0\nwhile i < 3:\n    i += 1\nprint(i)\n"),
        "3\n"
    );
}

#[test]
fn comparison_chains_and_membership() {
    assert_eq!(run("print(1 < 2 < 3, 1 < 2 > 3)\n"), "True False\n");
    assert_eq!(run("print(2 in [1, 2], 5 not in [1, 2])\n"), "True True\n");
    assert_eq!(run("print('a' in {'a': 1})\n"), "True\n");
    assert_eq!(run("x = None\nprint(x is None, x is not None)\n"), "True False\n");
}

#[test]
fn boolean_short_circuit_returns_operand() {
    assert_eq!(run("print(0 or 'default')\n"), "default\n");
    assert_eq!(run("print('x' and 42)\n"), "42\n");
    assert_eq!(run("print(None or None)\n"), "None\n");
    // Short circuit must not evaluate the RHS.
    assert_eq!(
        run("def boom():\n    raise ValueError('no')\nprint(False and boom())\n"),
        "False\n"
    );
}

#[test]
fn lambda_and_conditional_expression() {
    assert_eq!(run("f = lambda x, y=2: x * y\nprint(f(3), f(3, 4))\n"), "6 12\n");
    assert_eq!(run("x = 5\nprint('big' if x > 3 else 'small')\n"), "big\n");
}

#[test]
fn builtin_functions() {
    assert_eq!(run("print(abs(-3), min(3, 1), max([2, 7]))\n"), "3 1 7\n");
    assert_eq!(run("print(sum([1, 2, 3]))\n"), "6\n");
    assert_eq!(run("print(int('42'), float('2.5'), str(7))\n"), "42 2.5 7\n");
    assert_eq!(
        run("for i, v in enumerate(['a', 'b']):\n    print(i, v)\n"),
        "0 a\n1 b\n"
    );
    assert_eq!(run("print(zip([1, 2], ['a', 'b']))\n"), "[(1, 'a'), (2, 'b')]\n");
    let (class, _) = run_err("int('notanumber')\n");
    assert_eq!(class, "ValueError");
}

#[test]
fn getattr_hasattr() {
    assert_eq!(
        run("class C:\n    def __init__(self):\n        self.x = 1\nc = C()\nprint(getattr(c, 'x'), getattr(c, 'y', 99), hasattr(c, 'x'))\n"),
        "1 99 True\n"
    );
}

#[test]
fn recursion_works_and_is_bounded() {
    assert_eq!(
        run("def fact(n):\n    if n <= 1:\n        return 1\n    return n * fact(n - 1)\nprint(fact(10))\n"),
        "3628800\n"
    );
    let (class, msg) = run_err("def f():\n    return f()\nf()\n");
    assert_eq!(class, "RuntimeError");
    assert!(msg.contains("recursion"));
}

#[test]
fn time_module_uses_virtual_clock() {
    let out = run(concat!(
        "import time\n",
        "t0 = time.time()\n",
        "time.sleep(2.5)\n",
        "t1 = time.time()\n",
        "print(t1 - t0 >= 2.5)\n",
    ));
    assert_eq!(out, "True\n");
}

#[test]
fn random_module_is_seeded_and_deterministic() {
    let src = "import random\nprint(random.randint(0, 1000000))\n";
    assert_eq!(run(src), run(src));
}

#[test]
fn logging_module_captures_records() {
    let m = pysrc::parse_module(
        "import logging\nlogging.error('disk on fire')\nlogging.info('ok')\n",
        "t.py",
    )
    .unwrap();
    let mut vm = Vm::new();
    vm.run_module(&m).unwrap();
    let logs = vm.logs();
    assert_eq!(logs.len(), 2);
    assert_eq!(logs[0].severity, pyrt::Severity::Error);
    assert_eq!(logs[0].message, "disk on fire");
}

#[test]
fn logger_component_attribution() {
    let m = pysrc::parse_module(
        "import logging\nlog = logging.getLogger('etcd.client')\nlog.error('bad')\n",
        "t.py",
    )
    .unwrap();
    let mut vm = Vm::new();
    vm.run_module(&m).unwrap();
    assert_eq!(vm.logs()[0].component, "etcd.client");
}

#[test]
fn profipy_rt_trigger_and_coverage() {
    let m = pysrc::parse_module(
        concat!(
            "import profipy_rt\n",
            "profipy_rt.cov(7)\n",
            "if profipy_rt.trigger():\n",
            "    print('fault on')\n",
            "else:\n",
            "    print('fault off')\n",
        ),
        "t.py",
    )
    .unwrap();
    let mut vm = Vm::new();
    vm.run_module(&m).unwrap();
    assert_eq!(vm.stdout(), "fault off\n");
    assert!(vm.coverage().contains(&7));

    let mut vm2 = Vm::new();
    vm2.trigger.set(true);
    vm2.run_module(&m).unwrap();
    assert_eq!(vm2.stdout(), "fault on\n");
}

#[test]
fn profipy_rt_corrupt_changes_strings_deterministically() {
    let m = pysrc::parse_module(
        "import profipy_rt\nprint(profipy_rt.corrupt('--dport 2379'))\n",
        "t.py",
    )
    .unwrap();
    let mut vm_a = Vm::new();
    vm_a.run_module(&m).unwrap();
    let mut vm_b = Vm::new();
    vm_b.run_module(&m).unwrap();
    assert_eq!(vm_a.stdout(), vm_b.stdout(), "same seed → same corruption");
    assert_ne!(vm_a.stdout(), "--dport 2379\n");
}

#[test]
fn hog_starves_fuel() {
    let src = "import profipy_rt\nprofipy_rt.hog()\ni = 0\nwhile i < 20000:\n    i = i + 1\n";
    let m = pysrc::parse_module(src, "t.py").unwrap();
    // Without the hog this budget is ample; with a hog (5x step cost)
    // it exhausts.
    let mut vm = Vm::new();
    vm.fuel.refill(400_000);
    let err = vm.run_module(&m).unwrap_err();
    assert_eq!(err.class_name, "ProfipyFuelExhausted");

    let no_hog = pysrc::parse_module("i = 0\nwhile i < 20000:\n    i = i + 1\n", "t.py").unwrap();
    let mut vm2 = Vm::new();
    vm2.fuel.refill(400_000);
    vm2.run_module(&no_hog).unwrap();
}

#[test]
fn fuel_exhaustion_escapes_except_exception() {
    // Timeouts must not be swallowed by broad exception handlers.
    let src = concat!(
        "while True:\n",
        "    try:\n",
        "        x = 1\n",
        "    except Exception:\n",
        "        pass\n",
    );
    let m = pysrc::parse_module(src, "t.py").unwrap();
    let mut vm = Vm::new();
    vm.fuel.refill(5_000);
    let err = vm.run_module(&m).unwrap_err();
    assert_eq!(err.class_name, "ProfipyFuelExhausted");
}

#[test]
fn threading_thread_runs_target() {
    assert_eq!(
        run(concat!(
            "import threading\n",
            "def work(n):\n",
            "    print('worked', n)\n",
            "t = threading.Thread(target=work, args=(3,))\n",
            "t.start()\n",
            "t.join()\n",
        )),
        "worked 3\n"
    );
}

#[test]
fn with_statement_calls_enter_exit() {
    assert_eq!(
        run(concat!(
            "class Ctx:\n",
            "    def __enter__(self):\n",
            "        print('enter')\n",
            "        return 42\n",
            "    def __exit__(self):\n",
            "        print('exit')\n",
            "with Ctx() as v:\n",
            "    print(v)\n",
        )),
        "enter\n42\nexit\n"
    );
}

#[test]
fn del_and_assert() {
    assert_eq!(run("x = 1\ndel x\nprint('gone')\n"), "gone\n");
    let (class, _) = run_err("x = 1\ndel x\nprint(x)\n");
    assert_eq!(class, "NameError");
    let (class, msg) = run_err("assert 1 == 2, 'numbers drifted'\n");
    assert_eq!(class, "AssertionError");
    assert_eq!(msg, "numbers drifted");
}

#[test]
fn augmented_assignment_on_containers() {
    assert_eq!(run("d = {'n': 1}\nd['n'] += 5\nprint(d['n'])\n"), "6\n");
    assert_eq!(run("xs = [1]\nxs += [2]\nprint(xs)\n"), "[1, 2]\n");
}

#[test]
fn string_iteration_and_dict_iteration() {
    assert_eq!(run("for c in 'ab':\n    print(c)\n"), "a\nb\n");
    assert_eq!(run("d = {'x': 1, 'y': 2}\nfor k in d:\n    print(k)\n"), "x\ny\n");
}

#[test]
fn type_errors_have_python_messages() {
    let (class, msg) = run_err("x = 1 + 'a'\n");
    assert_eq!(class, "TypeError");
    assert!(msg.contains("unsupported operand type"));
    let (class, msg) = run_err("x = None\nx()\n");
    assert_eq!(class, "TypeError");
    assert!(msg.contains("not callable"));
    let (class, msg) = run_err("x = 5\nx[0]\n");
    assert_eq!(class, "TypeError");
    assert!(msg.contains("not subscriptable"));
}
