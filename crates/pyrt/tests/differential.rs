//! Differential testing: the bytecode engine against the tree-walk
//! oracle.
//!
//! Every generated program runs on both engines and must agree on the
//! full observable outcome: result (error class + message), stdout,
//! stderr, the virtual-clock reading, and the remaining fuel. Programs
//! are valid by construction (built from statement templates over a
//! fixed prologue) and terminate without fuel, so a second property
//! additionally pins the exact fuel-exhaustion step under a randomized
//! budget.

use proptest::prelude::*;
use pyrt::vm::{Engine, Vm};

/// Everything a campaign can observe from one experiment run.
#[derive(Debug, Clone, PartialEq)]
struct Outcome {
    error: Option<(String, String)>,
    stdout: String,
    stderr: String,
    /// Virtual-clock reading, compared bit-for-bit.
    clock_bits: u64,
    fuel_remaining: u64,
}

fn run_engine(src: &str, engine: Engine, fuel: Option<u64>) -> Outcome {
    let module = pysrc::parse_module(src, "diff.py").expect("generated program parses");
    let mut vm = Vm::new();
    vm.set_engine(engine);
    if let Some(f) = fuel {
        vm.fuel.refill(f);
    }
    let error = vm
        .run_module(&module)
        .err()
        .map(|e| (e.class_name, e.message));
    Outcome {
        error,
        stdout: vm.stdout(),
        stderr: vm.stderr(),
        clock_bits: vm.now().to_bits(),
        fuel_remaining: vm.fuel.remaining(),
    }
}

fn assert_engines_agree(src: &str, fuel: Option<u64>) {
    let bytecode = run_engine(src, Engine::Bytecode, fuel);
    let treewalk = run_engine(src, Engine::TreeWalk, fuel);
    assert_eq!(
        bytecode, treewalk,
        "engines diverge (fuel {fuel:?}) on program:\n{src}"
    );
}

// ---------- generated programs

const PROLOGUE: &str = "a = 3\nb = 4\nc = [1, 2, 3]\n";

fn small_expr() -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("len(c)".to_string()),
        Just("c[1]".to_string()),
        Just("(a < b)".to_string()),
        (0i64..10).prop_map(|n| n.to_string()),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        (
            inner.clone(),
            prop_oneof![
                Just("+".to_string()),
                Just("-".to_string()),
                Just("*".to_string()),
            ],
            inner,
        )
            .prop_map(|(l, op, r)| format!("({l} {op} {r})"))
    })
    .boxed()
}

/// One self-contained statement block; always valid after [`PROLOGUE`].
fn block() -> BoxedStrategy<String> {
    prop_oneof![
        // Plain assignment + print.
        (small_expr(), 0u32..3).prop_map(|(e, i)| format!("x{i} = {e}\nprint(x{i})\n")),
        // Augmented assignment through a subscript target.
        (small_expr(), 0usize..3)
            .prop_map(|(e, i)| format!("c[{i}] = c[{i}] + 1\nprint(c, {e})\n")),
        // If/else on a comparison.
        (small_expr(), small_expr()).prop_map(|(l, r)| {
            format!("if {l} < {r}:\n    print('lt', {l})\nelse:\n    print('ge', {r})\n")
        }),
        // For loop with conditional break and an else clause.
        (1i64..6, 0i64..6).prop_map(|(n, k)| {
            format!(
                "acc = 0\nfor i in range({n}):\n    acc += i\n    if i == {k}:\n        \
                 break\nelse:\n    print('no-break')\nprint('acc', acc)\n"
            )
        }),
        // While loop with continue.
        (1i64..6, 1i64..6).prop_map(|(n, k)| {
            format!(
                "j = 0\nwhile j < {n}:\n    j += 1\n    if j == {k}:\n        \
                 continue\n    print('j', j)\n"
            )
        }),
        // try/except around a possibly-failing subscript.
        (0usize..6).prop_map(|i| {
            format!(
                "try:\n    print('item', c[{i}])\nexcept IndexError:\n    print('oob')\n"
            )
        }),
        // try/except around integer division.
        (small_expr(), 0i64..3).prop_map(|(e, d)| {
            format!(
                "try:\n    print({e} // {d})\nexcept ZeroDivisionError:\n    print('zde')\n"
            )
        }),
        // Function definition with a default, called twice.
        (small_expr(), small_expr(), 0u32..3).prop_map(|(e1, e2, i)| {
            format!(
                "def f{i}(x, y=2):\n    if x > y:\n        return x - y\n    return x + \
                 y\nprint(f{i}({e1}), f{i}({e1}, {e2}))\n"
            )
        }),
        // Closure over an enclosing local.
        (small_expr(), 0u32..3).prop_map(|(e, i)| {
            format!(
                "def outer{i}():\n    t = {e}\n    def inner(u):\n        return u + \
                 t\n    return inner(10)\nprint(outer{i}())\n"
            )
        }),
        // List comprehension (module-level target leak included).
        (1i64..6).prop_map(|n| {
            format!("print([z * z for z in range({n}) if z % 2 == 0])\nprint('leak', z)\n")
        }),
        // Uncaught exception: both engines must stop at the same point
        // with the same class/message and partial stdout.
        (small_expr(), 3usize..8).prop_map(|(e, i)| {
            format!("print('pre', {e})\nprint(c[{i}])\nprint('unreached')\n")
        }),
        // Aliasing: mutation through a second binding must be visible
        // through every name (pins reference semantics for the heap).
        (small_expr(), 0u32..3).prop_map(|(e, i)| {
            format!(
                "al{i} = [{e}]\nbl{i} = al{i}\nbl{i}.append({e})\n\
                 print(al{i}, al{i} is bl{i})\n"
            )
        }),
        // Container self-reference: identity must survive a round-trip
        // through the container (printing the cycle would not
        // terminate, so only identity and leaf reads are observed).
        (0u32..3).prop_map(|i| {
            format!(
                "sd{i} = {{'n': {i}}}\nsd{i}['me'] = sd{i}\n\
                 print(sd{i}['me'] is sd{i}, sd{i}['me']['n'])\n"
            )
        }),
        // Bound-method extraction: the receiver is aliased, not copied.
        (1i64..4, 0u32..3).prop_map(|(n, i)| {
            format!(
                "ml{i} = []\npush{i} = ml{i}.append\nfor v in range({n}):\n    \
                 push{i}(v)\nprint(ml{i})\n"
            )
        }),
    ]
    .boxed()
}

fn program() -> BoxedStrategy<String> {
    proptest::collection::vec(block(), 1..4)
        .prop_map(|blocks| format!("{PROLOGUE}{}", blocks.concat()))
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn engines_agree_unfueled(src in program()) {
        assert_engines_agree(&src, None);
    }

    #[test]
    fn engines_agree_under_fuel(src in program(), fuel in 5u64..400) {
        assert_engines_agree(&src, Some(fuel));
    }
}

// ---------- deterministic differential pins

/// Exhaustive fuel sweep over a fixture exercising loops, calls,
/// closures, try/except, and comprehensions: for every budget the two
/// engines must trip at the identical step with identical partial
/// output and clock.
#[test]
fn fuel_exhaustion_step_identical_across_engines() {
    let src = "\
total = 0
def cost(n):
    r = 0
    for i in range(n):
        r += i * i
    return r
for k in range(6):
    try:
        total += cost(k) // (k % 3)
    except ZeroDivisionError:
        total += 1
squares = [v * v for v in range(4)]
print('total', total, squares)
";
    for fuel in 1..260 {
        assert_engines_agree(src, Some(fuel));
    }
}

#[test]
fn deadline_trip_identical_across_engines() {
    let src = "\
import time
print('start')
i = 0
while i < 50:
    time.sleep(0.5)
    i += 1
print('end', i)
";
    let run = |engine: Engine| {
        let module = pysrc::parse_module(src, "deadline.py").expect("parses");
        let mut vm = Vm::new();
        vm.set_engine(engine);
        vm.set_deadline(Some(5.0));
        let error = vm
            .run_module(&module)
            .err()
            .map(|e| (e.class_name, e.message));
        (error, vm.stdout(), vm.now().to_bits())
    };
    assert_eq!(run(Engine::Bytecode), run(Engine::TreeWalk));
}

#[test]
fn engine_fixture_corpus_agrees() {
    // Hand-written corners that generation is unlikely to compose:
    // bare raise, finally overriding control flow, nested loop
    // break/continue through a try, chained comparisons, keyword and
    // star arguments, class with methods, global declarations.
    let fixtures: &[&str] = &[
        "def g():\n    global seen\n    seen = seen + 1\nseen = 0\ng()\ng()\nprint(seen)\n",
        "try:\n    try:\n        raise ValueError('inner')\n    except ValueError:\n        \
         print('first')\n        raise\nexcept ValueError as e:\n    print('second', e)\n",
        "for i in range(3):\n    try:\n        if i == 1:\n            continue\n        \
         if i == 2:\n            break\n    finally:\n        print('fin', i)\nprint('after')\n",
        "def f(a, b=2, *rest, **kw):\n    return [a, b, list(rest), len(kw)]\n\
         print(f(1))\nprint(f(1, 3, 4, 5))\nprint(f(1, b=9, z=0))\n\
         args = [7, 8, 9]\nprint(f(*args))\n",
        "class Counter:\n    def __init__(self, start):\n        self.n = start\n    \
         def bump(self, by=1):\n        self.n += by\n        return self.n\n\
         c = Counter(10)\nprint(c.bump(), c.bump(5), c.n)\n",
        "x = 5\nprint(1 < x < 9, 9 < x < 10, 1 < x > 2)\n",
        "d = {'a': 1, 'b': 2}\nd['c'] = d['a'] + d['b']\n\
         for k in d:\n    print(k, d[k])\nprint('b' in d, 'z' in d)\n",
        "s = 'abc'\nprint(s[1], s[-1], s[0:2], len(s), s + 'd', s * 2)\n",
        "def fib(n):\n    if n < 2:\n        return n\n    return fib(n - 1) + fib(n - 2)\n\
         print([fib(i) for i in range(10)])\n",
        "t = (1, 2, 3)\nu, v, w = t\nprint(u, v, w)\n\
         pairs = [(1, 'a'), (2, 'b')]\nfor num, ch in pairs:\n    print(num, ch)\n",
        "print(not 0, -True, +7, ~2)\nprint(0 or '' or 'x', 1 and 2 and 3)\n",
        "while True:\n    break\nelse:\n    print('unreached')\nprint('done')\n",
        // Aliasing/identity corners: user-class bound methods whose
        // receiver survives rebinding, instance attributes sharing one
        // object, and `is` across aggregate and immediate values.
        "class C:\n    def __init__(self):\n        self.n = 0\n    def bump(self):\n        \
         self.n += 1\n        return self.n\nc = C()\nm = c.bump\nprint(m(), m())\n\
         c2 = c\nc = None\nprint(m(), c2.n)\n",
        "shared = [0]\nclass B:\n    def __init__(self, v):\n        self.v = v\n\
         x = B(shared)\ny = B(shared)\nx.v.append(1)\n\
         print(y.v, x.v is y.v, x.v is shared)\n",
        "a = [1]\nb = [1]\nprint(a is a, a is b, a == b, [] is [])\n\
         s = 'ab'\nt = 'a' + 'b'\nprint(s is t, 5 is 5, None is None)\n",
        "l = [1]\nl.append(l)\nprint(l[0], l[1] is l)\nl[0] = 2\nprint(l[1][0])\n",
        "def push(v, acc=[]):\n    acc.append(v)\n    return acc\n\
         print(push(1), push(2), push(1))\n",
    ];
    for src in fixtures {
        assert_engines_agree(src, None);
        for fuel in [3u64, 17, 61, 200] {
            assert_engines_agree(src, Some(fuel));
        }
    }
}
