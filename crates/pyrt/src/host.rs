//! The host interface: how the simulated `urllib`/`os` modules reach
//! the world outside the interpreter.
//!
//! The `etcdsim` crate implements [`HostApi`] so that the mini-Python
//! python-etcd client talks to the simulated etcd server exactly the
//! way the real client talks to the real server over HTTP.

use std::collections::BTreeMap;

/// Result of a simulated HTTP request.
#[derive(Clone, Debug, PartialEq)]
pub struct HttpResponse {
    /// HTTP status code (e.g. 200, 400, 404).
    pub status: u16,
    /// Response body (the simulated etcd returns a JSON-ish encoding).
    pub body: String,
}

/// Transport-level failures (before any HTTP status exists).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// Nothing listening / connection refused.
    ConnectionRefused,
    /// The request did not complete within the timeout.
    Timeout,
    /// Connection dropped mid-request.
    Reset,
}

impl TransportError {
    /// The Python exception class the simulated urllib raises.
    pub fn exception_class(&self) -> &'static str {
        match self {
            TransportError::ConnectionRefused => "ConnectionRefusedError",
            TransportError::Timeout => "ConnectTimeoutError",
            TransportError::Reset => "ProtocolError",
        }
    }
}

/// One recorded API invocation, surfaced for tracing/visualization
/// (paper §IV-D). Hosts that do not trace return none.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Virtual time the request started.
    pub time: f64,
    /// Operation label (e.g. `"PUT /v2/keys/a"`).
    pub name: String,
    /// Whether the operation failed (HTTP ≥ 400 or transport error).
    pub failed: bool,
    /// Virtual seconds the operation took.
    pub duration: f64,
}

/// Host-side services visible to the interpreted program.
///
/// All methods take `&self`; implementations use interior mutability.
/// The `vm_now` parameter carries the caller's virtual time so the host
/// can model latency and TTL expiry against the same clock.
pub trait HostApi {
    /// Performs an HTTP request. Returns the response or a transport
    /// error, plus the virtual seconds the request consumed.
    fn http_request(
        &self,
        vm_now: f64,
        method: &str,
        url: &str,
        body: &str,
        timeout: f64,
    ) -> (Result<HttpResponse, TransportError>, f64);

    /// Reads an environment variable.
    fn getenv(&self, name: &str) -> Option<String>;

    /// Reads a file from the simulated container filesystem.
    fn read_file(&self, path: &str) -> Result<String, String>;

    /// Writes a file to the simulated container filesystem.
    fn write_file(&self, path: &str, contents: &str) -> Result<(), String>;

    /// True if a path exists in the simulated filesystem.
    fn path_exists(&self, path: &str) -> bool;

    /// Executes an external utility (paper §III WPF example:
    /// `utils.execute` invoking `iptables`-style commands). Returns
    /// `(exit_code, stdout)`.
    fn execute(&self, argv: &[String]) -> (i32, String);

    /// Called when the interpreted program registers a CPU hog, so the
    /// host can surface races (stale reads) the way the paper's §V-C
    /// high-CPU experiments did.
    fn note_hog(&self) {}

    /// Traced API invocations recorded so far (paper §IV-D
    /// visualization). Default: no tracing.
    fn trace_events(&self) -> Vec<TraceEvent> {
        Vec::new()
    }
}

/// A host with no network, an empty filesystem and no environment.
/// HTTP requests fail with [`TransportError::ConnectionRefused`].
#[derive(Debug, Default)]
pub struct NoopHost {
    env: BTreeMap<String, String>,
}

impl NoopHost {
    /// Creates an empty host.
    pub fn new() -> NoopHost {
        NoopHost::default()
    }

    /// Creates a host with preset environment variables.
    pub fn with_env(env: BTreeMap<String, String>) -> NoopHost {
        NoopHost { env }
    }
}

impl HostApi for NoopHost {
    fn http_request(
        &self,
        _vm_now: f64,
        _method: &str,
        _url: &str,
        _body: &str,
        _timeout: f64,
    ) -> (Result<HttpResponse, TransportError>, f64) {
        (Err(TransportError::ConnectionRefused), 0.0)
    }

    fn getenv(&self, name: &str) -> Option<String> {
        self.env.get(name).cloned()
    }

    fn read_file(&self, path: &str) -> Result<String, String> {
        Err(format!("No such file or directory: '{path}'"))
    }

    fn write_file(&self, _path: &str, _contents: &str) -> Result<(), String> {
        Ok(())
    }

    fn path_exists(&self, _path: &str) -> bool {
        false
    }

    fn execute(&self, argv: &[String]) -> (i32, String) {
        (0, format!("executed: {}", argv.join(" ")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_host_refuses_connections() {
        let h = NoopHost::new();
        let (r, _) = h.http_request(0.0, "GET", "http://127.0.0.1:2379/v2/keys/x", "", 1.0);
        assert_eq!(r, Err(TransportError::ConnectionRefused));
    }

    #[test]
    fn transport_errors_map_to_exception_classes() {
        assert_eq!(
            TransportError::Timeout.exception_class(),
            "ConnectTimeoutError"
        );
    }
}
